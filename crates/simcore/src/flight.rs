//! Continuous observability for the engine: the sim-time profiler, the
//! flight recorder, and the metric windower (the `snooze-flight`
//! subsystem).
//!
//! All three are *observers*: opt-in, excluded from model-checking
//! snapshots and fingerprints, and incapable of perturbing the audited
//! event digest. Their deterministic outputs (event counts, window
//! rows, recorded event descriptors) are keyed on sim time and sequence
//! counters only; the profiler's wall-time column is advisory, like
//! every [`crate::wallclock::WallClock`] reading.
//!
//! * [`Profiler`] — attributes executed events (and advisory wall
//!   nanoseconds) to `(component kind, message variant)` pairs, and
//!   exports flamegraph-compatible folded-stack text plus a top-K
//!   table. The folded output folds *event counts*, never wall time,
//!   so two same-seed runs render byte-identical profiles.
//! * [`FlightRecorder`] — a bounded ring of recent executed-event
//!   descriptors; the scenario layer snapshots it (plus recent span
//!   closures and metric windows) into an incident dump when a
//!   watchdog trips.
//! * [`Windower`] — rolls a [`MetricsRegistry`] into fixed-width
//!   sim-time windows ([`snooze_telemetry::window::WindowLog`]) by
//!   diffing per-window baselines: counter deltas, gauge boundary
//!   values, and statistics over the histogram samples recorded within
//!   the window.

use std::collections::BTreeMap;

use snooze_telemetry::window::{slice_stats, SliceStats, WindowKind, WindowLog, WindowRow};
use snooze_telemetry::LabelSet;

use crate::metrics::MetricsRegistry;
use crate::time::{SimSpan, SimTime};
use crate::wallclock::WallClock;

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

/// One profiled `(component kind, message variant)` bucket.
#[derive(Clone, Debug)]
struct ProfCell {
    kind: u16,
    variant: &'static str,
    events: u64,
    wall_nanos: u64,
}

/// One row of the exported profile, aggregated and deterministically
/// ordered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Component kind (registered name with the trailing digits
    /// stripped: `lc123` → `lc`), or a pseudo-kind for engine events
    /// with no component target (`net`).
    pub kind: String,
    /// Message variant name from the engine's classifier, or the event
    /// kind (`start`, `timer`, `crash`, `restart`, `net`) for
    /// non-deliver events.
    pub variant: String,
    /// Events executed in this bucket — deterministic.
    pub events: u64,
    /// Advisory wall nanoseconds attributed to this bucket, sampled:
    /// the clock is read once per [`Profiler::WALL_SAMPLE`] events and
    /// the whole lap lands on the bucket executing at sample time —
    /// proportional in expectation. Host-dependent; never part of
    /// deterministic exports.
    pub wall_nanos: u64,
}

/// Attributes executed events to `(component kind, message variant)`.
///
/// Enabled via `Engine::enable_profiler`; costs one move-to-front
/// probe per event and one wall-clock read per
/// [`Profiler::WALL_SAMPLE`] events while on, nothing while off.
#[derive(Clone, Debug)]
pub struct Profiler {
    /// Interned component-kind strings; index is the `u16` in cells.
    kinds: Vec<String>,
    /// Component index → kind index, built lazily from engine names.
    kind_of: Vec<u16>,
    /// Buckets kept roughly hottest-first by a move-to-front probe;
    /// export sorts and merges, so storage order is irrelevant.
    cells: Vec<ProfCell>,
    /// The bucket of the event currently being executed — the lap is
    /// banked on it when a wall sample lands.
    current: Option<(u16, &'static str)>,
    /// Events seen; drives the wall-sampling cadence.
    ticks: u64,
    mark: WallClock,
}

impl Profiler {
    /// Wall-time sampling cadence (must be a power of two): the clock
    /// is read once per this many events and the whole lap is banked on
    /// the bucket executing at sample time. Event *counts* stay exact;
    /// wall time is a proportional-in-expectation sample — it is
    /// advisory either way, and sampling keeps the per-event overhead
    /// to a probe instead of a syscall-ish clock read (which can run
    /// to microseconds under paravirtualized clocks).
    pub const WALL_SAMPLE: u64 = 256;

    pub(crate) fn new() -> Profiler {
        Profiler {
            kinds: Vec::new(),
            kind_of: Vec::new(),
            cells: Vec::new(),
            current: None,
            ticks: 0,
            mark: WallClock::start(),
        }
    }

    /// Kind index for component `comp`, interning from `names` on first
    /// sight. `None` (events with no component target) maps to `"net"`.
    pub(crate) fn kind_index(&mut self, comp: Option<usize>, names: &[String]) -> u16 {
        let kind_str = match comp {
            Some(i) => {
                if let Some(&k) = self.kind_of.get(i) {
                    if k != u16::MAX {
                        return k;
                    }
                }
                let name = names.get(i).map(String::as_str).unwrap_or("?");
                name.trim_end_matches(|c: char| c.is_ascii_digit())
            }
            None => "net",
        };
        let idx = match self.kinds.iter().position(|k| k == kind_str) {
            Some(i) => i as u16,
            None => {
                self.kinds.push(kind_str.to_string());
                (self.kinds.len() - 1) as u16
            }
        };
        if let Some(i) = comp {
            if self.kind_of.len() <= i {
                self.kind_of.resize(i + 1, u16::MAX);
            }
            self.kind_of[i] = idx;
        }
        idx
    }

    /// Begin attributing the event being executed: count it, and bank
    /// the elapsed wall lap on the previous bucket when a sample lands.
    pub(crate) fn begin_event(&mut self, kind: u16, variant: &'static str) {
        let i = self.cell_index(kind, variant);
        self.cells[i].events += 1;
        self.ticks += 1;
        if self.ticks & (Self::WALL_SAMPLE - 1) == 0 {
            let nanos = self.mark.lap_nanos();
            if let Some((k, v)) = self.current {
                let j = self.cell_index(k, v);
                self.cells[j].wall_nanos += nanos;
            }
        }
        self.current = Some((kind, variant));
    }

    /// Bank the in-flight wall lap, if any (call before reading
    /// exports).
    pub(crate) fn flush(&mut self) {
        let nanos = self.mark.lap_nanos();
        if let Some((k, v)) = self.current.take() {
            let j = self.cell_index(k, v);
            self.cells[j].wall_nanos += nanos;
        }
    }

    /// Bucket index for `(kind, variant)`, inserting a zeroed bucket on
    /// first sight. Hot path: buckets are few (kinds × variants) and
    /// traffic is heavily repetitive, so a linear probe with
    /// pointer-equality on the variant plus a move-to-front swap beats
    /// a map — the handful of hot buckets settle at the head. Content
    /// equality is restored at export time by merging.
    fn cell_index(&mut self, kind: u16, variant: &'static str) -> usize {
        for i in 0..self.cells.len() {
            let c = &self.cells[i];
            if c.kind == kind && std::ptr::eq(c.variant, variant) {
                if i > 0 {
                    self.cells.swap(i, i - 1);
                    return i - 1;
                }
                return 0;
            }
        }
        self.cells.push(ProfCell {
            kind,
            variant,
            events: 0,
            wall_nanos: 0,
        });
        self.cells.len() - 1
    }

    /// Total events attributed so far (flushed buckets only).
    pub fn events_total(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// The aggregated profile, sorted by descending event count, then
    /// by `(kind, variant)` — fully deterministic.
    pub fn rows(&self) -> Vec<ProfileRow> {
        let mut merged: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for cell in &self.cells {
            let kind = self
                .kinds
                .get(cell.kind as usize)
                .cloned()
                .unwrap_or_else(|| "?".into());
            let e = merged
                .entry((kind, cell.variant.to_string()))
                .or_insert((0, 0));
            e.0 += cell.events;
            e.1 += cell.wall_nanos;
        }
        let mut rows: Vec<ProfileRow> = merged
            .into_iter()
            .map(|((kind, variant), (events, wall_nanos))| ProfileRow {
                kind,
                variant,
                events,
                wall_nanos,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.events
                .cmp(&a.events)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.variant.cmp(&b.variant))
        });
        rows
    }

    /// Folded-stack text (`kind;variant count`), one line per bucket —
    /// feed straight into `flamegraph.pl`/`inferno`. Sample counts are
    /// deterministic event counts, never wall time, so two same-seed
    /// runs render byte-identical profiles.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            out.push_str(&format!("{};{} {}\n", row.kind, row.variant, row.events));
        }
        out
    }

    /// The `k` hottest buckets by event count.
    pub fn top(&self, k: usize) -> Vec<ProfileRow> {
        let mut rows = self.rows();
        rows.truncate(k);
        rows
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One executed-event descriptor in the flight ring. Allocation-free:
/// names are resolved only when a dump is actually taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Execution time, microseconds of sim time.
    pub time_us: u64,
    /// Scheduling sequence number.
    pub seq: u64,
    /// Event kind: `start`, `deliver`, `timer`, `crash`, `restart`,
    /// `net`.
    pub kind: &'static str,
    /// Source component index (deliver), or the target index.
    pub a: u64,
    /// Destination component index (deliver), or the timer tag.
    pub b: u64,
    /// Message variant (deliver, via the classifier), or the event
    /// kind again for non-deliver events.
    pub variant: &'static str,
}

/// A bounded ring of the most recent executed events.
///
/// Enabled via `Engine::enable_flight_recorder`; the scenario layer's
/// watchdogs snapshot it into incident dumps.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Vec<FlightEvent>,
    capacity: usize,
    /// Next write position; the ring is full once `len == capacity`.
    head: usize,
    recorded: u64,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Vec::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            head: 0,
            recorded: 0,
        }
    }

    pub(crate) fn record(&mut self, ev: FlightEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
        }
        self.head = (self.head + 1) % self.capacity;
        self.recorded += 1;
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded over the run (≥ the ring length).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        if self.ring.len() < self.capacity {
            return self.ring.clone();
        }
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }
}

// ---------------------------------------------------------------------------
// Windower
// ---------------------------------------------------------------------------

/// Rolls a [`MetricsRegistry`] into fixed-width sim-time windows.
///
/// The windower never touches metric call sites: at each boundary it
/// diffs the registry against baselines captured at the previous
/// boundary — counter deltas, gauge values as-of the boundary, and
/// [`slice_stats`] over the histogram samples recorded since. Rows go
/// into a [`WindowLog`] whose JSONL/CSV exports are byte-deterministic.
///
/// Whoever drives the engine is responsible for calling
/// [`Windower::roll`] at [`Windower::next_boundary`]; splitting a
/// `run_until` at a boundary schedules nothing, so windowing — like
/// probes — cannot change the event stream or its digest.
#[derive(Clone, Debug)]
pub struct Windower {
    width: SimSpan,
    start: SimTime,
    index: u64,
    counter_base: BTreeMap<(String, LabelSet), u64>,
    hist_base: BTreeMap<(String, LabelSet), usize>,
    log: WindowLog,
}

impl Windower {
    /// Windows of `width`, the first starting at sim time zero.
    pub fn new(width: SimSpan) -> Windower {
        assert!(width > SimSpan::ZERO, "window width must be positive");
        Windower {
            width,
            start: SimTime::ZERO,
            index: 0,
            counter_base: BTreeMap::new(),
            hist_base: BTreeMap::new(),
            log: WindowLog::new(),
        }
    }

    /// The boundary the current window closes at.
    pub fn next_boundary(&self) -> SimTime {
        self.start + self.width
    }

    /// Start of the window currently accumulating (the last boundary
    /// rolled, or time zero).
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Index of the window currently accumulating.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The rows emitted so far.
    pub fn log(&self) -> &WindowLog {
        &self.log
    }

    /// Consume the windower, keeping its log.
    pub fn into_log(self) -> WindowLog {
        self.log
    }

    /// Close the current window at `at` (normally
    /// [`Windower::next_boundary`]; the final window of a run may close
    /// early) and emit its rows. Returns the newly emitted rows.
    pub fn roll<'a>(&'a mut self, m: &MetricsRegistry, at: SimTime) -> &'a [WindowRow] {
        let first_new = self.log.len();
        let (index, start_us, end_us) = (self.index, self.start.0, at.0);
        for (name, labels, value) in m.counters_iter() {
            let key = (name.to_string(), labels.clone());
            let base = self.counter_base.get(&key).copied().unwrap_or(0);
            if value > base {
                self.log.push(WindowRow {
                    index,
                    start_us,
                    end_us,
                    kind: WindowKind::Counter,
                    name: key.0.clone(),
                    labels: key.1.clone(),
                    count: value - base,
                    stats: SliceStats::default(),
                });
            }
            self.counter_base.insert(key, value);
        }
        for (name, labels, value) in m.gauges_iter() {
            self.log.push(WindowRow {
                index,
                start_us,
                end_us,
                kind: WindowKind::Gauge,
                name: name.to_string(),
                labels: labels.clone(),
                count: 0,
                // The gauge's boundary value travels in `stats.max`
                // (the exporters read it back from there).
                stats: SliceStats {
                    max: value,
                    ..SliceStats::default()
                },
            });
        }
        for (name, labels, h) in m.histograms_iter() {
            let key = (name.to_string(), labels.clone());
            let base = self.hist_base.get(&key).copied().unwrap_or(0);
            let fresh = &h.samples()[base.min(h.samples().len())..];
            if !fresh.is_empty() {
                self.log.push(WindowRow {
                    index,
                    start_us,
                    end_us,
                    kind: WindowKind::Histogram,
                    name: key.0.clone(),
                    labels: key.1.clone(),
                    count: fresh.len() as u64,
                    stats: slice_stats(fresh),
                });
            }
            self.hist_base.insert(key, h.samples().len());
        }
        self.index += 1;
        self.start = at;
        &self.log.rows()[first_new..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snooze_telemetry::label::label;

    #[test]
    fn profiler_counts_are_deterministic_and_merge_by_content() {
        let mut p = Profiler::new();
        let names = vec!["gm0".to_string(), "lc12".to_string(), "lc7".to_string()];
        let gm = p.kind_index(Some(0), &names);
        let lc_a = p.kind_index(Some(1), &names);
        let lc_b = p.kind_index(Some(2), &names);
        assert_eq!(lc_a, lc_b, "trailing digits stripped to one kind");
        assert_ne!(gm, lc_a);
        p.begin_event(lc_a, "Heartbeat");
        p.begin_event(lc_b, "Heartbeat");
        p.begin_event(gm, "Place");
        p.flush();
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "lc");
        assert_eq!(rows[0].variant, "Heartbeat");
        assert_eq!(rows[0].events, 2);
        assert_eq!(p.events_total(), 3);
        assert_eq!(p.folded(), "lc;Heartbeat 2\ngm;Place 1\n");
        assert_eq!(p.top(1).len(), 1);
    }

    #[test]
    fn profiler_net_events_get_a_pseudo_kind() {
        let mut p = Profiler::new();
        let k = p.kind_index(None, &[]);
        p.begin_event(k, "net");
        p.flush();
        assert_eq!(p.folded(), "net;net 1\n");
    }

    #[test]
    fn flight_ring_keeps_the_last_capacity_events_in_order() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(FlightEvent {
                time_us: i * 10,
                seq: i,
                kind: "deliver",
                a: 0,
                b: 1,
                variant: "Ping",
            });
        }
        let evs = fr.events();
        assert_eq!(fr.recorded(), 5);
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first"
        );
        assert_eq!(fr.capacity(), 3);
    }

    #[test]
    fn windower_diffs_counters_gauges_and_histograms() {
        let mut m = MetricsRegistry::new();
        let mut w = Windower::new(SimSpan::from_secs(10));
        assert_eq!(w.next_boundary(), SimTime::from_secs(10));

        m.incr("c");
        m.incr_with("c", &label("k", "v"));
        m.set_gauge("g", 2.5);
        m.observe("h", 1.0);
        m.observe("h", 3.0);
        let rows = w.roll(&m, SimTime::from_secs(10)).to_vec();
        assert_eq!(rows.len(), 4, "two counters + gauge + histogram");
        assert!(rows
            .iter()
            .any(|r| r.kind == WindowKind::Counter && r.labels.is_empty() && r.count == 1));
        let h = rows
            .iter()
            .find(|r| r.kind == WindowKind::Histogram)
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.stats.sum, 4.0);

        // Second window: only the gauge (no new activity) plus the new
        // counter delta.
        m.add("c", 5);
        let rows2 = w.roll(&m, SimTime::from_secs(20)).to_vec();
        assert_eq!(rows2.len(), 2);
        let c = rows2
            .iter()
            .find(|r| r.kind == WindowKind::Counter)
            .unwrap();
        assert_eq!(c.count, 5);
        assert_eq!(c.index, 1);
        assert_eq!(c.start_us, SimTime::from_secs(10).0);

        // Window sums reproduce the whole-run counter totals.
        assert_eq!(w.log().counter_sum("c"), m.counter_total("c"));
    }

    #[test]
    fn windower_is_deterministic_across_identical_histories() {
        let build = || {
            let mut m = MetricsRegistry::new();
            let mut w = Windower::new(SimSpan::from_secs(1));
            for i in 0..5u64 {
                m.add("x", i);
                m.observe("y", i as f64);
                w.roll(&m, SimTime::from_secs(i + 1));
            }
            w.into_log().to_jsonl()
        };
        assert_eq!(build(), build());
    }
}
