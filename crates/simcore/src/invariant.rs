//! Runtime invariant auditing (the `audit` feature).
//!
//! The static lint (`snooze-audit lint`) keeps *sources* of
//! nondeterminism out of the tree; this module catches *semantic*
//! violations while a simulation runs: a clock that moves backwards, a
//! hypervisor handing out more resources than the node has, a pheromone
//! value escaping its Max–Min bounds. Checks are written with
//! [`crate::audit_invariant!`], which compiles to nothing unless the
//! expanding crate enables its `audit` feature, so the hot path pays
//! zero cost in normal builds.
//!
//! Violations are routed to a process-wide [`InvariantSink`]. With no
//! sink installed a violation panics — enabling `audit` without wiring a
//! sink is still a fail-fast configuration. Tests that want to *observe*
//! violations (including the lint's own fixture tests) install a
//! [`CollectingSink`] and inspect what accumulated.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// One invariant violation, as reported by an `audit_invariant!` site.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Subsystem the check lives in (`"engine"`, `"hypervisor"`, `"aco"`, …).
    pub domain: &'static str,
    /// Stable identifier of the specific invariant.
    pub rule: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.domain, self.rule, self.detail)
    }
}

/// Receiver for invariant violations.
pub trait InvariantSink: Send {
    /// Called once per violation, at the site that detected it.
    fn on_violation(&mut self, violation: &Violation);
}

/// Sink that appends violations to a shared list — install it, run a
/// scenario, then inspect [`CollectingSink::handle`]'s contents.
pub struct CollectingSink {
    store: Arc<Mutex<Vec<Violation>>>,
}

impl CollectingSink {
    /// A new sink plus the handle its violations will accumulate in.
    pub fn new() -> (Self, Arc<Mutex<Vec<Violation>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (
            CollectingSink {
                store: Arc::clone(&store),
            },
            store,
        )
    }
}

impl InvariantSink for CollectingSink {
    fn on_violation(&mut self, violation: &Violation) {
        self.store.lock().unwrap().push(violation.clone());
    }
}

/// Sink that panics on the first violation (the default behavior when no
/// sink is installed, made explicit).
pub struct PanicSink;

impl InvariantSink for PanicSink {
    fn on_violation(&mut self, violation: &Violation) {
        panic!("invariant violated: {violation}");
    }
}

fn sink_slot() -> std::sync::MutexGuard<'static, Option<Box<dyn InvariantSink>>> {
    static SLOT: OnceLock<Mutex<Option<Box<dyn InvariantSink>>>> = OnceLock::new();
    // A sink panicking (PanicSink, or the no-sink default) poisons the
    // mutex; the slot data is still coherent, so recover rather than
    // cascade panics into unrelated tests.
    SLOT.get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Install a process-wide sink, returning the previous one (if any).
pub fn install_sink(sink: Box<dyn InvariantSink>) -> Option<Box<dyn InvariantSink>> {
    sink_slot().replace(sink)
}

/// Remove the installed sink, restoring panic-on-violation behavior.
pub fn take_sink() -> Option<Box<dyn InvariantSink>> {
    sink_slot().take()
}

/// Report a violation to the installed sink, or panic if none is
/// installed. Called by `audit_invariant!`; usable directly for checks
/// that don't fit the macro's condition-plus-format shape.
pub fn report(domain: &'static str, rule: &'static str, detail: String) {
    let violation = Violation {
        domain,
        rule,
        detail,
    };
    let mut slot = sink_slot();
    match slot.as_mut() {
        Some(sink) => sink.on_violation(&violation),
        None => {
            drop(slot); // don't poison the slot for the unwinder
            panic!("invariant violated (no sink installed): {violation}");
        }
    }
}

/// Assert a runtime invariant, compiled away unless auditing is on.
///
/// ```ignore
/// audit_invariant!("hypervisor", "reserved-within-capacity",
///     reserved.fits_within(&capacity),
///     "reserved {reserved:?} exceeds capacity {capacity:?}");
/// ```
///
/// The condition is evaluated only when the *expanding* crate is built
/// with its `audit` feature (each simulation crate forwards its own
/// `audit` feature to `snooze-simcore/audit`), so release simulations
/// pay nothing for the checks.
#[macro_export]
macro_rules! audit_invariant {
    ($domain:expr, $rule:expr, $cond:expr, $($fmt:tt)+) => {
        if cfg!(feature = "audit") && !($cond) {
            $crate::invariant::report($domain, $rule, ::std::format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so these tests serialize on a lock to
    // avoid cross-test interference under the parallel test harness.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn collecting_sink_accumulates() {
        let _gate = serial();
        let (sink, store) = CollectingSink::new();
        let prev = install_sink(Box::new(sink));
        report("test", "rule-a", "first".to_string());
        report("test", "rule-b", "second".to_string());
        let got: Vec<String> = store
            .lock()
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(got, vec!["[test/rule-a] first", "[test/rule-b] second"]);
        take_sink();
        if let Some(p) = prev {
            install_sink(p);
        }
    }

    #[test]
    fn violation_formats_with_domain_and_rule() {
        let v = Violation {
            domain: "engine",
            rule: "monotonic-clock",
            detail: "t=3 < t=5".into(),
        };
        assert_eq!(v.to_string(), "[engine/monotonic-clock] t=3 < t=5");
    }
}
