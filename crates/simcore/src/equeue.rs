//! Pending-event storage: a binary heap or a hierarchical bucket queue.
//!
//! The engine's original event queue was a global
//! `BinaryHeap<Reverse<Scheduled<M>>>`. That stays available (and stays
//! the default for single-shard engines, so golden digests are
//! bit-for-bit reproducible), but sharded execution defaults to
//! [`BucketQueue`], a two-level calendar queue tuned for the simulator's
//! actual schedule shape:
//!
//! * a **near ring** of fixed-width buckets (64 µs wide, covering about
//!   a quarter second ahead of the active bucket) absorbs message
//!   latencies and short timers with O(1) pushes;
//! * a **far map** (`BTreeMap` keyed by bucket index) absorbs the
//!   multi-second heartbeat and monitoring timers that dominate E11 —
//!   synchronized fleets land thousands of timers in a handful of far
//!   buckets, one `BTreeMap` probe each instead of a heap sift that
//!   memmoves whole `SnoozeMsg` payloads down the tree;
//! * the **active bucket** is sorted once when first touched and then
//!   drained in order; events scheduled *into* the active window (e.g.
//!   1 µs self-timers) go to a small side heap that is merged on pop, so
//!   ordering stays exact without re-sorting.
//!
//! Both variants pop in strictly increasing `(time, seq)` order — the
//! total order every audit invariant and digest depends on — and a
//! randomized differential test below holds the bucket queue to the
//! heap's exact pop sequence.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::engine::Scheduled;
use crate::time::SimTime;

/// log2 of the bucket width: 64 µs per bucket.
const BUCKET_SHIFT: u64 = 6;
/// Number of buckets in the near ring (power of two): 4096 × 64 µs
/// ≈ 262 ms of schedule ahead of the active bucket.
const RING_LEN: u64 = 4096;
const RING_MASK: u64 = RING_LEN - 1;

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.0 >> BUCKET_SHIFT
}

/// Which queue implementation an engine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// The classic global binary heap (single-shard default).
    #[default]
    Heap,
    /// The hierarchical bucket / calendar queue (sharded default).
    Bucket,
}

impl QueueKind {
    /// Stable name used by scenario specs and bench tables.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Heap => "binary-heap",
            QueueKind::Bucket => "bucket",
        }
    }

    /// Parse the scenario-spec spelling.
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s {
            "binary-heap" | "heap" => Some(QueueKind::Heap),
            "bucket" => Some(QueueKind::Bucket),
            _ => None,
        }
    }
}

/// A pending-event queue: one of the two implementations above, behind
/// a single API so the engine core never branches on anything else.
pub(crate) enum EventQueue<M> {
    Heap(BinaryHeap<Reverse<Scheduled<M>>>),
    Bucket(BucketQueue<M>),
}

impl<M> EventQueue<M> {
    pub(crate) fn new(kind: QueueKind) -> EventQueue<M> {
        match kind {
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueKind::Bucket => EventQueue::Bucket(BucketQueue::new()),
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Heap(_) => QueueKind::Heap,
            EventQueue::Bucket(_) => QueueKind::Bucket,
        }
    }

    pub(crate) fn push(&mut self, ev: Scheduled<M>) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(ev)),
            EventQueue::Bucket(b) => b.push(ev),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<M>> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            EventQueue::Bucket(b) => b.pop(),
        }
    }

    /// `(time, seq)` of the next event without removing it. Mutable
    /// because the bucket queue may advance its active bucket to answer.
    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(ev)| (ev.time, ev.seq)),
            EventQueue::Bucket(b) => b.peek_key(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Bucket(b) => b.len,
        }
    }

    #[allow(dead_code)] // symmetry with `len`; used by tests
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper-bound estimate of how many pending events have
    /// `time <= horizon`, capped at `cap` — the shard executor's
    /// dispatch heuristic (inline vs. thread-pool) only needs to know
    /// whether a window is heavy, never an exact count.
    pub(crate) fn approx_events_before(&mut self, horizon: SimTime, cap: usize) -> usize {
        match self {
            // The heap cannot answer cheaply; its length is a safe
            // over-estimate (the heuristic only biases dispatch).
            EventQueue::Heap(h) => h.len().min(cap),
            EventQueue::Bucket(b) => b.approx_events_before(horizon, cap),
        }
    }

    /// All pending events in `(time, seq)` order, leaving the queue
    /// untouched — the model checker's snapshot representation.
    pub(crate) fn to_sorted_vec(&self) -> Vec<Scheduled<M>>
    where
        M: Clone,
    {
        let mut v: Vec<Scheduled<M>> = match self {
            EventQueue::Heap(h) => h.iter().map(|Reverse(ev)| ev.clone()).collect(),
            EventQueue::Bucket(b) => b.iter().cloned().collect(),
        };
        v.sort_unstable();
        v
    }

    /// Rebuild from a snapshot taken by [`EventQueue::to_sorted_vec`].
    pub(crate) fn from_vec(kind: QueueKind, events: Vec<Scheduled<M>>) -> EventQueue<M> {
        let mut q = EventQueue::new(kind);
        for ev in events {
            q.push(ev);
        }
        q
    }

    /// Iterate pending events in arbitrary order (the model checker
    /// sorts the projection it builds from this).
    pub(crate) fn iter(&self) -> Box<dyn Iterator<Item = &Scheduled<M>> + '_> {
        match self {
            EventQueue::Heap(h) => Box::new(h.iter().map(|Reverse(ev)| ev)),
            EventQueue::Bucket(b) => Box::new(b.iter()),
        }
    }

    /// Remove and return every pending event, sorted by `(time, seq)`.
    /// Unlike [`EventQueue::to_sorted_vec`] this needs no `Clone` — the
    /// model checker uses it for re-timing and selective removal.
    pub(crate) fn drain_all(&mut self) -> Vec<Scheduled<M>> {
        let mut v: Vec<Scheduled<M>> = match self {
            EventQueue::Heap(h) => std::mem::take(h)
                .into_iter()
                .map(|Reverse(ev)| ev)
                .collect(),
            EventQueue::Bucket(b) => {
                let mut old = std::mem::replace(b, BucketQueue::new());
                let mut out = Vec::with_capacity(old.len);
                while let Some(ev) = old.pop() {
                    out.push(ev);
                }
                out
            }
        };
        v.sort_unstable();
        v
    }

    /// Remove every event failing `keep`, preserving order semantics.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&Scheduled<M>) -> bool) {
        match self {
            EventQueue::Heap(h) => {
                let kept: Vec<Reverse<Scheduled<M>>> = std::mem::take(h)
                    .into_iter()
                    .filter(|r| keep(&r.0))
                    .collect();
                *h = BinaryHeap::from(kept);
            }
            EventQueue::Bucket(b) => {
                // Rebuild from scratch so the bucket layout stays
                // healthy (a drain-and-repush would leave every event
                // behind the advanced base, degenerating into a heap).
                let old = std::mem::replace(b, BucketQueue::new());
                let mut kept: Vec<Scheduled<M>> = Vec::with_capacity(old.len);
                let mut old = old;
                while let Some(ev) = old.pop() {
                    if keep(&ev) {
                        kept.push(ev);
                    }
                }
                for ev in kept {
                    b.push(ev);
                }
            }
        }
    }
}

/// The two-level hierarchical bucket queue described in the module doc.
pub(crate) struct BucketQueue<M> {
    /// Bucket index of the active (draining) bucket. Only grows.
    base: u64,
    /// Active bucket, sorted **descending** so the next event pops from
    /// the tail in O(1) without shifting the vector.
    active: Vec<Scheduled<M>>,
    /// Events scheduled at or behind the active bucket after it was
    /// sorted (self-timers, cross-shard arrivals below the new base).
    /// Merged with `active` on every pop, so order stays exact.
    late: BinaryHeap<Reverse<Scheduled<M>>>,
    /// Near future: slot `b & RING_MASK` holds bucket `b` iff
    /// `base < b < base + RING_LEN`.
    ring: Vec<Vec<Scheduled<M>>>,
    /// Number of events currently stored in `ring`.
    ring_count: usize,
    /// Far future: bucket index → events, for `b >= base + RING_LEN`.
    far: BTreeMap<u64, Vec<Scheduled<M>>>,
    len: usize,
}

impl<M> BucketQueue<M> {
    fn new() -> BucketQueue<M> {
        BucketQueue {
            base: 0,
            active: Vec::new(),
            late: BinaryHeap::new(),
            ring: (0..RING_LEN).map(|_| Vec::new()).collect(),
            ring_count: 0,
            far: BTreeMap::new(),
            len: 0,
        }
    }

    fn push(&mut self, ev: Scheduled<M>) {
        self.len += 1;
        let b = bucket_of(ev.time);
        if b <= self.base {
            self.late.push(Reverse(ev));
        } else if b - self.base < RING_LEN {
            self.ring[(b & RING_MASK) as usize].push(ev);
            self.ring_count += 1;
        } else {
            self.far.entry(b).or_default().push(ev);
        }
    }

    /// Ensure the next event (if any) is visible in `active` or `late`.
    fn ensure_front(&mut self) {
        if !self.active.is_empty() || !self.late.is_empty() || self.len == 0 {
            return;
        }
        // Active and late are drained; find the earliest non-empty
        // bucket among the ring and the far map. Both must be
        // consulted: once `base` advances, a far bucket can be nearer
        // than the ring's next occupied slot.
        let next_ring = if self.ring_count > 0 {
            (self.base + 1..self.base + RING_LEN)
                .find(|b| !self.ring[(b & RING_MASK) as usize].is_empty())
        } else {
            None
        };
        let next_far = self.far.keys().next().copied();
        let b = match (next_ring, next_far) {
            (Some(r), Some(f)) => r.min(f),
            (Some(r), None) => r,
            (None, Some(f)) => f,
            (None, None) => unreachable!("len > 0 but no bucket holds events"),
        };
        let mut events = if next_ring == Some(b) {
            let v = std::mem::take(&mut self.ring[(b & RING_MASK) as usize]);
            self.ring_count -= v.len();
            v
        } else {
            Vec::new()
        };
        if let Some(mut far_events) = self.far.remove(&b) {
            events.append(&mut far_events);
        }
        events.sort_unstable_by(|x, y| y.cmp(x));
        self.active = events;
        self.base = b;
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.ensure_front();
        let a = self.active.last().map(|ev| (ev.time, ev.seq));
        let l = self.late.peek().map(|Reverse(ev)| (ev.time, ev.seq));
        match (a, l) {
            (Some(a), Some(l)) => Some(a.min(l)),
            (x, None) | (None, x) => x,
        }
    }

    fn pop(&mut self) -> Option<Scheduled<M>> {
        self.ensure_front();
        let take_late = match (self.active.last(), self.late.peek()) {
            (Some(a), Some(Reverse(l))) => l < a,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_late {
            self.late.pop().map(|Reverse(ev)| ev)
        } else {
            self.active.pop()
        }
    }

    fn approx_events_before(&mut self, horizon: SimTime, cap: usize) -> usize {
        self.ensure_front();
        let hb = bucket_of(horizon);
        let mut count = 0usize;
        if self.base <= hb {
            count += self.active.len() + self.late.len();
        }
        if count >= cap {
            return cap;
        }
        // Scan a bounded slice of the ring; far buckets are beyond any
        // realistic lookahead window and are ignored by design.
        let stop = hb.min(self.base + 64);
        for b in self.base + 1..=stop {
            count += self.ring[(b & RING_MASK) as usize].len();
            if count >= cap {
                return cap;
            }
        }
        count
    }

    fn iter(&self) -> impl Iterator<Item = &Scheduled<M>> {
        self.active
            .iter()
            .chain(self.late.iter().map(|Reverse(ev)| ev))
            .chain(self.ring.iter().flatten())
            .chain(self.far.values().flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ComponentId, EventKind};
    use crate::rng::SimRng;

    fn ev(time: u64, seq: u64) -> Scheduled<u32> {
        Scheduled {
            time: SimTime(time),
            seq,
            kind: EventKind::Start(ComponentId(0)),
        }
    }

    /// Drive both implementations through an identical operation
    /// sequence and require identical pop streams.
    fn differential(times: impl Iterator<Item = (u64, bool)>) {
        let mut heap: EventQueue<u32> = EventQueue::new(QueueKind::Heap);
        let mut bucket: EventQueue<u32> = EventQueue::new(QueueKind::Bucket);
        let mut seq = 0u64;
        let mut clock = 0u64; // pushes never go behind the last pop
        for (t, do_pop) in times {
            if do_pop {
                let a = heap.pop().map(|e| (e.time, e.seq));
                let b = bucket.pop().map(|e| (e.time, e.seq));
                assert_eq!(a, b, "pop divergence");
                if let Some((t, _)) = a {
                    clock = clock.max(t.0);
                }
            } else {
                let at = clock + t;
                heap.push(ev(at, seq));
                bucket.push(ev(at, seq));
                seq += 1;
            }
            assert_eq!(heap.len(), bucket.len());
            assert_eq!(heap.peek_key(), bucket.peek_key(), "peek divergence");
        }
        loop {
            let a = heap.pop().map(|e| (e.time, e.seq));
            let b = bucket.pop().map(|e| (e.time, e.seq));
            assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_heap_on_random_schedules() {
        let mut rng = SimRng::new(0xE0_0E);
        // Mix of near (sub-millisecond), mid (ring-range), and far
        // (multi-second) offsets, interleaved with pops.
        let ops: Vec<(u64, bool)> = (0..4000)
            .map(|_| {
                let pop = rng.range(0, 3) == 0;
                let t = match rng.range(0, 4) {
                    0 => rng.range(0, 200),               // active/near bucket
                    1 => rng.range(200, 60_000),          // ring
                    2 => rng.range(60_000, 400_000),      // outer ring / far edge
                    _ => rng.range(1_000_000, 9_000_000), // far heartbeat-style
                };
                (t as u64, pop)
            })
            .collect();
        differential(ops.into_iter());
    }

    #[test]
    fn matches_heap_on_timer_storm_pattern() {
        // The engine_throughput TimerStorm: every pop schedules a new
        // event 1 µs later, so pushes continually land in the active
        // bucket (the `late` side heap path).
        let pattern = (0..64)
            .map(|_| (1u64, false))
            .chain((0..2000).flat_map(|_| [(0, true), (1, false)]));
        differential(pattern);
    }

    #[test]
    fn matches_heap_on_synchronized_fleet_bursts() {
        // E11's shape: thousands of timers at the same far instant,
        // deliveries spread a few hundred µs after each burst.
        let mut ops: Vec<(u64, bool)> = Vec::new();
        for burst in 0..5u64 {
            for i in 0..300 {
                ops.push((3_000_000 * (burst + 1) + (i % 7) * 97, false));
            }
            for _ in 0..300 {
                ops.push((0, true));
            }
        }
        differential(ops.into_iter());
    }

    #[test]
    fn push_behind_active_bucket_still_pops_in_order() {
        // A cross-shard arrival can land numerically below the bucket
        // the queue has already advanced to (the `late` path).
        let mut q: EventQueue<u32> = EventQueue::new(QueueKind::Bucket);
        q.push(ev(10_000_000, 0));
        assert_eq!(q.peek_key(), Some((SimTime(10_000_000), 0))); // advances base far ahead
        q.push(ev(500, 1));
        q.push(ev(9_999_999, 2));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        assert_eq!(q.pop().map(|e| e.seq), None);
    }

    #[test]
    fn snapshot_roundtrip_preserves_order_and_len() {
        let mut rng = SimRng::new(7);
        let mut q: EventQueue<u32> = EventQueue::new(QueueKind::Bucket);
        for seq in 0..500 {
            q.push(ev(rng.range(0, 5_000_000) as u64, seq));
        }
        for _ in 0..100 {
            q.pop();
        }
        let snap = q.to_sorted_vec();
        assert_eq!(snap.len(), q.len());
        assert!(snap.windows(2).all(|w| w[0] < w[1]), "snapshot sorted");
        let mut restored = EventQueue::from_vec(QueueKind::Bucket, snap.clone());
        for want in &snap {
            let got = restored.pop().expect("restored event");
            assert_eq!((got.time, got.seq), (want.time, want.seq));
        }
        assert!(restored.pop().is_none());
    }

    #[test]
    fn retain_filters_both_variants() {
        for kind in [QueueKind::Heap, QueueKind::Bucket] {
            let mut q: EventQueue<u32> = EventQueue::new(kind);
            for seq in 0..100 {
                q.push(ev(seq * 10, seq));
            }
            q.retain(|ev| ev.seq % 2 == 0);
            assert_eq!(q.len(), 50);
            let mut prev = None;
            while let Some(e) = q.pop() {
                assert_eq!(e.seq % 2, 0);
                assert!(prev < Some((e.time, e.seq)));
                prev = Some((e.time, e.seq));
            }
        }
    }

    #[test]
    fn approx_count_is_a_usable_dispatch_signal() {
        let mut q: EventQueue<u32> = EventQueue::new(QueueKind::Bucket);
        for seq in 0..200 {
            q.push(ev(seq, seq)); // all within the first few buckets
        }
        q.push(ev(8_000_000, 999));
        assert_eq!(q.approx_events_before(SimTime(300), 128), 128);
        let few = q.approx_events_before(SimTime(300), usize::MAX);
        assert!((200..=201).contains(&few), "got {few}");
    }

    #[test]
    fn queue_kind_names_roundtrip() {
        for kind in [QueueKind::Heap, QueueKind::Bucket] {
            assert_eq!(QueueKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(QueueKind::parse("heap"), Some(QueueKind::Heap));
        assert_eq!(QueueKind::parse("splay"), None);
    }
}
