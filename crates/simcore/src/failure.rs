//! Failure injection plans.
//!
//! The paper's §II-E describes recovery from GL, GM and LC failures; the
//! CCGrid evaluation killed components mid-run and measured that
//! "fault tolerance features of the framework do not impact application
//! performance". [`FailurePlan`] expresses those experiments declaratively:
//! a list of crash/restart actions applied to an [`Engine`] before the run,
//! plus generators for random failure schedules.

use crate::engine::{ComponentId, Engine};
use crate::rng::SimRng;
use crate::time::{SimSpan, SimTime};

/// One scheduled failure action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureAction {
    /// Crash the component at the given time.
    Crash(SimTime, ComponentId),
    /// Restart the component at the given time.
    Restart(SimTime, ComponentId),
}

impl FailureAction {
    /// When this action fires.
    pub fn time(&self) -> SimTime {
        match *self {
            FailureAction::Crash(t, _) | FailureAction::Restart(t, _) => t,
        }
    }

    /// The component affected.
    pub fn target(&self) -> ComponentId {
        match *self {
            FailureAction::Crash(_, c) | FailureAction::Restart(_, c) => c,
        }
    }
}

/// A declarative failure schedule.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    actions: Vec<FailureAction>,
}

impl FailurePlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash `id` at `at`.
    pub fn crash(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Crash(at, id));
        self
    }

    /// Restart `id` at `at`.
    pub fn restart(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Restart(at, id));
        self
    }

    /// Crash `id` at `at` and restart it after `downtime`.
    pub fn crash_for(self, at: SimTime, downtime: SimSpan, id: ComponentId) -> Self {
        self.crash(at, id).restart(at + downtime, id)
    }

    /// A schedule of independent crash/repair cycles: each target fails
    /// with exponentially distributed inter-failure times (`mttf` mean) and
    /// recovers after exponentially distributed repair times (`mttr` mean),
    /// until `horizon`.
    pub fn random_crash_repair(
        targets: &[ComponentId],
        mttf: SimSpan,
        mttr: SimSpan,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        let mut plan = FailurePlan::new();
        for &t in targets {
            let mut clock = SimTime::ZERO;
            loop {
                clock += rng.exp_span(mttf);
                if clock >= horizon {
                    break;
                }
                let down = rng.exp_span(mttr);
                plan = plan.crash(clock, t);
                clock += down;
                if clock >= horizon {
                    break;
                }
                plan = plan.restart(clock, t);
            }
        }
        plan.sorted()
    }

    /// Actions sorted by time (stable for equal times).
    fn sorted(mut self) -> Self {
        self.actions.sort_by_key(|a| a.time());
        self
    }

    /// The scheduled actions.
    pub fn actions(&self) -> &[FailureAction] {
        &self.actions
    }

    /// Number of crash actions in the plan.
    pub fn crash_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, FailureAction::Crash(..)))
            .count()
    }

    /// Install every action into the engine's event queue.
    pub fn apply(&self, engine: &mut Engine) {
        for action in &self.actions {
            match *action {
                FailureAction::Crash(at, id) => engine.schedule_crash(at, id),
                FailureAction::Restart(at, id) => engine.schedule_restart(at, id),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AnyMsg, Component, Ctx, SimBuilder};

    struct Dummy;
    impl Component for Dummy {
        fn on_message(&mut self, _: &mut Ctx, _: ComponentId, _: AnyMsg) {}
    }

    #[test]
    fn builder_accumulates_actions() {
        let plan = FailurePlan::new()
            .crash_for(SimTime::from_secs(1), SimSpan::from_secs(2), ComponentId(0))
            .crash(SimTime::from_secs(9), ComponentId(1));
        assert_eq!(plan.actions().len(), 3);
        assert_eq!(plan.crash_count(), 2);
        assert_eq!(
            plan.actions()[1],
            FailureAction::Restart(SimTime::from_secs(3), ComponentId(0))
        );
    }

    #[test]
    fn apply_drives_engine_lifecycle() {
        let mut sim = SimBuilder::new(1).build();
        let id = sim.add_component("d", Dummy);
        FailurePlan::new()
            .crash_for(SimTime::from_secs(1), SimSpan::from_secs(1), id)
            .apply(&mut sim);
        sim.run_until(SimTime::from_secs(1) + SimSpan::from_millis(1));
        assert!(!sim.is_alive(id));
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.is_alive(id));
    }

    #[test]
    fn random_plan_is_sorted_and_alternates_per_target() {
        let mut rng = SimRng::new(5);
        let targets = [ComponentId(0), ComponentId(1), ComponentId(2)];
        let plan = FailurePlan::random_crash_repair(
            &targets,
            SimSpan::from_secs(100),
            SimSpan::from_secs(10),
            SimTime::from_secs(2000),
            &mut rng,
        );
        let times: Vec<SimTime> = plan.actions().iter().map(|a| a.time()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "plan must be time-ordered");
        // Per-target, actions must strictly alternate crash/restart.
        for &t in &targets {
            let mut expect_crash = true;
            for a in plan.actions().iter().filter(|a| a.target() == t) {
                match a {
                    FailureAction::Crash(..) => {
                        assert!(expect_crash, "two crashes in a row for {t:?}");
                        expect_crash = false;
                    }
                    FailureAction::Restart(..) => {
                        assert!(!expect_crash, "restart before crash for {t:?}");
                        expect_crash = true;
                    }
                }
            }
        }
        assert!(
            plan.crash_count() > 0,
            "horizon long enough to see failures"
        );
    }

    #[test]
    fn random_plan_respects_horizon() {
        let mut rng = SimRng::new(9);
        let plan = FailurePlan::random_crash_repair(
            &[ComponentId(0)],
            SimSpan::from_secs(5),
            SimSpan::from_secs(1),
            SimTime::from_secs(100),
            &mut rng,
        );
        for a in plan.actions() {
            assert!(a.time() < SimTime::from_secs(100));
        }
    }
}
