//! Failure injection plans.
//!
//! The paper's §II-E describes recovery from GL, GM and LC failures; the
//! CCGrid evaluation killed components mid-run and measured that
//! "fault tolerance features of the framework do not impact application
//! performance". [`FailurePlan`] expresses those experiments declaratively:
//! a list of crash/restart actions applied to an [`Engine`] before the run,
//! plus generators for random failure schedules.

use crate::engine::{Component, ComponentId, Engine, NetFault};
use crate::rng::SimRng;
use crate::time::{SimSpan, SimTime};

/// One scheduled failure action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureAction {
    /// Crash the component at the given time.
    Crash(SimTime, ComponentId),
    /// Restart the component at the given time.
    Restart(SimTime, ComponentId),
    /// Cut the component off from the network at the given time.
    Isolate(SimTime, ComponentId),
    /// Reconnect a previously isolated component at the given time.
    Reconnect(SimTime, ComponentId),
    /// Degrade every link from the given time on: set the message-loss
    /// probability in parts per million.
    Degrade(SimTime, u32),
}

impl FailureAction {
    /// When this action fires.
    pub fn time(&self) -> SimTime {
        match *self {
            FailureAction::Crash(t, _)
            | FailureAction::Restart(t, _)
            | FailureAction::Isolate(t, _)
            | FailureAction::Reconnect(t, _)
            | FailureAction::Degrade(t, _) => t,
        }
    }

    /// The component affected, if the action targets one (link
    /// degradation targets the whole network).
    pub fn target(&self) -> Option<ComponentId> {
        match *self {
            FailureAction::Crash(_, c)
            | FailureAction::Restart(_, c)
            | FailureAction::Isolate(_, c)
            | FailureAction::Reconnect(_, c) => Some(c),
            FailureAction::Degrade(..) => None,
        }
    }
}

/// A declarative failure schedule.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    actions: Vec<FailureAction>,
}

impl FailurePlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash `id` at `at`.
    pub fn crash(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Crash(at, id));
        self
    }

    /// Restart `id` at `at`.
    pub fn restart(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Restart(at, id));
        self
    }

    /// Crash `id` at `at` and restart it after `downtime`.
    pub fn crash_for(self, at: SimTime, downtime: SimSpan, id: ComponentId) -> Self {
        self.crash(at, id).restart(at + downtime, id)
    }

    /// Isolate `id` from the network at `at`.
    pub fn isolate(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Isolate(at, id));
        self
    }

    /// Reconnect `id` at `at`.
    pub fn reconnect(mut self, at: SimTime, id: ComponentId) -> Self {
        self.actions.push(FailureAction::Reconnect(at, id));
        self
    }

    /// Isolate `id` at `at` and reconnect it after `downtime` — a link
    /// failure rather than a process failure: the component keeps
    /// running but nobody can hear it.
    pub fn isolate_for(self, at: SimTime, downtime: SimSpan, id: ComponentId) -> Self {
        self.isolate(at, id).reconnect(at + downtime, id)
    }

    /// Set the network-wide message-loss probability to `ppm` parts per
    /// million from `at` on (0 restores a lossless network).
    pub fn degrade_links(mut self, at: SimTime, ppm: u32) -> Self {
        self.actions.push(FailureAction::Degrade(at, ppm));
        self
    }

    /// A schedule of independent crash/repair cycles: each target fails
    /// with exponentially distributed inter-failure times (`mttf` mean) and
    /// recovers after exponentially distributed repair times (`mttr` mean),
    /// until `horizon`.
    pub fn random_crash_repair(
        targets: &[ComponentId],
        mttf: SimSpan,
        mttr: SimSpan,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        let mut plan = FailurePlan::new();
        for &t in targets {
            let mut clock = SimTime::ZERO;
            loop {
                clock += rng.exp_span(mttf);
                if clock >= horizon {
                    break;
                }
                let down = rng.exp_span(mttr);
                plan = plan.crash(clock, t);
                clock += down;
                if clock >= horizon {
                    break;
                }
                plan = plan.restart(clock, t);
            }
        }
        plan.sorted()
    }

    /// Actions sorted by time (stable for equal times).
    fn sorted(mut self) -> Self {
        self.actions.sort_by_key(|a| a.time());
        self
    }

    /// The scheduled actions.
    pub fn actions(&self) -> &[FailureAction] {
        &self.actions
    }

    /// Number of crash actions in the plan.
    pub fn crash_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, FailureAction::Crash(..)))
            .count()
    }

    /// Install every action into the engine's event queue.
    pub fn apply<C: Component>(&self, engine: &mut Engine<C>) {
        for action in &self.actions {
            match *action {
                FailureAction::Crash(at, id) => engine.schedule_crash(at, id),
                FailureAction::Restart(at, id) => engine.schedule_restart(at, id),
                FailureAction::Isolate(at, id) => {
                    engine.schedule_net_fault(at, NetFault::Isolate(id))
                }
                FailureAction::Reconnect(at, id) => {
                    engine.schedule_net_fault(at, NetFault::Reconnect(id))
                }
                FailureAction::Degrade(at, ppm) => {
                    engine.schedule_net_fault(at, NetFault::SetLossPpm(ppm))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Component, Ctx, SimBuilder};
    use crate::node_enum;

    struct Dummy;
    impl Component for Dummy {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ComponentId, _: ()) {}
    }

    struct Beacon {
        peer: ComponentId,
    }
    impl Component for Beacon {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimSpan::from_secs(1), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ComponentId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _tag: u64) {
            ctx.send(self.peer, ());
            ctx.set_timer(SimSpan::from_secs(1), 0);
        }
    }

    struct Sink {
        seen: u32,
    }
    impl Component for Sink {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ComponentId, _: ()) {
            self.seen += 1;
        }
    }

    node_enum! {
        enum FaultNode: () {
            Dummy(Dummy) as as_dummy,
            Beacon(Beacon) as as_beacon,
            Sink(Sink) as as_sink,
        }
    }

    #[test]
    fn builder_accumulates_actions() {
        let plan = FailurePlan::new()
            .crash_for(SimTime::from_secs(1), SimSpan::from_secs(2), ComponentId(0))
            .crash(SimTime::from_secs(9), ComponentId(1));
        assert_eq!(plan.actions().len(), 3);
        assert_eq!(plan.crash_count(), 2);
        assert_eq!(
            plan.actions()[1],
            FailureAction::Restart(SimTime::from_secs(3), ComponentId(0))
        );
    }

    #[test]
    fn apply_drives_engine_lifecycle() {
        let mut sim: Engine<FaultNode> = SimBuilder::new(1).build();
        let id = sim.add_component("d", Dummy);
        FailurePlan::new()
            .crash_for(SimTime::from_secs(1), SimSpan::from_secs(1), id)
            .apply(&mut sim);
        sim.run_until(SimTime::from_secs(1) + SimSpan::from_millis(1));
        assert!(!sim.is_alive(id));
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.is_alive(id));
    }

    #[test]
    fn random_plan_is_sorted_and_alternates_per_target() {
        let mut rng = SimRng::new(5);
        let targets = [ComponentId(0), ComponentId(1), ComponentId(2)];
        let plan = FailurePlan::random_crash_repair(
            &targets,
            SimSpan::from_secs(100),
            SimSpan::from_secs(10),
            SimTime::from_secs(2000),
            &mut rng,
        );
        let times: Vec<SimTime> = plan.actions().iter().map(|a| a.time()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "plan must be time-ordered");
        // Per-target, actions must strictly alternate crash/restart.
        for &t in &targets {
            let mut expect_crash = true;
            for a in plan.actions().iter().filter(|a| a.target() == Some(t)) {
                match a {
                    FailureAction::Crash(..) => {
                        assert!(expect_crash, "two crashes in a row for {t:?}");
                        expect_crash = false;
                    }
                    FailureAction::Restart(..) => {
                        assert!(!expect_crash, "restart before crash for {t:?}");
                        expect_crash = true;
                    }
                    other => panic!("unexpected action in random plan: {other:?}"),
                }
            }
        }
        assert!(
            plan.crash_count() > 0,
            "horizon long enough to see failures"
        );
    }

    #[test]
    fn net_faults_fire_as_events() {
        let mut sim: Engine<FaultNode> = SimBuilder::new(3).build();
        let sink = sim.add_component("sink", Sink { seen: 0 });
        let beacon = sim.add_component("beacon", Beacon { peer: sink });
        // Isolate the beacon for seconds (4, 8]: its 1 Hz pings during
        // that window are lost; outside it they arrive.
        FailurePlan::new()
            .isolate_for(
                SimTime::from_secs(4) + SimSpan::from_micros(1),
                SimSpan::from_secs(4),
                beacon,
            )
            .apply(&mut sim);
        sim.run_until(SimTime::from_secs(10) + SimSpan::from_millis(1));
        let seen = sim.component(sink).as_sink().unwrap().seen;
        assert_eq!(seen, 6, "pings at 1-4 and 9-10 arrive, 5-8 are lost");
        assert_eq!(sim.metrics().counter("failure.net"), 2);
    }

    #[test]
    fn degrade_links_changes_loss_rate_at_the_scheduled_time() {
        let mut sim: Engine<FaultNode> = SimBuilder::new(1).build();
        let plan = FailurePlan::new().degrade_links(SimTime::from_secs(1), 1_000_000);
        assert_eq!(plan.actions()[0].target(), None);
        plan.apply(&mut sim);
        let sink = sim.add_component("sink", Dummy);
        sim.run_until(SimTime::from_secs(2));
        // With 100% loss installed at t=1, a message sent via the network
        // from another component would be dropped; external posts bypass
        // loss, so just assert the event executed and was counted.
        assert_eq!(sim.metrics().counter("failure.net"), 1);
        let _ = sink;
    }

    #[test]
    fn random_plan_respects_horizon() {
        let mut rng = SimRng::new(9);
        let plan = FailurePlan::random_crash_repair(
            &[ComponentId(0)],
            SimSpan::from_secs(5),
            SimSpan::from_secs(1),
            SimTime::from_secs(100),
            &mut rng,
        );
        for a in plan.actions() {
            assert!(a.time() < SimTime::from_secs(100));
        }
    }
}
