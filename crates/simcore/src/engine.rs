//! The discrete-event engine.
//!
//! User logic lives in [`Component`]s. Each component is addressed by a
//! [`ComponentId`] and reacts to three stimuli: a start signal, messages
//! from other components (routed through the simulated [`crate::network`]),
//! and timers it set on itself. All interaction with the simulation happens
//! through the [`Ctx`] handle passed into every callback — components never
//! hold references to one another, which is what makes crash injection and
//! deterministic replay trivial.
//!
//! The engine is *generic over its message type*: a [`Component`] declares
//! the closed message set it speaks as [`Component::Msg`] (typically an
//! enum), the engine is [`Engine<C>`] over one component type `C`, and a
//! heterogeneous system wraps its node kinds in a dispatch enum — see
//! [`node_enum!`](crate::node_enum). Messages travel by value, handlers
//! match exhaustively, and the compiler checks every arm: no `Box`, no
//! `Any`, no runtime casts on the deliver path.
//!
//! Events are executed in `(time, sequence)` order; the sequence number
//! breaks ties in scheduling order, so the engine is fully deterministic.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::fmt;

use snooze_telemetry::label::label;
use snooze_telemetry::span::{SpanId, SpanLog};

use crate::mc::McState as _;
use crate::metrics::MetricsRegistry;
use crate::network::{Network, NetworkConfig};
use crate::rng::SimRng;
use crate::time::{SimSpan, SimTime};
use crate::trace::Trace;

/// Identifies a registered component. Ids are dense indices assigned in
/// registration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub usize);

impl ComponentId {
    /// Pseudo-sender for messages injected from outside the simulation
    /// (e.g. a test driver posting a client request).
    pub const EXTERNAL: ComponentId = ComponentId(usize::MAX);
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ComponentId::EXTERNAL {
            write!(f, "ext")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

impl From<ComponentId> for u64 {
    fn from(id: ComponentId) -> u64 {
        id.0 as u64
    }
}

/// Identifies a multicast group on the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub usize);

/// Handle for cancelling a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(u64);

/// A simulated process speaking a closed, typed message set.
///
/// [`Component::Msg`] is the message type this component sends and
/// receives — usually a workspace enum (one variant per wire message),
/// so `on_message` is an exhaustive `match` the compiler checks.
pub trait Component {
    /// The message type this component exchanges over the simulated
    /// network. Every component registered in one [`Engine`] shares it.
    type Msg;

    /// Called once when the simulation starts (or never, if the component
    /// is registered after `run` began — use messages to bootstrap those).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A message arrived from `src` over the simulated network.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, src: ComponentId, msg: Self::Msg);

    /// A timer set via [`Ctx::set_timer`] fired. `tag` is the caller-chosen
    /// discriminator.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _tag: u64) {}

    /// The failure injector crashed this component. State is *not* cleared
    /// automatically — a crashed process keeps its memory so tests can
    /// inspect it — but no events will be delivered until restart.
    fn on_crash(&mut self, _now: SimTime) {}

    /// The failure injector restarted this component. Implementations
    /// should reset volatile state here, as a freshly exec'd process would.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// A scheduled change to the simulated network's health — the
/// event-scheduled form of fault injection that used to require driver
/// code stepping the engine and mutating [`Engine::network_mut`] by
/// hand. Installed via [`Engine::schedule_net_fault`] (or declaratively
/// through [`crate::failure::FailurePlan`]), it fires in event order
/// like any other event, so fault schedules are part of the audited,
/// digest-covered history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetFault {
    /// Cut a component off from the network entirely.
    Isolate(ComponentId),
    /// Reconnect a previously isolated component.
    Reconnect(ComponentId),
    /// Degrade every link: set the message-loss probability, in parts
    /// per million (integer, so fault schedules stay `Eq`/hashable).
    SetLossPpm(u32),
}

#[derive(Clone)]
pub(crate) enum EventKind<M> {
    Start(ComponentId),
    Deliver {
        src: ComponentId,
        dst: ComponentId,
        msg: M,
        /// Causal span context riding along with the message — the
        /// simulated analogue of trace-context propagation headers.
        span: Option<SpanId>,
    },
    Timer {
        dst: ComponentId,
        tag: u64,
        incarnation: u32,
        id: u64,
        /// Span context carried across the timer (explicitly opted into
        /// via [`Ctx::set_timer_in`]; plain timers never inherit one, so
        /// periodic ticks don't capture unrelated submission contexts).
        span: Option<SpanId>,
    },
    Crash(ComponentId),
    Restart(ComponentId),
    Net(NetFault),
}

#[derive(Clone)]
pub(crate) struct Scheduled<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Everything the engine owns apart from the components themselves.
/// Split out so a component can be borrowed mutably while its [`Ctx`]
/// mutates the rest of the engine.
pub(crate) struct EngineCore<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    rng: SimRng,
    pub(crate) network: Network,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) trace: Trace,
    pub(crate) spans: SpanLog,
    /// Ambient span context for the event being executed: seeded from
    /// the incoming message/timer context, updated by [`Ctx::span_open`]
    /// so later sends in the same handler propagate the innermost span.
    ctx_span: Option<SpanId>,
    alive: Vec<bool>,
    incarnation: Vec<u32>,
    names: Vec<String>,
    cancelled_timers: BTreeSet<u64>,
    next_timer_id: u64,
    halted: bool,
    events_executed: u64,
    /// Running FNV-1a fingerprint of the executed event stream.
    digest: u64,
    /// `(time, seq)` of the last executed event — the audit's witness
    /// that the executed stream is strictly ordered.
    last_executed: Option<(SimTime, u64)>,
    /// Names payloads of `M` for the profiler, the flight recorder and
    /// the `dead_letters{msg}` breakdown. An observer: never folded
    /// into the digest, excluded from mc snapshots and fingerprints.
    classifier: Option<fn(&M) -> &'static str>,
    /// Per-(component kind, message variant) event attribution; `None`
    /// until enabled. Observer.
    profiler: Option<crate::flight::Profiler>,
    /// Bounded ring of recent executed events; `None` until enabled.
    /// Observer.
    flight: Option<crate::flight::FlightRecorder>,
}

impl<M> EngineCore<M> {
    /// Fold an executed event into the run digest. The digest covers the
    /// full executed stream — `(time, seq, kind, endpoints)` per event —
    /// so two runs agree on it iff they executed the same history.
    fn fold_event(&mut self, ev: &Scheduled<M>) {
        let (disc, a, b): (u64, u64, u64) = match &ev.kind {
            EventKind::Start(id) => (1, id.0 as u64, 0),
            // Span contexts are observers, not causes: they are folded
            // into the SpanLog's own digest, never into the event digest,
            // so instrumentation cannot perturb the audited history.
            // Payloads are likewise never folded — the digest is message-
            // type-agnostic, which is what let the typed message layer
            // replace the old type-erased one digest-identically.
            EventKind::Deliver { src, dst, .. } => (2, src.0 as u64, dst.0 as u64),
            EventKind::Timer { dst, tag, .. } => (3, dst.0 as u64, *tag),
            EventKind::Crash(id) => (4, id.0 as u64, 0),
            EventKind::Restart(id) => (5, id.0 as u64, 0),
            EventKind::Net(NetFault::Isolate(id)) => (6, id.0 as u64, 0),
            EventKind::Net(NetFault::Reconnect(id)) => (6, id.0 as u64, 1),
            EventKind::Net(NetFault::SetLossPpm(ppm)) => (6, *ppm as u64, 2),
        };
        let mut h = self.digest;
        for word in [ev.time.0, ev.seq, disc, a, b] {
            h = crate::trace::fnv1a(h, &word.to_le_bytes());
        }
        self.digest = h;
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time: at.max(self.now),
            seq,
            kind,
        }));
    }

    fn send_via_network(
        &mut self,
        src: ComponentId,
        dst: ComponentId,
        extra: SimSpan,
        msg: M,
        span: Option<SpanId>,
    ) {
        let departs = self.now + extra;
        match self.network.transit(src, dst, departs, &mut self.rng) {
            Some(arrival) => {
                self.schedule(
                    arrival,
                    EventKind::Deliver {
                        src,
                        dst,
                        msg,
                        span,
                    },
                );
            }
            None => {
                self.metrics.incr("net.dropped");
            }
        }
    }
}

/// The context handle passed to every component callback, parameterized
/// by the engine's message type `M`.
pub struct Ctx<'a, M> {
    core: &'a mut EngineCore<M>,
    me: ComponentId,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Id of the component being invoked.
    pub fn id(&self) -> ComponentId {
        self.me
    }

    /// The engine-wide RNG. Components needing an independent stream should
    /// fork one at construction time instead.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Send `msg` to `dst` over the simulated network (subject to latency,
    /// loss and partitions). Anything convertible into the engine's
    /// message type is accepted, so call sites pass concrete wire structs
    /// and the `From` impls on the message enum do the wrapping. The
    /// current span context (the incoming one, or the innermost span
    /// opened via [`Ctx::span_open`]) rides along, so causal chains
    /// survive uninstrumented hops.
    pub fn send(&mut self, dst: ComponentId, msg: impl Into<M>) {
        let span = self.core.ctx_span;
        self.send_with(dst, SimSpan::ZERO, msg.into(), span);
    }

    /// Send after an additional local processing delay (still subject to
    /// network latency on top).
    pub fn send_after(&mut self, delay: SimSpan, dst: ComponentId, msg: impl Into<M>) {
        let span = self.core.ctx_span;
        self.send_with(dst, delay, msg.into(), span);
    }

    /// Send `msg` carrying an explicit span context instead of the
    /// ambient one — for operations whose span outlives a single handler
    /// (a GM retrying a placement it recorded earlier, say).
    pub fn send_in(&mut self, span: SpanId, dst: ComponentId, msg: impl Into<M>) {
        self.send_with(dst, SimSpan::ZERO, msg.into(), Some(span));
    }

    fn send_with(&mut self, dst: ComponentId, delay: SimSpan, msg: M, span: Option<SpanId>) {
        self.core.metrics.incr("net.sent");
        let me = self.me;
        self.core.send_via_network(me, dst, delay, msg, span);
    }

    /// Multicast to every current member of `group` except the sender.
    /// `make` is invoked once per receiver, so payloads need not be
    /// `Clone`.
    pub fn multicast<T: Into<M>, F: Fn() -> T>(&mut self, group: GroupId, make: F) {
        let members = self.core.network.group_members(group).to_vec();
        for dst in members {
            if dst != self.me {
                self.send(dst, make());
            }
        }
    }

    /// Join a multicast group.
    pub fn join_group(&mut self, group: GroupId) {
        let me = self.me;
        self.core.network.join_group(group, me);
    }

    /// Leave a multicast group.
    pub fn leave_group(&mut self, group: GroupId) {
        let me = self.me;
        self.core.network.leave_group(group, me);
    }

    /// Arrange for [`Component::on_timer`] to be called on this component
    /// after `delay`, carrying `tag`. Timers die with the incarnation that
    /// set them: if the component crashes, pending timers never fire.
    pub fn set_timer(&mut self, delay: SimSpan, tag: u64) -> TimerHandle {
        self.set_timer_impl(delay, tag, None)
    }

    /// Like [`Ctx::set_timer`], but the timer carries span context `span`:
    /// when it fires, the handler's ambient context is `span`, so a VM
    /// boot delay or migration transfer keeps its causal chain intact.
    pub fn set_timer_in(&mut self, span: SpanId, delay: SimSpan, tag: u64) -> TimerHandle {
        self.set_timer_impl(delay, tag, Some(span))
    }

    fn set_timer_impl(&mut self, delay: SimSpan, tag: u64, span: Option<SpanId>) -> TimerHandle {
        let id = self.core.next_timer_id;
        self.core.next_timer_id += 1;
        let at = self.core.now + delay;
        let incarnation = self.core.incarnation[self.me.0];
        let dst = self.me;
        self.core.schedule(
            at,
            EventKind::Timer {
                dst,
                tag,
                incarnation,
                id,
                span,
            },
        );
        TimerHandle(id)
    }

    /// Cancel a timer previously set with [`Ctx::set_timer`]. Cancelling an
    /// already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.core.cancelled_timers.insert(handle.0);
    }

    /// Whether `other` is currently alive (not crashed). Real processes
    /// cannot ask this of remote peers — only failure detectors built on
    /// heartbeats should use it for *remote* components; it is exposed
    /// mainly so a component can cheaply model local knowledge (e.g. a
    /// hypervisor knows its own host is up).
    pub fn is_alive(&self, other: ComponentId) -> bool {
        self.core.alive.get(other.0).copied().unwrap_or(false)
    }

    /// Record a metric counter increment.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Append a line to the bounded event trace.
    pub fn trace(&mut self, category: &'static str, text: impl Into<String>) {
        let now = self.core.now;
        let me = self.me;
        self.core.trace.record(now, me, category, text.into());
    }

    /// Stop the simulation after the current event completes.
    pub fn halt(&mut self) {
        self.core.halted = true;
    }

    // --- causal spans ----------------------------------------------------

    /// The span context this handler is executing under: the context the
    /// triggering message/timer carried, or the innermost span opened by
    /// [`Ctx::span_open`] since.
    pub fn current_span(&self) -> Option<SpanId> {
        self.core.ctx_span
    }

    /// Open a span named `name` as a child of the current context (or as
    /// a root if there is none). The new span becomes the ambient context
    /// for the rest of this handler, so subsequent [`Ctx::send`]s carry it.
    pub fn span_open(&mut self, name: &'static str) -> SpanId {
        let parent = self.core.ctx_span;
        self.span_open_under(name, parent)
    }

    /// Open a span with an explicit parent (`None` for a root), e.g. when
    /// resuming an operation whose context was stashed in component state.
    /// Like [`Ctx::span_open`], the new span becomes the ambient context.
    pub fn span_open_under(&mut self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let id = self
            .core
            .spans
            .open(name, self.me.0 as u64, parent, self.core.now.0);
        self.core.ctx_span = Some(id);
        id
    }

    /// Close span `id` at the current virtual time. If it is the ambient
    /// context, the context pops back to its parent (spans behave as a
    /// stack within a handler). Double-close is a no-op.
    pub fn span_close(&mut self, id: SpanId) {
        if self.core.ctx_span == Some(id) {
            self.core.ctx_span = self.core.spans.parent_of(id);
        }
        self.core.spans.close(id, self.core.now.0);
    }

    /// Open and immediately close a zero-duration marker span (e.g.
    /// "became GL", "declared GM dead"). Ambient context is unchanged.
    pub fn span_instant(&mut self, name: &'static str) -> SpanId {
        let id = self.span_open(name);
        self.span_close(id);
        id
    }

    /// Annotate span `id` with a key/value label.
    pub fn span_label(&mut self, id: SpanId, key: &'static str, value: impl Into<String>) {
        self.core.spans.label(id, key, value);
    }
}

/// Builder for [`Engine`].
pub struct SimBuilder {
    seed: u64,
    network: NetworkConfig,
    trace_capacity: usize,
    max_events: u64,
}

impl SimBuilder {
    /// Start building a simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            network: NetworkConfig::default(),
            trace_capacity: 0,
            max_events: u64::MAX,
        }
    }

    /// Configure the simulated network.
    pub fn network(mut self, config: NetworkConfig) -> Self {
        self.network = config;
        self
    }

    /// Keep the last `capacity` trace records (0 disables tracing).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Abort the run after this many events (runaway-loop guard).
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Finish building. The component type is chosen by the caller
    /// (usually via a type annotation on the binding):
    ///
    /// ```ignore
    /// let mut sim: Engine<SnoozeNode> = SimBuilder::new(7).build();
    /// ```
    pub fn build<C: Component>(self) -> Engine<C> {
        let rng = SimRng::new(self.seed);
        Engine {
            core: EngineCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                rng,
                network: Network::new(self.network),
                metrics: MetricsRegistry::new(),
                trace: Trace::new(self.trace_capacity),
                spans: SpanLog::new(),
                ctx_span: None,
                alive: Vec::new(),
                incarnation: Vec::new(),
                names: Vec::new(),
                cancelled_timers: BTreeSet::new(),
                next_timer_id: 0,
                halted: false,
                events_executed: 0,
                digest: crate::trace::FNV_OFFSET,
                last_executed: None,
                classifier: None,
                profiler: None,
                flight: None,
            },
            components: Vec::new(),
            started: false,
            max_events: self.max_events,
        }
    }
}

/// The simulation engine: owns all components (of one type `C`, usually
/// a dispatch enum built with [`node_enum!`](crate::node_enum)), the
/// event queue, the network, metrics and trace.
pub struct Engine<C: Component> {
    core: EngineCore<C::Msg>,
    components: Vec<Option<C>>,
    started: bool,
    max_events: u64,
}

impl<C: Component> Engine<C> {
    /// Register a component; its `on_start` runs at time zero when the
    /// simulation starts (or immediately-ish if already running).
    /// Anything convertible into the engine's component type is accepted,
    /// so node-enum wrapping happens here rather than at every call site.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        component: impl Into<C>,
    ) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(component.into()));
        self.core.alive.push(true);
        self.core.incarnation.push(0);
        self.core.names.push(name.into());
        self.core.schedule(self.core.now, EventKind::Start(id));
        id
    }

    /// Create a fresh multicast group.
    pub fn create_group(&mut self) -> GroupId {
        self.core.network.create_group()
    }

    /// Add a component to a multicast group from outside the simulation.
    pub fn join_group(&mut self, group: GroupId, id: ComponentId) {
        self.core.network.join_group(group, id);
    }

    /// Inject a message from outside the simulation, delivered to `dst` at
    /// absolute time `at` (no network latency is applied).
    pub fn post(&mut self, at: SimTime, dst: ComponentId, msg: impl Into<C::Msg>) {
        self.core.schedule(
            at,
            EventKind::Deliver {
                src: ComponentId::EXTERNAL,
                dst,
                msg: msg.into(),
                span: None,
            },
        );
    }

    /// Schedule a crash of `id` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, id: ComponentId) {
        self.core.schedule(at, EventKind::Crash(id));
    }

    /// Schedule a restart of `id` at time `at`.
    pub fn schedule_restart(&mut self, at: SimTime, id: ComponentId) {
        self.core.schedule(at, EventKind::Restart(id));
    }

    /// Schedule a network-health change at time `at` — link degradation
    /// and component isolation as first-class, digest-covered events.
    pub fn schedule_net_fault(&mut self, at: SimTime, fault: NetFault) {
        self.core.schedule(at, EventKind::Net(fault));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.core.events_executed
    }

    /// FNV-1a fingerprint of the executed event stream: every executed
    /// event's `(time, seq, kind, endpoints)` in order. Two runs from the
    /// same seed must report identical digests; `snooze-audit
    /// determinism` and the replay proptests assert exactly that.
    pub fn digest(&self) -> u64 {
        self.core.digest
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: ComponentId) -> bool {
        self.core.alive.get(id.0).copied().unwrap_or(false)
    }

    /// The registered name of `id`.
    pub fn name_of(&self, id: ComponentId) -> &str {
        self.core.names.get(id.0).map(String::as_str).unwrap_or("?")
    }

    /// Metrics collected during the run.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    /// Mutable metrics (e.g. for a driver recording external observations).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Messages that arrived for a crashed or never-registered component
    /// and were dropped — the sum of every `dead_letters{reason}` count.
    pub fn dead_letters(&self) -> u64 {
        self.core.metrics.counter_total("dead_letters")
    }

    /// The bounded event trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// The causal span log accumulated by instrumented components.
    pub fn spans(&self) -> &SpanLog {
        &self.core.spans
    }

    /// FNV-1a digest of the span log's mutation stream — the telemetry
    /// analogue of [`Engine::digest`]; same-seed runs must agree on it.
    pub fn span_digest(&self) -> u64 {
        self.core.spans.digest()
    }

    /// Mutable span log — for drivers recording engine-external spans
    /// (e.g. the scenario layer's SLO alert spans).
    pub fn spans_mut(&mut self) -> &mut SpanLog {
        &mut self.core.spans
    }

    /// Number of events currently pending in the queue. An observer
    /// reading (the queue is untouched); SLO watchdogs use it as the
    /// backlog signal.
    pub fn queue_depth(&self) -> usize {
        self.core.queue.len()
    }

    /// Install the message classifier: a plain `fn` mapping a payload
    /// to its `&'static str` variant name. Powers the profiler's
    /// per-variant attribution, the flight recorder's event labels and
    /// the `dead_letters{msg}` breakdown. Purely observational — the
    /// digest-covered history is identical with or without it.
    pub fn set_msg_classifier(&mut self, classify: fn(&C::Msg) -> &'static str) {
        self.core.classifier = Some(classify);
    }

    /// Turn on the sim-time profiler (idempotent). Costs one advisory
    /// wall-clock read per executed event while on.
    pub fn enable_profiler(&mut self) {
        if self.core.profiler.is_none() {
            self.core.profiler = Some(crate::flight::Profiler::new());
        }
    }

    /// Turn on the flight recorder with a ring of `capacity` events
    /// (idempotent; the first call wins).
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        if self.core.flight.is_none() {
            self.core.flight = Some(crate::flight::FlightRecorder::new(capacity));
        }
    }

    /// The flight recorder, if enabled.
    pub fn flight_recorder(&self) -> Option<&crate::flight::FlightRecorder> {
        self.core.flight.as_ref()
    }

    /// The aggregated profile, hottest bucket first — empty when the
    /// profiler is off. Flushes the in-flight attribution first.
    pub fn profile_rows(&mut self) -> Vec<crate::flight::ProfileRow> {
        match self.core.profiler.as_mut() {
            Some(p) => {
                p.flush();
                p.rows()
            }
            None => Vec::new(),
        }
    }

    /// Folded-stack profile text (`kind;variant events` per line),
    /// flamegraph-compatible and byte-deterministic — empty when the
    /// profiler is off.
    pub fn profile_folded(&mut self) -> String {
        match self.core.profiler.as_mut() {
            Some(p) => {
                p.flush();
                p.folded()
            }
            None => String::new(),
        }
    }

    /// Direct mutable access to the simulated network (partitions etc.).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.core.network
    }

    /// Borrow a registered component for inspection, or `None` for an
    /// unknown id. (Node-enum engines usually chain this with the enum's
    /// generated `as_*` accessor.)
    pub fn get(&self, id: ComponentId) -> Option<&C> {
        self.components.get(id.0).and_then(Option::as_ref)
    }

    /// Borrow a registered component for inspection. Panics if the id is
    /// unknown.
    pub fn component(&self, id: ComponentId) -> &C {
        self.get(id).expect("unknown component id")
    }

    /// Execute a single event. Returns `false` when the queue is empty or
    /// the simulation halted.
    pub fn step(&mut self) -> bool {
        if self.core.halted || self.core.events_executed >= self.max_events {
            return false;
        }
        let Reverse(ev) = match self.core.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(ev.time >= self.core.now);
        self.execute(ev);
        true
    }

    /// Execute one event: advance the clock, fold the digest, dispatch to
    /// the target component. Shared by [`Engine::step`] (which executes
    /// the queue minimum) and the model checker's re-timed apply path.
    fn execute(&mut self, ev: Scheduled<C::Msg>) {
        crate::audit_invariant!(
            "engine",
            "monotonic-clock",
            ev.time >= self.core.now,
            "event at t={:?} executed while clock already at t={:?}",
            ev.time,
            self.core.now
        );
        crate::audit_invariant!(
            "engine",
            "total-event-order",
            self.core
                .last_executed
                .is_none_or(|last| (ev.time, ev.seq) > last),
            "event (t={:?}, seq={}) not after last executed {:?}",
            ev.time,
            ev.seq,
            self.core.last_executed
        );
        self.core.last_executed = Some((ev.time, ev.seq));
        self.core.fold_event(&ev);
        self.core.now = ev.time;
        self.core.events_executed += 1;
        if self.core.profiler.is_some() || self.core.flight.is_some() {
            self.observe_event(&ev);
        }
        match ev.kind {
            EventKind::Start(id) => {
                self.with_component(id, |comp, ctx| comp.on_start(ctx));
            }
            EventKind::Deliver {
                src,
                dst,
                msg,
                span,
            } => {
                if self.core.alive.get(dst.0).copied().unwrap_or(false) {
                    self.core.metrics.incr("net.delivered");
                    self.core.ctx_span = span;
                    self.with_component(dst, |comp, ctx| comp.on_message(ctx, src, msg));
                } else {
                    // Dead letter: delivered to a crashed component, or to
                    // an id nothing was ever registered under. Counted per
                    // reason so silent drops show up in run outcomes.
                    self.core.metrics.incr("net.to_dead");
                    let reason = if dst.0 < self.components.len() {
                        "crashed"
                    } else {
                        "unknown_dst"
                    };
                    let mut labels = label("reason", reason);
                    if let Some(classify) = self.core.classifier {
                        // Break the drop count down by message variant
                        // so "129 dead letters" becomes "mostly missed
                        // GmLcHeartbeat to a crashed LC".
                        labels.insert("msg", classify(&msg));
                    }
                    self.core.metrics.incr_with("dead_letters", &labels);
                }
            }
            EventKind::Timer {
                dst,
                tag,
                incarnation,
                id,
                span,
            } => {
                let stale = self.core.cancelled_timers.remove(&id)
                    || self.core.incarnation[dst.0] != incarnation
                    || !self.core.alive[dst.0];
                if !stale {
                    self.core.ctx_span = span;
                    self.with_component(dst, |comp, ctx| comp.on_timer(ctx, tag));
                }
            }
            EventKind::Crash(id) => {
                if self.core.alive[id.0] {
                    self.core.alive[id.0] = false;
                    // Bump the incarnation so timers set by the dead
                    // incarnation never fire, even across a restart.
                    self.core.incarnation[id.0] += 1;
                    self.core.metrics.incr("failure.crashes");
                    let now = self.core.now;
                    if let Some(comp) = self.components[id.0].as_mut() {
                        comp.on_crash(now);
                    }
                    let name = self.core.names[id.0].clone();
                    self.core.trace.record(now, id, "crash", name);
                }
            }
            EventKind::Restart(id) => {
                if !self.core.alive[id.0] {
                    self.core.alive[id.0] = true;
                    self.core.metrics.incr("failure.restarts");
                    self.with_component(id, |comp, ctx| comp.on_restart(ctx));
                }
            }
            EventKind::Net(fault) => {
                self.core.metrics.incr("failure.net");
                match fault {
                    NetFault::Isolate(id) => self.core.network.isolate(id),
                    NetFault::Reconnect(id) => self.core.network.reconnect(id),
                    NetFault::SetLossPpm(ppm) => self.core.network.set_loss_rate(ppm as f64 / 1e6),
                }
            }
        }
    }

    /// Feed one executed event to the enabled observers (profiler and
    /// flight recorder). Pure observation: reads the event, mutates
    /// only observer state, schedules nothing — the digest-covered
    /// history is identical with observers on or off.
    fn observe_event(&mut self, ev: &Scheduled<C::Msg>) {
        let (kind, comp, a, b): (&'static str, Option<usize>, u64, u64) = match &ev.kind {
            EventKind::Start(id) => ("start", Some(id.0), id.0 as u64, 0),
            EventKind::Deliver { src, dst, .. } => {
                ("deliver", Some(dst.0), src.0 as u64, dst.0 as u64)
            }
            EventKind::Timer { dst, tag, .. } => ("timer", Some(dst.0), dst.0 as u64, *tag),
            EventKind::Crash(id) => ("crash", Some(id.0), id.0 as u64, 0),
            EventKind::Restart(id) => ("restart", Some(id.0), id.0 as u64, 0),
            EventKind::Net(_) => ("net", None, 0, 0),
        };
        let variant = match (&ev.kind, self.core.classifier) {
            (EventKind::Deliver { msg, .. }, Some(classify)) => classify(msg),
            _ => kind,
        };
        if let Some(p) = self.core.profiler.as_mut() {
            let k = p.kind_index(comp, &self.core.names);
            p.begin_event(k, variant);
        }
        if let Some(fr) = self.core.flight.as_mut() {
            fr.record(crate::flight::FlightEvent {
                time_us: ev.time.0,
                seq: ev.seq,
                kind,
                a,
                b,
                variant,
            });
        }
    }

    fn with_component<F: FnOnce(&mut C, &mut Ctx<'_, C::Msg>)>(&mut self, id: ComponentId, f: F) {
        self.started = true;
        let mut comp = match self.components.get_mut(id.0).and_then(Option::take) {
            Some(c) => c,
            None => return, // unknown or re-entrant — drop the event
        };
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                me: id,
            };
            f(&mut comp, &mut ctx);
        }
        // Context hygiene: ambient span context never leaks across events.
        self.core.ctx_span = None;
        self.components[id.0] = Some(comp);
    }

    /// Run until the queue drains, the engine halts, or `max_events` hits.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are executed). Time advances to `deadline` even if the
    /// queue drains early.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let next = match self.core.queue.peek() {
                Some(Reverse(ev)) if ev.time <= deadline => ev.time,
                _ => break,
            };
            let _ = next;
            if !self.step() {
                break;
            }
        }
        if self.core.now < deadline && !self.core.halted {
            self.core.now = deadline;
        }
    }

    /// Run for an additional span of virtual time.
    pub fn run_for(&mut self, span: SimSpan) {
        let deadline = self.core.now + span;
        self.run_until(deadline);
    }
}

// ---------------------------------------------------------------------------
// Model-checking hooks (see `crate::mc` and the `snooze-mc` crate)
// ---------------------------------------------------------------------------

impl<C: Component> Engine<C>
where
    C: Clone,
    C::Msg: Clone,
{
    /// Capture a full copy of the engine state: clock, counters, pending
    /// events, network, RNG, span log and every component. Metrics and
    /// the bounded trace are *not* captured — they are observers, never
    /// causes, and restoring them would only blur exploration statistics.
    pub fn mc_snapshot(&self) -> crate::mc::SystemState<C> {
        crate::mc::SystemState {
            now: self.core.now,
            seq: self.core.seq,
            queue: self.core.queue.iter().map(|Reverse(e)| e.clone()).collect(),
            rng: self.core.rng.clone(),
            network: self.core.network.save_state(),
            spans: self.core.spans.clone(),
            ctx_span: self.core.ctx_span,
            alive: self.core.alive.clone(),
            incarnation: self.core.incarnation.clone(),
            cancelled_timers: self.core.cancelled_timers.clone(),
            next_timer_id: self.core.next_timer_id,
            halted: self.core.halted,
            events_executed: self.core.events_executed,
            digest: self.core.digest,
            last_executed: self.core.last_executed,
            components: self.components.clone(),
        }
    }

    /// Restore a state captured by [`Engine::mc_snapshot`]. The snapshot
    /// must come from *this* engine (same components, same names); the
    /// checker only ever restores its own captures.
    pub fn mc_restore(&mut self, state: &crate::mc::SystemState<C>) {
        assert_eq!(
            state.components.len(),
            self.components.len(),
            "snapshot from a different system shape"
        );
        self.core.now = state.now;
        self.core.seq = state.seq;
        self.core.queue = state.queue.iter().cloned().map(Reverse).collect();
        self.core.rng = state.rng.clone();
        self.core.network.load_state(&state.network);
        self.core.spans = state.spans.clone();
        self.core.ctx_span = state.ctx_span;
        self.core.alive = state.alive.clone();
        self.core.incarnation = state.incarnation.clone();
        self.core.cancelled_timers = state.cancelled_timers.clone();
        self.core.next_timer_id = state.next_timer_id;
        self.core.halted = state.halted;
        self.core.events_executed = state.events_executed;
        self.core.digest = state.digest;
        self.core.last_executed = state.last_executed;
        self.components = state.components.clone();
    }
}

impl<C: Component> Engine<C> {
    fn timer_is_stale(&self, dst: ComponentId, incarnation: u32, id: u64) -> bool {
        self.core.cancelled_timers.contains(&id)
            || self.core.incarnation.get(dst.0).copied() != Some(incarnation)
            || !self.core.alive.get(dst.0).copied().unwrap_or(false)
    }

    /// Every pending event a checker could execute next, sorted by
    /// `(time, seq)`. Stale timers (cancelled, or set by a dead or
    /// superseded incarnation) are omitted — they would be silently
    /// discarded by normal execution too.
    pub fn mc_pending(&self) -> Vec<crate::mc::McPending> {
        let mut out: Vec<crate::mc::McPending> = self
            .core
            .queue
            .iter()
            .filter_map(|Reverse(ev)| {
                let desc = match &ev.kind {
                    EventKind::Start(dst) => crate::mc::McEventDesc::Start { dst: *dst },
                    EventKind::Deliver { src, dst, .. } => crate::mc::McEventDesc::Deliver {
                        src: *src,
                        dst: *dst,
                    },
                    EventKind::Timer {
                        dst,
                        tag,
                        incarnation,
                        id,
                        ..
                    } => {
                        if self.timer_is_stale(*dst, *incarnation, *id) {
                            return None;
                        }
                        crate::mc::McEventDesc::Timer {
                            dst: *dst,
                            tag: *tag,
                        }
                    }
                    EventKind::Crash(dst) => crate::mc::McEventDesc::Crash { dst: *dst },
                    EventKind::Restart(dst) => crate::mc::McEventDesc::Restart { dst: *dst },
                    EventKind::Net(_) => crate::mc::McEventDesc::Net,
                };
                let dst_alive = match desc {
                    crate::mc::McEventDesc::Start { dst }
                    | crate::mc::McEventDesc::Deliver { dst, .. }
                    | crate::mc::McEventDesc::Timer { dst, .. } => self.is_alive(dst),
                    _ => true,
                };
                Some(crate::mc::McPending {
                    seq: ev.seq,
                    time: ev.time,
                    dst_alive,
                    desc,
                })
            })
            .collect();
        out.sort_by_key(|p| (p.time, p.seq));
        out
    }

    fn mc_remove(&mut self, seq: u64) -> Option<Scheduled<C::Msg>> {
        let mut found = None;
        let drained = std::mem::take(&mut self.core.queue);
        self.core.queue = drained
            .into_iter()
            .filter_map(|Reverse(ev)| {
                if ev.seq == seq && found.is_none() {
                    found = Some(ev);
                    None
                } else {
                    Some(Reverse(ev))
                }
            })
            .collect();
        found
    }

    /// Execute pending event `seq` *now*, regardless of queue order: the
    /// event is re-timed to `max(now, its scheduled time)` and re-sequenced
    /// so the executed stream stays strictly `(time, seq)`-ordered — the
    /// audit invariants hold during exploration exactly as during normal
    /// runs. Returns `false` if no such pending event exists.
    pub fn mc_execute_pending(&mut self, seq: u64) -> bool {
        let Some(ev) = self.mc_remove(seq) else {
            return false;
        };
        let time = ev.time.max(self.core.now);
        let new_seq = self.core.seq;
        self.core.seq += 1;
        self.execute(Scheduled {
            time,
            seq: new_seq,
            kind: ev.kind,
        });
        true
    }

    /// Drop pending event `seq` without executing it — the checker's
    /// explicit message-loss action. Returns `false` if no such pending
    /// event exists.
    pub fn mc_drop_pending(&mut self, seq: u64) -> bool {
        if self.mc_remove(seq).is_none() {
            return false;
        }
        self.core.metrics.incr("mc.dropped");
        true
    }

    /// Crash `id` immediately (a checker-chosen crash point). No-op if
    /// already dead.
    pub fn mc_inject_crash(&mut self, id: ComponentId) {
        let seq = self.core.seq;
        self.core.seq += 1;
        self.execute(Scheduled {
            time: self.core.now,
            seq,
            kind: EventKind::Crash(id),
        });
    }

    /// Restart `id` immediately. No-op if alive.
    pub fn mc_inject_restart(&mut self, id: ComponentId) {
        let seq = self.core.seq;
        self.core.seq += 1;
        self.execute(Scheduled {
            time: self.core.now,
            seq,
            kind: EventKind::Restart(id),
        });
    }

    /// Purge stale timers from the queue (and their ids from the
    /// cancelled set). Keeps snapshots small and fingerprints free of
    /// events that can never fire.
    pub fn mc_gc(&mut self) {
        let mut stale: Vec<u64> = Vec::new();
        let drained = std::mem::take(&mut self.core.queue);
        self.core.queue = drained
            .into_iter()
            .filter(|Reverse(ev)| {
                if let EventKind::Timer {
                    dst,
                    incarnation,
                    id,
                    ..
                } = &ev.kind
                {
                    if self.core.cancelled_timers.contains(id)
                        || self.core.incarnation.get(dst.0).copied() != Some(*incarnation)
                        || !self.core.alive.get(dst.0).copied().unwrap_or(false)
                    {
                        stale.push(*id);
                        return false;
                    }
                }
                true
            })
            .collect();
        for id in stale {
            self.core.cancelled_timers.remove(&id);
        }
    }

    /// Hand the queue back to normal scheduled execution after checker
    /// perturbation: any event whose scheduled time fell behind the clock
    /// (a message the checker left "in flight" while executing later
    /// events) is re-timed to *now*, preserving relative `(time, seq)`
    /// order via fresh sequence numbers. Without this, [`Engine::step`]'s
    /// monotonic-clock invariant would trip on the stale entries.
    pub fn mc_release(&mut self) {
        if self
            .core
            .queue
            .iter()
            .all(|Reverse(ev)| ev.time >= self.core.now)
        {
            return;
        }
        let mut events: Vec<Scheduled<C::Msg>> = std::mem::take(&mut self.core.queue)
            .into_iter()
            .map(|Reverse(ev)| ev)
            .collect();
        events.sort_by_key(|ev| (ev.time, ev.seq));
        for mut ev in events {
            if ev.time < self.core.now {
                ev.time = self.core.now;
                ev.seq = self.core.seq;
                self.core.seq += 1;
            }
            self.core.queue.push(Reverse(ev));
        }
    }
}

impl<C> Engine<C>
where
    C: Component + crate::mc::McState,
    C::Msg: crate::mc::McState,
{
    /// Canonical fingerprint of the current state, for visited-state
    /// deduplication: per-component state, liveness, the pending-event
    /// multiset (stale timers excluded, times relative to now), and the
    /// network's mutable state. Excludes observers (metrics, trace,
    /// spans), history (digest, executed count) and identity counters
    /// (seq, timer ids) — none of which influence future behavior.
    pub fn mc_fingerprint(&self) -> u64 {
        let mut h = crate::mc::McHasher::new(self.core.now);
        h.flag(self.core.halted);
        for (idx, comp) in self.components.iter().enumerate() {
            h.word(idx as u64);
            h.flag(self.core.alive[idx]);
            h.word(self.core.incarnation[idx] as u64);
            if let Some(c) = comp {
                c.mc_fold(&mut h);
            }
        }
        let mut pending: Vec<&Scheduled<C::Msg>> = self
            .core
            .queue
            .iter()
            .filter(|Reverse(ev)| {
                if let EventKind::Timer {
                    dst,
                    incarnation,
                    id,
                    ..
                } = &ev.kind
                {
                    !self.timer_is_stale(*dst, *incarnation, *id)
                } else {
                    true
                }
            })
            .map(|Reverse(ev)| ev)
            .collect();
        pending.sort_by_key(|ev| (ev.time, ev.seq));
        for ev in pending {
            h.time(ev.time);
            match &ev.kind {
                EventKind::Start(dst) => {
                    h.word(1);
                    h.id(*dst);
                }
                EventKind::Deliver { src, dst, msg, .. } => {
                    h.word(2);
                    h.id(*src);
                    h.id(*dst);
                    msg.mc_fold(&mut h);
                }
                EventKind::Timer { dst, tag, .. } => {
                    h.word(3);
                    h.id(*dst);
                    h.word(*tag);
                }
                EventKind::Crash(dst) => {
                    h.word(4);
                    h.id(*dst);
                }
                EventKind::Restart(dst) => {
                    h.word(5);
                    h.id(*dst);
                }
                EventKind::Net(fault) => {
                    h.word(6);
                    match fault {
                        NetFault::Isolate(id) => {
                            h.word(0);
                            h.id(*id);
                        }
                        NetFault::Reconnect(id) => {
                            h.word(1);
                            h.id(*id);
                        }
                        NetFault::SetLossPpm(ppm) => {
                            h.word(2);
                            h.word(*ppm as u64);
                        }
                    }
                }
            }
        }
        self.core.network.fold_state(|w| h.word(w));
        h.finish()
    }
}

/// Generate a dispatch enum over several [`Component`] types sharing one
/// message type — the glue that lets a heterogeneous system (managers,
/// controllers, clients, …) live in one typed [`Engine`].
///
/// For each `Variant(Inner) as accessor` entry the macro emits:
/// * the enum variant wrapping `Inner`,
/// * `From<Inner>` (so [`Engine::add_component`] takes the bare inner
///   type),
/// * an `fn accessor(&self) -> Option<&Inner>` borrow for inspection,
/// * and a [`Component`] impl that delegates every callback to the
///   active variant.
///
/// ```
/// use snooze_simcore::prelude::*;
///
/// enum Msg { Ping }
///
/// struct Ping;
/// impl Component for Ping {
///     type Msg = Msg;
///     fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ComponentId, _: Msg) {}
/// }
///
/// node_enum! {
///     /// All node kinds of this little system.
///     enum Node: Msg {
///         Ping(Ping) as as_ping,
///     }
/// }
///
/// let mut sim: Engine<Node> = SimBuilder::new(1).build();
/// let id = sim.add_component("ping", Ping);
/// sim.run();
/// assert!(sim.component(id).as_ping().is_some());
/// ```
#[macro_export]
macro_rules! node_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident : $msg:ty {
            $( $variant:ident($inner:ty) as $as_fn:ident ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $(
                #[doc = concat!("A [`", stringify!($inner), "`] node.")]
                $variant($inner),
            )+
        }

        $(
            impl ::core::convert::From<$inner> for $name {
                fn from(inner: $inner) -> Self {
                    $name::$variant(inner)
                }
            }
        )+

        impl $name {
            $(
                #[doc = concat!(
                    "Borrow the inner [`", stringify!($inner),
                    "`] if this node is that kind."
                )]
                #[allow(unreachable_patterns, dead_code)]
                $vis fn $as_fn(&self) -> ::core::option::Option<&$inner> {
                    match self {
                        $name::$variant(inner) => ::core::option::Option::Some(inner),
                        _ => ::core::option::Option::None,
                    }
                }
            )+
        }

        impl $crate::engine::Component for $name {
            type Msg = $msg;

            fn on_start(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_start(inner, ctx), )+
                }
            }

            fn on_message(
                &mut self,
                ctx: &mut $crate::engine::Ctx<'_, $msg>,
                src: $crate::engine::ComponentId,
                msg: $msg,
            ) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_message(inner, ctx, src, msg), )+
                }
            }

            fn on_timer(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>, tag: u64) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_timer(inner, ctx, tag), )+
                }
            }

            fn on_crash(&mut self, now: $crate::time::SimTime) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_crash(inner, now), )+
                }
            }

            fn on_restart(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_restart(inner, ctx), )+
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The closed message set of the unit-test system.
    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping,
    }

    /// Echoes every message back to its sender `bounces` times.
    struct Echo {
        bounces: u32,
        seen: u32,
    }

    impl Component for Echo {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, src: ComponentId, _msg: TestMsg) {
            self.seen += 1;
            if self.bounces > 0 && src != ComponentId::EXTERNAL {
                self.bounces -= 1;
                ctx.send(src, TestMsg::Ping);
            }
        }
    }

    struct Kickoff {
        peer: ComponentId,
    }

    impl Component for Kickoff {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.send(self.peer, TestMsg::Ping);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, src: ComponentId, _msg: TestMsg) {
            ctx.send(src, TestMsg::Ping);
        }
    }

    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Component for TimerUser {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_secs(1), 1);
            let h = ctx.set_timer(SimSpan::from_secs(2), 2);
            ctx.set_timer(SimSpan::from_secs(3), 3);
            if self.cancel_second {
                ctx.cancel_timer(h);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            self.fired.push(tag);
        }
    }

    struct RestartProbe {
        restarts: u32,
        crashes: u32,
    }

    impl Component for RestartProbe {
        type Msg = TestMsg;
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_crash(&mut self, _now: SimTime) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx<'_, TestMsg>) {
            self.restarts += 1;
        }
    }

    struct Caster {
        group: GroupId,
    }
    impl Component for Caster {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.join_group(self.group);
            ctx.multicast(self.group, || TestMsg::Ping);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
            panic!("sender must not receive its own multicast");
        }
    }

    struct Loopy;
    impl Component for Loopy {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _tag: u64) {
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
    }

    struct SrcProbe {
        from_external: bool,
    }
    impl Component for SrcProbe {
        type Msg = TestMsg;
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, src: ComponentId, _: TestMsg) {
            self.from_external = src == ComponentId::EXTERNAL;
        }
    }

    /// Opens a root span, relays through a middle hop that doesn't
    /// instrument anything, ends at a sink that opens a child — the
    /// context must survive the uninstrumented hop.
    struct SpanSource {
        next: ComponentId,
    }
    impl Component for SpanSource {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let root = ctx.span_open("op.root");
            ctx.span_label(root, "kind", "test");
            ctx.send(self.next, TestMsg::Ping);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
    }
    struct SpanRelay {
        next: ComponentId,
    }
    impl Component for SpanRelay {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, msg: TestMsg) {
            ctx.send(self.next, msg); // no instrumentation here
        }
    }
    struct SpanSink;
    impl Component for SpanSink {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
            let leaf = ctx.span_open("op.leaf");
            ctx.span_close(leaf);
        }
    }

    struct TimerSpans {
        carried: Option<Option<SpanId>>,
        plain: Option<Option<SpanId>>,
    }
    impl Component for TimerSpans {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let op = ctx.span_open("op");
            ctx.set_timer_in(op, SimSpan::from_secs(1), 1);
            ctx.set_timer(SimSpan::from_secs(2), 2);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            if tag == 1 {
                self.carried = Some(ctx.current_span());
            } else {
                self.plain = Some(ctx.current_span());
            }
        }
    }

    struct Nester;
    impl Component for Nester {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let outer = ctx.span_open("outer");
            let inner = ctx.span_open("inner");
            assert_eq!(ctx.current_span(), Some(inner));
            ctx.span_close(inner);
            assert_eq!(ctx.current_span(), Some(outer));
            let marker = ctx.span_instant("marker");
            assert_eq!(ctx.current_span(), Some(outer));
            ctx.span_close(outer);
            assert_eq!(ctx.current_span(), None);
            let _ = marker;
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
    }

    struct Halter;
    impl Component for Halter {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_secs(1), 0);
            ctx.set_timer(SimSpan::from_secs(100), 1);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            if tag == 0 {
                ctx.halt();
            } else {
                panic!("should have halted");
            }
        }
    }

    node_enum! {
        /// Every component kind the engine unit tests register,
        /// exercising the macro-generated dispatcher along the way.
        enum TestNode: TestMsg {
            Echo(Echo) as as_echo,
            Kickoff(Kickoff) as as_kickoff,
            TimerUser(TimerUser) as as_timer_user,
            RestartProbe(RestartProbe) as as_restart_probe,
            Caster(Caster) as as_caster,
            Loopy(Loopy) as as_loopy,
            SrcProbe(SrcProbe) as as_src_probe,
            SpanSource(SpanSource) as as_span_source,
            SpanRelay(SpanRelay) as as_span_relay,
            SpanSink(SpanSink) as as_span_sink,
            TimerSpans(TimerSpans) as as_timer_spans,
            Nester(Nester) as as_nester,
            Halter(Halter) as as_halter,
        }
    }

    fn sim(seed: u64) -> Engine<TestNode> {
        SimBuilder::new(seed).build()
    }

    #[test]
    fn ping_pong_terminates() {
        let mut sim = sim(1);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 5,
                seen: 0,
            },
        );
        let _kick = sim.add_component("kick", Kickoff { peer: echo });
        sim.run();
        let echo_ref = sim.component(echo).as_echo().unwrap();
        assert_eq!(echo_ref.seen, 6); // initial + 5 replies to its bounces
        assert_eq!(echo_ref.bounces, 0);
    }

    #[test]
    fn time_advances_with_network_latency() {
        let mut sim = sim(1);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        sim.post(SimTime::from_secs(3), echo, TestMsg::Ping);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.run();
        assert_eq!(
            sim.component(id).as_timer_user().unwrap().fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: true,
            },
        );
        sim.run();
        assert_eq!(sim.component(id).as_timer_user().unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1) + SimSpan::from_micros(1), id);
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.run();
        // Only the first timer fired before the crash.
        assert_eq!(sim.component(id).as_timer_user().unwrap().fired, vec![1]);
        assert_eq!(sim.metrics().counter("net.to_dead"), 1);
    }

    #[test]
    fn dead_letters_are_counted_by_reason() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        // To a crashed component and to an id nothing is registered under.
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.post(SimTime::from_secs(2), ComponentId(99), TestMsg::Ping);
        sim.run();
        assert_eq!(
            sim.metrics()
                .counter_with("dead_letters", &label("reason", "crashed")),
            1
        );
        assert_eq!(
            sim.metrics()
                .counter_with("dead_letters", &label("reason", "unknown_dst")),
            1
        );
        assert_eq!(sim.dead_letters(), 2);
        assert_eq!(sim.metrics().counter("net.to_dead"), 2);
    }

    #[test]
    fn crash_restart_lifecycle() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "p",
            RestartProbe {
                restarts: 0,
                crashes: 0,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.schedule_restart(SimTime::from_secs(2), id);
        // Crash while already dead and restart while alive are no-ops.
        sim.schedule_crash(SimTime::from_secs(1) + SimSpan::from_millis(1), id);
        sim.schedule_restart(SimTime::from_secs(3), id);
        sim.run();
        let p = sim.component(id).as_restart_probe().unwrap();
        assert_eq!(p.crashes, 1);
        assert_eq!(p.restarts, 1);
        assert!(sim.is_alive(id));
    }

    #[test]
    fn run_until_advances_clock_past_empty_queue() {
        let mut sim = sim(1);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn determinism_same_seed_same_history() {
        fn history(seed: u64) -> (u64, SimTime) {
            let mut sim = sim(seed);
            let echo = sim.add_component(
                "echo",
                Echo {
                    bounces: 50,
                    seen: 0,
                },
            );
            let _k = sim.add_component("kick", Kickoff { peer: echo });
            sim.run();
            (sim.events_executed(), sim.now())
        }
        assert_eq!(history(42), history(42));
    }

    #[test]
    fn multicast_reaches_all_members_except_sender() {
        let mut sim = sim(1);
        let group = sim.create_group();
        let a = sim.add_component(
            "a",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        let b = sim.add_component(
            "b",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        sim.join_group(group, a);
        sim.join_group(group, b);
        let _c = sim.add_component("caster", Caster { group });
        sim.run();
        assert_eq!(sim.component(a).as_echo().unwrap().seen, 1);
        assert_eq!(sim.component(b).as_echo().unwrap().seen, 1);
    }

    #[test]
    fn max_events_guard_stops_runaway() {
        let mut sim: Engine<TestNode> = SimBuilder::new(1).max_events(100).build();
        sim.add_component("loopy", Loopy);
        sim.run();
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn run_for_advances_relative_spans() {
        let mut sim = sim(1);
        sim.run_for(SimSpan::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run_for(SimSpan::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(8));
    }

    #[test]
    fn node_enum_accessor_is_variant_checked() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "echo",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        assert!(sim.component(id).as_echo().is_some());
        assert!(sim.component(id).as_kickoff().is_none());
        assert!(sim.get(ComponentId(99)).is_none());
    }

    #[test]
    fn external_posts_report_external_sender() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "p",
            SrcProbe {
                from_external: false,
            },
        );
        sim.post(SimTime::from_secs(1), id, TestMsg::Ping);
        sim.run();
        assert!(sim.component(id).as_src_probe().unwrap().from_external);
    }

    #[test]
    fn name_of_unknown_component_is_safe() {
        let sim = sim(1);
        assert_eq!(sim.name_of(ComponentId(99)), "?");
        assert!(!sim.is_alive(ComponentId(99)));
    }

    #[test]
    fn span_context_survives_uninstrumented_hops() {
        let mut sim = sim(1);
        let sink = sim.add_component("sink", SpanSink);
        let relay = sim.add_component("relay", SpanRelay { next: sink });
        let _src = sim.add_component("src", SpanSource { next: relay });
        sim.run();
        let spans = sim.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "op.root").unwrap();
        let leaf = spans.iter().find(|s| s.name == "op.leaf").unwrap();
        assert_eq!(leaf.parent, Some(root.id), "context lost across relay");
        assert_eq!(root.label("kind"), Some("test"));
        assert!(leaf.end_us.is_some());
        assert!(root.end_us.is_none(), "source never closed its root");
    }

    #[test]
    fn plain_timers_do_not_inherit_context_but_spanned_ones_carry_it() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerSpans {
                carried: None,
                plain: None,
            },
        );
        sim.run();
        let t = sim.component(id).as_timer_spans().unwrap();
        assert_eq!(t.carried, Some(Some(SpanId(1))));
        assert_eq!(t.plain, Some(None));
    }

    #[test]
    fn span_open_close_behaves_as_stack() {
        let mut sim = sim(1);
        sim.add_component("n", Nester);
        sim.run();
        assert_eq!(sim.spans().len(), 3);
        let marker = sim.spans().iter().find(|s| s.name == "marker").unwrap();
        assert_eq!(
            marker.parent,
            Some(sim.spans().iter().find(|s| s.name == "outer").unwrap().id)
        );
    }

    #[test]
    fn span_digest_is_deterministic_across_runs() {
        fn run() -> u64 {
            let mut sim = sim(7);
            let sink = sim.add_component("sink", SpanSink);
            let relay = sim.add_component("relay", SpanRelay { next: sink });
            let _src = sim.add_component("src", SpanSource { next: relay });
            sim.run();
            sim.span_digest()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn halt_stops_run() {
        let mut sim = sim(1);
        sim.add_component("h", Halter);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    fn classify(_m: &TestMsg) -> &'static str {
        "Ping"
    }

    #[test]
    fn observers_do_not_perturb_the_event_digest() {
        fn run(observed: bool) -> (u64, u64) {
            let mut sim = sim(9);
            if observed {
                sim.set_msg_classifier(classify);
                sim.enable_profiler();
                sim.enable_flight_recorder(16);
            }
            let echo = sim.add_component(
                "echo",
                Echo {
                    bounces: 5,
                    seen: 0,
                },
            );
            sim.add_component("kick", Kickoff { peer: echo });
            sim.run();
            (sim.digest(), sim.events_executed())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiler_attributes_events_to_kind_and_variant() {
        let mut sim = sim(3);
        sim.set_msg_classifier(classify);
        sim.enable_profiler();
        let echo = sim.add_component(
            "echo1",
            Echo {
                bounces: 2,
                seen: 0,
            },
        );
        sim.add_component("echo2", Kickoff { peer: echo });
        sim.run();
        let folded = sim.profile_folded();
        // Both components share the digit-stripped kind "echo"; starts
        // and delivers are separate buckets.
        assert!(folded.contains("echo;Ping "), "folded:\n{folded}");
        assert!(folded.contains("echo;start 2\n"), "folded:\n{folded}");
        let rows = sim.profile_rows();
        let total: u64 = rows.iter().map(|r| r.events).sum();
        assert_eq!(total, sim.events_executed());
        // Deterministic bytes for the deterministic columns.
        assert_eq!(folded, sim.profile_folded());
    }

    #[test]
    fn flight_recorder_keeps_recent_events_with_variants() {
        let mut sim = sim(4);
        sim.set_msg_classifier(classify);
        sim.enable_flight_recorder(4);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 6,
                seen: 0,
            },
        );
        sim.add_component("kick", Kickoff { peer: echo });
        sim.run();
        let fr = sim.flight_recorder().unwrap();
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.recorded(), sim.events_executed());
        let evs = fr.events();
        assert_eq!(evs.len(), 4);
        assert!(evs
            .windows(2)
            .all(|w| (w[0].time_us, w[0].seq) < (w[1].time_us, w[1].seq)));
        assert!(evs
            .iter()
            .all(|e| e.kind == "deliver" && e.variant == "Ping"));
    }

    #[test]
    fn dead_letters_carry_msg_variant_when_classified() {
        let mut sim = sim(5);
        sim.set_msg_classifier(classify);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.run();
        let labels = label("reason", "crashed").with("msg", "Ping");
        assert_eq!(sim.metrics().counter_with("dead_letters", &labels), 1);
        assert_eq!(sim.dead_letters(), 1);
    }

    #[test]
    fn queue_depth_reports_pending_events() {
        let mut sim = sim(6);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        assert_eq!(sim.queue_depth(), 1, "the pending Start event");
        sim.post(SimTime::from_secs(10), id, TestMsg::Ping);
        assert_eq!(sim.queue_depth(), 2);
        sim.run();
        assert_eq!(sim.queue_depth(), 0);
    }
}
