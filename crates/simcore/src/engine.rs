//! The discrete-event engine.
//!
//! User logic lives in [`Component`]s. Each component is addressed by a
//! [`ComponentId`] and reacts to three stimuli: a start signal, messages
//! from other components (routed through the simulated [`crate::network`]),
//! and timers it set on itself. All interaction with the simulation happens
//! through the [`Ctx`] handle passed into every callback — components never
//! hold references to one another, which is what makes crash injection and
//! deterministic replay trivial.
//!
//! The engine is *generic over its message type*: a [`Component`] declares
//! the closed message set it speaks as [`Component::Msg`] (typically an
//! enum), the engine is [`Engine<C>`] over one component type `C`, and a
//! heterogeneous system wraps its node kinds in a dispatch enum — see
//! [`node_enum!`](crate::node_enum). Messages travel by value, handlers
//! match exhaustively, and the compiler checks every arm: no `Box`, no
//! `Any`, no runtime casts on the deliver path.
//!
//! Events are executed in `(time, sequence)` order; the sequence number
//! breaks ties in scheduling order, so the engine is fully deterministic.
//!
//! # Sharded execution
//!
//! The engine can be *sharded*: [`SimBuilder::shards`] partitions the
//! components into `S` groups, each with its own event queue, RNG stream,
//! timer-id space and FIFO clamps. Execution then proceeds in conservative
//! lookahead windows (see [`crate::exec`]): every shard independently
//! executes its events up to a horizon derived from the minimum cross-shard
//! network latency, and the window's effects (digest records, cross-shard
//! messages, liveness changes) are committed in deterministic shard-major
//! order. Shards may run on worker threads ([`SimBuilder::workers`]); the
//! audited digest of an `N`-worker run is byte-identical to the same
//! engine run with one worker, because the window structure and the commit
//! order never depend on the worker count. `shards(1)` (the default) is
//! byte-identical to the historical single-queue engine.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use snooze_telemetry::label::label;
use snooze_telemetry::span::{SpanId, SpanLog};

use crate::equeue::{EventQueue, QueueKind};
use crate::mc::McState as _;
use crate::metrics::MetricsRegistry;
use crate::network::{FifoClamps, Network, NetworkConfig};
use crate::rng::SimRng;
use crate::time::{SimSpan, SimTime};
use crate::trace::Trace;

/// Identifies a registered component. Ids are dense indices assigned in
/// registration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub usize);

impl ComponentId {
    /// Pseudo-sender for messages injected from outside the simulation
    /// (e.g. a test driver posting a client request).
    pub const EXTERNAL: ComponentId = ComponentId(usize::MAX);
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ComponentId::EXTERNAL {
            write!(f, "ext")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

impl From<ComponentId> for u64 {
    fn from(id: ComponentId) -> u64 {
        id.0 as u64
    }
}

/// Identifies a multicast group on the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub usize);

/// Handle for cancelling a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerHandle(u64);

/// A simulated process speaking a closed, typed message set.
///
/// [`Component::Msg`] is the message type this component sends and
/// receives — usually a workspace enum (one variant per wire message),
/// so `on_message` is an exhaustive `match` the compiler checks.
///
/// Components are `Send` (and their messages too) so a sharded engine can
/// execute disjoint shards on worker threads. A component is only ever
/// touched by one thread at a time — the bound is about moving shards to
/// workers, not about shared access.
pub trait Component: Send {
    /// The message type this component exchanges over the simulated
    /// network. Every component registered in one [`Engine`] shares it.
    type Msg: Send;

    /// Called once when the simulation starts (or never, if the component
    /// is registered after `run` began — use messages to bootstrap those).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A message arrived from `src` over the simulated network.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, src: ComponentId, msg: Self::Msg);

    /// A timer set via [`Ctx::set_timer`] fired. `tag` is the caller-chosen
    /// discriminator.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _tag: u64) {}

    /// The failure injector crashed this component. State is *not* cleared
    /// automatically — a crashed process keeps its memory so tests can
    /// inspect it — but no events will be delivered until restart.
    fn on_crash(&mut self, _now: SimTime) {}

    /// The failure injector restarted this component. Implementations
    /// should reset volatile state here, as a freshly exec'd process would.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Which shard this component prefers to live in, used by
    /// [`Engine::add_component`] on sharded engines (`None` → shard 0;
    /// values wrap modulo the shard count). Systems that know their
    /// topology — e.g. a GM subtree and the LCs under it — override this
    /// so chatty neighbors share a queue and cross-shard traffic stays on
    /// the (lookahead-bounded) slow path.
    fn shard_hint(&self) -> Option<usize> {
        None
    }
}

/// A scheduled change to the simulated network's health — the
/// event-scheduled form of fault injection that used to require driver
/// code stepping the engine and mutating [`Engine::network_mut`] by
/// hand. Installed via [`Engine::schedule_net_fault`] (or declaratively
/// through [`crate::failure::FailurePlan`]), it fires in event order
/// like any other event, so fault schedules are part of the audited,
/// digest-covered history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetFault {
    /// Cut a component off from the network entirely.
    Isolate(ComponentId),
    /// Reconnect a previously isolated component.
    Reconnect(ComponentId),
    /// Degrade every link: set the message-loss probability, in parts
    /// per million (integer, so fault schedules stay `Eq`/hashable).
    SetLossPpm(u32),
}

#[derive(Clone)]
pub(crate) enum EventKind<M> {
    Start(ComponentId),
    Deliver {
        src: ComponentId,
        dst: ComponentId,
        msg: M,
        /// Causal span context riding along with the message — the
        /// simulated analogue of trace-context propagation headers.
        span: Option<SpanId>,
    },
    Timer {
        dst: ComponentId,
        tag: u64,
        incarnation: u32,
        id: u64,
        /// Span context carried across the timer (explicitly opted into
        /// via [`Ctx::set_timer_in`]; plain timers never inherit one, so
        /// periodic ticks don't capture unrelated submission contexts).
        span: Option<SpanId>,
    },
    Crash(ComponentId),
    Restart(ComponentId),
    Net(NetFault),
}

#[derive(Clone)]
pub(crate) struct Scheduled<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Digest words of an event kind: `(discriminant, a, b)`. Span contexts
/// are observers, not causes: they are folded into the SpanLog's own
/// digest, never into the event digest, so instrumentation cannot perturb
/// the audited history. Payloads are likewise never folded — the digest is
/// message-type-agnostic, which is what let the typed message layer
/// replace the old type-erased one digest-identically.
pub(crate) fn event_words<M>(kind: &EventKind<M>) -> (u64, u64, u64) {
    match kind {
        EventKind::Start(id) => (1, id.0 as u64, 0),
        EventKind::Deliver { src, dst, .. } => (2, src.0 as u64, dst.0 as u64),
        EventKind::Timer { dst, tag, .. } => (3, dst.0 as u64, *tag),
        EventKind::Crash(id) => (4, id.0 as u64, 0),
        EventKind::Restart(id) => (5, id.0 as u64, 0),
        EventKind::Net(NetFault::Isolate(id)) => (6, id.0 as u64, 0),
        EventKind::Net(NetFault::Reconnect(id)) => (6, id.0 as u64, 1),
        EventKind::Net(NetFault::SetLossPpm(ppm)) => (6, *ppm as u64, 2),
    }
}

/// One executed event's digest record, buffered by a shard during a
/// lookahead window and folded into the engine digest at commit, in
/// shard-major order.
#[derive(Clone, Copy)]
pub(crate) struct ExecRec {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) disc: u64,
    pub(crate) a: u64,
    pub(crate) b: u64,
}

/// Hot-path counters a shard accumulates instead of hitting the labeled
/// metrics registry per event; flushed into the named counters when the
/// engine returns control to the caller.
#[derive(Default, Clone, Copy)]
pub(crate) struct FastCounters {
    pub(crate) sent: u64,
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    pub(crate) to_dead: u64,
    pub(crate) crashes: u64,
    pub(crate) restarts: u64,
}

/// A span-log mutation recorded by a shard during a window and replayed
/// against the shared [`SpanLog`] in shard order at flush time.
pub(crate) enum SpanOp {
    Open {
        id: SpanId,
        name: &'static str,
        track: u64,
        parent: Option<SpanId>,
        at: u64,
    },
    Close {
        id: SpanId,
        at: u64,
    },
    Label {
        id: SpanId,
        key: &'static str,
        value: String,
    },
}

/// Per-shard buffers for everything a worker thread produces during a
/// window but must not write into shared engine state until commit.
pub(crate) struct ShardScratch<M> {
    /// Cross-shard sends: `(destination shard, arrival time, event)`.
    pub(crate) outbox: Vec<(u32, SimTime, EventKind<M>)>,
    /// Executed-event digest records, in execution order.
    pub(crate) recs: Vec<ExecRec>,
    /// Events executed this window.
    pub(crate) events: u64,
    /// Delta metrics (labeled counters etc.) absorbed at flush.
    pub(crate) metrics: MetricsRegistry,
    /// Unlabeled hot-path counters.
    pub(crate) fast: FastCounters,
    /// Liveness overlay: `component id -> (alive, incarnation)` for
    /// own-shard crashes/restarts executed this window.
    pub(crate) live: BTreeMap<usize, (bool, u32)>,
    /// Multicast membership deltas: `(group, component, joined)`.
    pub(crate) groups: Vec<(GroupId, ComponentId, bool)>,
    /// Span-log mutations, replayed in shard order at flush.
    pub(crate) spans: Vec<SpanOp>,
    /// Parent links for shard-allocated span ids (persistent — span
    /// stacks must survive across windows and flushes).
    pub(crate) span_parents: BTreeMap<u64, Option<SpanId>>,
    /// Count of spans this shard has opened (persistent; span ids are
    /// `((shard+1) << 40) | counter`, so shards never collide with each
    /// other or with densely allocated sequential-mode ids).
    pub(crate) next_span: u64,
    /// Ambient span context of the event being executed.
    pub(crate) ctx_span: Option<SpanId>,
    /// Buffered trace records, replayed in shard order at flush.
    pub(crate) trace: Vec<(SimTime, ComponentId, &'static str, String)>,
    /// A component called [`Ctx::halt`] this window.
    pub(crate) halt: bool,
    /// `(time, seq)` of the last event this shard executed — the audit's
    /// witness that each shard's stream is strictly ordered.
    pub(crate) last_executed: Option<(SimTime, u64)>,
    /// Per-shard profiler (sharded engines only); merged on read.
    pub(crate) profiler: Option<crate::flight::Profiler>,
    /// Buffered flight-recorder events, merged by time at commit.
    pub(crate) flight: Vec<crate::flight::FlightEvent>,
}

impl<M> ShardScratch<M> {
    fn new() -> Self {
        ShardScratch {
            outbox: Vec::new(),
            recs: Vec::new(),
            events: 0,
            metrics: MetricsRegistry::new(),
            fast: FastCounters::default(),
            live: BTreeMap::new(),
            groups: Vec::new(),
            spans: Vec::new(),
            span_parents: BTreeMap::new(),
            next_span: 0,
            ctx_span: None,
            trace: Vec::new(),
            halt: false,
            last_executed: None,
            profiler: None,
            flight: Vec::new(),
        }
    }
}

/// One shard: an event queue plus every piece of mutable engine state
/// that can be owned per-partition without changing observable behavior
/// at `shards(1)` — the RNG stream, timer-id space, cancelled-timer set
/// and per-link FIFO clamps (clamp keys are `(src, dst)` and `src`
/// determines the shard, so per-shard maps are disjoint by construction).
pub(crate) struct ShardState<M> {
    pub(crate) queue: EventQueue<M>,
    pub(crate) seq: u64,
    pub(crate) rng: SimRng,
    pub(crate) next_timer_id: u64,
    pub(crate) cancelled_timers: BTreeSet<u64>,
    pub(crate) fifo: FifoClamps,
    pub(crate) scratch: ShardScratch<M>,
}

impl<M> ShardState<M> {
    fn new(kind: QueueKind, rng: SimRng) -> Self {
        ShardState {
            queue: EventQueue::new(kind),
            seq: 0,
            rng,
            next_timer_id: 0,
            cancelled_timers: BTreeSet::new(),
            fifo: FifoClamps::new(),
            scratch: ShardScratch::new(),
        }
    }
}

/// Read-only view of the shared engine state a shard may consult while
/// executing a window: the network (health, groups, latency model), the
/// pre-window liveness vectors, and the component→shard mapping. All
/// shards see the same frozen view regardless of worker count — that is
/// the heart of the "digest independent of `workers`" guarantee.
pub(crate) struct SharedView<'a, M> {
    pub(crate) network: &'a Network,
    pub(crate) names: &'a [String],
    pub(crate) alive: &'a [bool],
    pub(crate) incarnation: &'a [u32],
    pub(crate) shard_of: &'a [u32],
    pub(crate) local_of: &'a [u32],
    pub(crate) n_components: usize,
    pub(crate) classifier: Option<fn(&M) -> &'static str>,
    pub(crate) flight_on: bool,
}

impl<M> Clone for SharedView<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for SharedView<'_, M> {}

/// The mutable half of a worker-side context: the shard being executed
/// plus the frozen shared view.
pub(crate) struct ShardCtx<'a, M> {
    pub(crate) shard: usize,
    pub(crate) now: SimTime,
    pub(crate) state: &'a mut ShardState<M>,
    pub(crate) shared: SharedView<'a, M>,
}

/// Everything the engine owns apart from the components themselves.
/// Split out so a component can be borrowed mutably while its [`Ctx`]
/// mutates the rest of the engine.
pub(crate) struct EngineCore<M> {
    pub(crate) now: SimTime,
    /// The event-queue partitions. Always at least one; `shards.len() == 1`
    /// is the historical single-queue engine, byte-for-byte.
    pub(crate) shards: Vec<ShardState<M>>,
    /// Component id → shard index.
    pub(crate) shard_of: Vec<u32>,
    /// Component id → index within its shard's component vector.
    pub(crate) local_of: Vec<u32>,
    /// Scheduled network faults, kept outside the shard queues on sharded
    /// engines (they mutate global network state, so they act as window
    /// barriers). Sorted by `(time, seq)`; seqs come from shard 0's
    /// counter. Always empty at `shards(1)`.
    pub(crate) net_events: Vec<(SimTime, u64, NetFault)>,
    /// Conservative lookahead: the minimum cross-component network
    /// latency, fixed at build time. A shard may run `lookahead` ahead of
    /// the global minimum because no cross-shard message can arrive
    /// sooner than that.
    pub(crate) lookahead: SimSpan,
    /// Worker threads to execute windows on (1 = inline). Purely a
    /// throughput knob: never observable in the digest.
    pub(crate) workers: usize,
    pub(crate) network: Network,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) trace: Trace,
    pub(crate) spans: SpanLog,
    /// Ambient span context for the event being executed: seeded from
    /// the incoming message/timer context, updated by [`Ctx::span_open`]
    /// so later sends in the same handler propagate the innermost span.
    pub(crate) ctx_span: Option<SpanId>,
    pub(crate) alive: Vec<bool>,
    pub(crate) incarnation: Vec<u32>,
    pub(crate) names: Vec<String>,
    pub(crate) halted: bool,
    pub(crate) events_executed: u64,
    /// Running FNV-1a fingerprint of the executed event stream.
    pub(crate) digest: u64,
    /// `(time, seq)` of the last executed event — the audit's witness
    /// that the executed stream is strictly ordered (single-shard only;
    /// sharded engines witness per-shard order in their scratch).
    pub(crate) last_executed: Option<(SimTime, u64)>,
    /// Names payloads of `M` for the profiler, the flight recorder and
    /// the `dead_letters{msg}` breakdown. An observer: never folded
    /// into the digest, excluded from mc snapshots and fingerprints.
    pub(crate) classifier: Option<fn(&M) -> &'static str>,
    /// Per-(component kind, message variant) event attribution; `None`
    /// until enabled. Observer.
    pub(crate) profiler: Option<crate::flight::Profiler>,
    /// Bounded ring of recent executed events; `None` until enabled.
    /// Observer.
    pub(crate) flight: Option<crate::flight::FlightRecorder>,
}

impl<M> EngineCore<M> {
    /// Fold one executed event record into the run digest. The digest
    /// covers the full executed stream — `(time, seq, kind, endpoints)`
    /// per event — so two runs agree on it iff they executed the same
    /// history.
    pub(crate) fn fold_exec(&mut self, time: SimTime, seq: u64, disc: u64, a: u64, b: u64) {
        let mut h = self.digest;
        for word in [time.0, seq, disc, a, b] {
            h = crate::trace::fnv1a(h, &word.to_le_bytes());
        }
        self.digest = h;
    }

    fn fold_event(&mut self, ev: &Scheduled<M>) {
        let (disc, a, b) = event_words(&ev.kind);
        self.fold_exec(ev.time, ev.seq, disc, a, b);
    }

    /// Shard housing component `id` (0 for unknown ids, including
    /// [`ComponentId::EXTERNAL`]).
    pub(crate) fn shard_idx(&self, id: ComponentId) -> usize {
        self.shard_of.get(id.0).map(|&s| s as usize).unwrap_or(0)
    }

    /// Which shard's queue an event belongs in: the shard of the
    /// component it targets. Network faults are global and live in
    /// `net_events` on sharded engines (`schedule` special-cases them).
    fn shard_for_kind(&self, kind: &EventKind<M>) -> usize {
        match kind {
            EventKind::Start(id) | EventKind::Crash(id) | EventKind::Restart(id) => {
                self.shard_idx(*id)
            }
            EventKind::Deliver { dst, .. } => self.shard_idx(*dst),
            EventKind::Timer { dst, .. } => self.shard_idx(*dst),
            EventKind::Net(_) => 0,
        }
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let time = at.max(self.now);
        if self.shards.len() > 1 {
            if let EventKind::Net(fault) = &kind {
                // Global-state events act as window barriers; they draw
                // seqs from shard 0 so their identity stays unambiguous.
                let fault = *fault;
                let sh = &mut self.shards[0];
                let seq = sh.seq;
                sh.seq += 1;
                let pos = self
                    .net_events
                    .partition_point(|&(t, s, _)| (t, s) <= (time, seq));
                self.net_events.insert(pos, (time, seq, fault));
                return;
            }
        }
        let s = if self.shards.len() == 1 {
            0
        } else {
            self.shard_for_kind(&kind)
        };
        let sh = &mut self.shards[s];
        let seq = sh.seq;
        sh.seq += 1;
        sh.queue.push(Scheduled { time, seq, kind });
    }

    fn send_via_network(
        &mut self,
        src: ComponentId,
        dst: ComponentId,
        extra: SimSpan,
        msg: M,
        span: Option<SpanId>,
    ) {
        let departs = self.now + extra;
        let s = self.shard_idx(src);
        let arrival = {
            let EngineCore {
                shards, network, ..
            } = self;
            let sh = &mut shards[s];
            network.transit(src, dst, departs, &mut sh.rng, &mut sh.fifo)
        };
        match arrival {
            Some(arrival) => {
                self.schedule(
                    arrival,
                    EventKind::Deliver {
                        src,
                        dst,
                        msg,
                        span,
                    },
                );
            }
            None => {
                self.metrics.incr("net.dropped");
            }
        }
    }

    /// Drain every shard's observer buffers into the shared registries,
    /// in shard order. Called when a sharded engine returns control to
    /// the caller (end of `step`/`run`/`run_until`); a no-op at
    /// `shards(1)`, where components write the shared state directly.
    pub(crate) fn flush_shard_observers(&mut self) {
        if self.shards.len() <= 1 {
            return;
        }
        for s in 0..self.shards.len() {
            let fast = std::mem::take(&mut self.shards[s].scratch.fast);
            for (key, n) in [
                ("net.sent", fast.sent),
                ("net.delivered", fast.delivered),
                ("net.dropped", fast.dropped),
                ("net.to_dead", fast.to_dead),
                ("failure.crashes", fast.crashes),
                ("failure.restarts", fast.restarts),
            ] {
                if n > 0 {
                    self.metrics.add(key, n);
                }
            }
            let delta =
                std::mem::replace(&mut self.shards[s].scratch.metrics, MetricsRegistry::new());
            self.metrics.absorb(delta);
            let ops = std::mem::take(&mut self.shards[s].scratch.spans);
            for op in ops {
                match op {
                    SpanOp::Open {
                        id,
                        name,
                        track,
                        parent,
                        at,
                    } => self.spans.open_with_id(id, name, track, parent, at),
                    SpanOp::Close { id, at } => self.spans.close(id, at),
                    SpanOp::Label { id, key, value } => self.spans.label(id, key, value),
                }
            }
            let recs = std::mem::take(&mut self.shards[s].scratch.trace);
            for (t, id, category, text) in recs {
                self.trace.record(t, id, category, text);
            }
        }
    }
}

/// The context handle passed to every component callback, parameterized
/// by the engine's message type `M`. One type serves both execution
/// modes: sequential (single-shard engines and the model checker's
/// re-timed apply path) borrows the whole engine core; windowed (sharded
/// engines) borrows one shard plus a frozen view of the shared state.
pub struct Ctx<'a, M> {
    inner: CtxInner<'a, M>,
    me: ComponentId,
}

enum CtxInner<'a, M> {
    Seq(&'a mut EngineCore<M>),
    Shard(ShardCtx<'a, M>),
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn for_shard(sc: ShardCtx<'a, M>, me: ComponentId) -> Ctx<'a, M> {
        Ctx {
            inner: CtxInner::Shard(sc),
            me,
        }
    }
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::Seq(core) => core.now,
            CtxInner::Shard(sc) => sc.now,
        }
    }

    /// Id of the component being invoked.
    pub fn id(&self) -> ComponentId {
        self.me
    }

    /// This component's shard's RNG stream. Components needing an
    /// independent stream should fork one at construction time instead.
    pub fn rng(&mut self) -> &mut SimRng {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                let s = core.shard_idx(me);
                &mut core.shards[s].rng
            }
            CtxInner::Shard(sc) => &mut sc.state.rng,
        }
    }

    /// Send `msg` to `dst` over the simulated network (subject to latency,
    /// loss and partitions). Anything convertible into the engine's
    /// message type is accepted, so call sites pass concrete wire structs
    /// and the `From` impls on the message enum do the wrapping. The
    /// current span context (the incoming one, or the innermost span
    /// opened via [`Ctx::span_open`]) rides along, so causal chains
    /// survive uninstrumented hops.
    pub fn send(&mut self, dst: ComponentId, msg: impl Into<M>) {
        let span = self.current_span();
        self.send_with(dst, SimSpan::ZERO, msg.into(), span);
    }

    /// Send after an additional local processing delay (still subject to
    /// network latency on top).
    pub fn send_after(&mut self, delay: SimSpan, dst: ComponentId, msg: impl Into<M>) {
        let span = self.current_span();
        self.send_with(dst, delay, msg.into(), span);
    }

    /// Send `msg` carrying an explicit span context instead of the
    /// ambient one — for operations whose span outlives a single handler
    /// (a GM retrying a placement it recorded earlier, say).
    pub fn send_in(&mut self, span: SpanId, dst: ComponentId, msg: impl Into<M>) {
        self.send_with(dst, SimSpan::ZERO, msg.into(), Some(span));
    }

    fn send_with(&mut self, dst: ComponentId, delay: SimSpan, msg: M, span: Option<SpanId>) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                core.metrics.incr("net.sent");
                core.send_via_network(me, dst, delay, msg, span);
            }
            CtxInner::Shard(sc) => {
                let st = &mut *sc.state;
                st.scratch.fast.sent += 1;
                let departs = sc.now + delay;
                match sc
                    .shared
                    .network
                    .transit(me, dst, departs, &mut st.rng, &mut st.fifo)
                {
                    Some(arrival) => {
                        let dshard = sc
                            .shared
                            .shard_of
                            .get(dst.0)
                            .map(|&s| s as usize)
                            .unwrap_or(0);
                        let kind = EventKind::Deliver {
                            src: me,
                            dst,
                            msg,
                            span,
                        };
                        if dshard == sc.shard {
                            // Own-shard traffic stays on the fast path and
                            // may execute later in the same window.
                            let seq = st.seq;
                            st.seq += 1;
                            st.queue.push(Scheduled {
                                time: arrival,
                                seq,
                                kind,
                            });
                        } else {
                            // Cross-shard: buffered, committed with a
                            // destination-shard seq after the window. The
                            // lookahead horizon guarantees `arrival` is at
                            // or beyond every shard's horizon.
                            st.scratch.outbox.push((dshard as u32, arrival, kind));
                        }
                    }
                    None => {
                        st.scratch.fast.dropped += 1;
                    }
                }
            }
        }
    }

    /// Multicast to every current member of `group` except the sender.
    /// `make` is invoked once per receiver, so payloads need not be
    /// `Clone`.
    pub fn multicast<T: Into<M>, F: Fn() -> T>(&mut self, group: GroupId, make: F) {
        let me = self.me;
        let members: Vec<ComponentId> = match &self.inner {
            CtxInner::Seq(core) => core.network.group_members(group).to_vec(),
            CtxInner::Shard(sc) => {
                // Pre-window membership plus this shard's own deltas —
                // a component sees its own joins/leaves immediately,
                // other shards' only from the next window on.
                let mut m = sc.shared.network.group_members(group).to_vec();
                for (g, id, joined) in &sc.state.scratch.groups {
                    if *g == group {
                        if *joined {
                            if !m.contains(id) {
                                m.push(*id);
                            }
                        } else {
                            m.retain(|x| x != id);
                        }
                    }
                }
                m
            }
        };
        for dst in members {
            if dst != me {
                self.send(dst, make());
            }
        }
    }

    /// Join a multicast group.
    pub fn join_group(&mut self, group: GroupId) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => core.network.join_group(group, me),
            CtxInner::Shard(sc) => sc.state.scratch.groups.push((group, me, true)),
        }
    }

    /// Leave a multicast group.
    pub fn leave_group(&mut self, group: GroupId) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => core.network.leave_group(group, me),
            CtxInner::Shard(sc) => sc.state.scratch.groups.push((group, me, false)),
        }
    }

    /// Arrange for [`Component::on_timer`] to be called on this component
    /// after `delay`, carrying `tag`. Timers die with the incarnation that
    /// set them: if the component crashes, pending timers never fire.
    pub fn set_timer(&mut self, delay: SimSpan, tag: u64) -> TimerHandle {
        self.set_timer_impl(delay, tag, None)
    }

    /// Like [`Ctx::set_timer`], but the timer carries span context `span`:
    /// when it fires, the handler's ambient context is `span`, so a VM
    /// boot delay or migration transfer keeps its causal chain intact.
    pub fn set_timer_in(&mut self, span: SpanId, delay: SimSpan, tag: u64) -> TimerHandle {
        self.set_timer_impl(delay, tag, Some(span))
    }

    fn set_timer_impl(&mut self, delay: SimSpan, tag: u64, span: Option<SpanId>) -> TimerHandle {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                let s = core.shard_idx(me);
                let id = {
                    let sh = &mut core.shards[s];
                    let id = sh.next_timer_id;
                    sh.next_timer_id += 1;
                    id
                };
                let at = core.now + delay;
                let incarnation = core.incarnation[me.0];
                core.schedule(
                    at,
                    EventKind::Timer {
                        dst: me,
                        tag,
                        incarnation,
                        id,
                        span,
                    },
                );
                TimerHandle(id)
            }
            CtxInner::Shard(sc) => {
                // Timers never cross shards (dst == me), so they go
                // straight into this shard's queue and may fire within
                // the current window.
                let st = &mut *sc.state;
                let id = st.next_timer_id;
                st.next_timer_id += 1;
                let at = sc.now + delay;
                let incarnation = match st.scratch.live.get(&me.0) {
                    Some(&(_, inc)) => inc,
                    None => sc.shared.incarnation.get(me.0).copied().unwrap_or(0),
                };
                let seq = st.seq;
                st.seq += 1;
                st.queue.push(Scheduled {
                    time: at,
                    seq,
                    kind: EventKind::Timer {
                        dst: me,
                        tag,
                        incarnation,
                        id,
                        span,
                    },
                });
                TimerHandle(id)
            }
        }
    }

    /// Cancel a timer previously set with [`Ctx::set_timer`]. Cancelling an
    /// already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                let s = core.shard_idx(me);
                core.shards[s].cancelled_timers.insert(handle.0);
            }
            CtxInner::Shard(sc) => {
                sc.state.cancelled_timers.insert(handle.0);
            }
        }
    }

    /// Whether `other` is currently alive (not crashed). Real processes
    /// cannot ask this of remote peers — only failure detectors built on
    /// heartbeats should use it for *remote* components; it is exposed
    /// mainly so a component can cheaply model local knowledge (e.g. a
    /// hypervisor knows its own host is up). On sharded engines,
    /// cross-shard liveness is the pre-window state — consistent with the
    /// message-visibility horizon.
    pub fn is_alive(&self, other: ComponentId) -> bool {
        match &self.inner {
            CtxInner::Seq(core) => core.alive.get(other.0).copied().unwrap_or(false),
            CtxInner::Shard(sc) => match sc.state.scratch.live.get(&other.0) {
                Some(&(alive, _)) => alive,
                None => sc.shared.alive.get(other.0).copied().unwrap_or(false),
            },
        }
    }

    /// Record a metric counter increment.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        match &mut self.inner {
            CtxInner::Seq(core) => &mut core.metrics,
            CtxInner::Shard(sc) => &mut sc.state.scratch.metrics,
        }
    }

    /// Append a line to the bounded event trace.
    pub fn trace(&mut self, category: &'static str, text: impl Into<String>) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                let now = core.now;
                core.trace.record(now, me, category, text.into());
            }
            CtxInner::Shard(sc) => {
                sc.state
                    .scratch
                    .trace
                    .push((sc.now, me, category, text.into()));
            }
        }
    }

    /// Stop the simulation after the current event completes. On sharded
    /// engines the stop takes effect at the end of the current window.
    pub fn halt(&mut self) {
        match &mut self.inner {
            CtxInner::Seq(core) => core.halted = true,
            CtxInner::Shard(sc) => sc.state.scratch.halt = true,
        }
    }

    // --- causal spans ----------------------------------------------------

    /// The span context this handler is executing under: the context the
    /// triggering message/timer carried, or the innermost span opened by
    /// [`Ctx::span_open`] since.
    pub fn current_span(&self) -> Option<SpanId> {
        match &self.inner {
            CtxInner::Seq(core) => core.ctx_span,
            CtxInner::Shard(sc) => sc.state.scratch.ctx_span,
        }
    }

    /// Open a span named `name` as a child of the current context (or as
    /// a root if there is none). The new span becomes the ambient context
    /// for the rest of this handler, so subsequent [`Ctx::send`]s carry it.
    pub fn span_open(&mut self, name: &'static str) -> SpanId {
        let parent = self.current_span();
        self.span_open_under(name, parent)
    }

    /// Open a span with an explicit parent (`None` for a root), e.g. when
    /// resuming an operation whose context was stashed in component state.
    /// Like [`Ctx::span_open`], the new span becomes the ambient context.
    pub fn span_open_under(&mut self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Seq(core) => {
                let id = core.spans.open(name, me.0 as u64, parent, core.now.0);
                core.ctx_span = Some(id);
                id
            }
            CtxInner::Shard(sc) => {
                // Shard-namespaced id: `((shard+1) << 40) | counter`.
                // Never collides across shards or with the dense ids the
                // sequential path allocates (those stay below 2^40).
                let st = &mut *sc.state;
                st.scratch.next_span += 1;
                let id = SpanId((((sc.shard as u64) + 1) << 40) | st.scratch.next_span);
                st.scratch.spans.push(SpanOp::Open {
                    id,
                    name,
                    track: me.0 as u64,
                    parent,
                    at: sc.now.0,
                });
                st.scratch.span_parents.insert(id.0, parent);
                st.scratch.ctx_span = Some(id);
                id
            }
        }
    }

    /// Close span `id` at the current virtual time. If it is the ambient
    /// context, the context pops back to its parent (spans behave as a
    /// stack within a handler). Double-close is a no-op.
    pub fn span_close(&mut self, id: SpanId) {
        match &mut self.inner {
            CtxInner::Seq(core) => {
                if core.ctx_span == Some(id) {
                    core.ctx_span = core.spans.parent_of(id);
                }
                core.spans.close(id, core.now.0);
            }
            CtxInner::Shard(sc) => {
                let st = &mut *sc.state;
                if st.scratch.ctx_span == Some(id) {
                    // Parent links are tracked for shard-opened spans;
                    // closing a carried-in foreign span pops to None.
                    st.scratch.ctx_span = st.scratch.span_parents.get(&id.0).copied().flatten();
                }
                st.scratch.spans.push(SpanOp::Close { id, at: sc.now.0 });
            }
        }
    }

    /// Open and immediately close a zero-duration marker span (e.g.
    /// "became GL", "declared GM dead"). Ambient context is unchanged.
    pub fn span_instant(&mut self, name: &'static str) -> SpanId {
        let id = self.span_open(name);
        self.span_close(id);
        id
    }

    /// Annotate span `id` with a key/value label.
    pub fn span_label(&mut self, id: SpanId, key: &'static str, value: impl Into<String>) {
        match &mut self.inner {
            CtxInner::Seq(core) => core.spans.label(id, key, value),
            CtxInner::Shard(sc) => sc.state.scratch.spans.push(SpanOp::Label {
                id,
                key,
                value: value.into(),
            }),
        }
    }
}

/// Builder for [`Engine`].
pub struct SimBuilder {
    seed: u64,
    network: NetworkConfig,
    trace_capacity: usize,
    max_events: u64,
    shards: usize,
    workers: Option<usize>,
    queue: Option<QueueKind>,
}

impl SimBuilder {
    /// Start building a simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            network: NetworkConfig::default(),
            trace_capacity: 0,
            max_events: u64::MAX,
            shards: 1,
            workers: None,
            queue: None,
        }
    }

    /// Configure the simulated network.
    pub fn network(mut self, config: NetworkConfig) -> Self {
        self.network = config;
        self
    }

    /// Keep the last `capacity` trace records (0 disables tracing).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Abort the run after this many events (runaway-loop guard). On
    /// sharded engines the guard is checked per window, so a run may
    /// finish the window in flight and overshoot by a bounded amount.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Partition the engine into `n` event-queue shards (clamped to at
    /// least 1). The shard count is *semantic*: it changes which RNG
    /// stream each component draws from, so digests are only comparable
    /// between runs with equal shard counts. `shards(1)` — the default —
    /// is byte-identical to the historical single-queue engine.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Execute windows on `n` worker threads (default: one per shard).
    /// Purely a throughput knob — the digest of a run is byte-identical
    /// for every worker count, including 1.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Choose the event-queue implementation. Defaults to the binary heap
    /// for single-shard engines (the historical structure) and the
    /// calendar/bucket queue for sharded ones. The queue kind never
    /// affects the executed history, only its cost.
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = Some(kind);
        self
    }

    /// Finish building. The component type is chosen by the caller
    /// (usually via a type annotation on the binding):
    ///
    /// ```ignore
    /// let mut sim: Engine<SnoozeNode> = SimBuilder::new(7).build();
    /// ```
    pub fn build<C: Component>(self) -> Engine<C> {
        let shard_count = self.shards.max(1);
        let queue_kind = self.queue.unwrap_or(if shard_count == 1 {
            QueueKind::Heap
        } else {
            QueueKind::Bucket
        });
        let workers = self.workers.unwrap_or(shard_count).max(1);
        let network = Network::new(self.network);
        let lookahead = network.min_latency();
        let shards: Vec<ShardState<C::Msg>> = (0..shard_count)
            .map(|i| {
                // Shard 0 keeps the engine-seed stream (byte parity at
                // shards(1)); the rest fork deterministically off it.
                let rng = if i == 0 {
                    SimRng::new(self.seed)
                } else {
                    SimRng::new(self.seed).fork(i as u64)
                };
                ShardState::new(queue_kind, rng)
            })
            .collect();
        Engine {
            core: EngineCore {
                now: SimTime::ZERO,
                shards,
                shard_of: Vec::new(),
                local_of: Vec::new(),
                net_events: Vec::new(),
                lookahead,
                workers,
                network,
                metrics: MetricsRegistry::new(),
                trace: Trace::new(self.trace_capacity),
                spans: SpanLog::new(),
                ctx_span: None,
                alive: Vec::new(),
                incarnation: Vec::new(),
                names: Vec::new(),
                halted: false,
                events_executed: 0,
                digest: crate::trace::FNV_OFFSET,
                last_executed: None,
                classifier: None,
                profiler: None,
                flight: None,
            },
            components: (0..shard_count).map(|_| Vec::new()).collect(),
            started: false,
            max_events: self.max_events,
        }
    }
}

/// The simulation engine: owns all components (of one type `C`, usually
/// a dispatch enum built with [`node_enum!`](crate::node_enum)), the
/// event queue shards, the network, metrics and trace.
pub struct Engine<C: Component> {
    pub(crate) core: EngineCore<C::Msg>,
    /// Components, grouped by shard; `components[shard][local]`. The
    /// global id → `(shard, local)` mapping lives in the core
    /// (`shard_of`/`local_of`).
    pub(crate) components: Vec<Vec<Option<C>>>,
    pub(crate) started: bool,
    pub(crate) max_events: u64,
}

impl<C: Component> Engine<C> {
    /// Register a component; its `on_start` runs at time zero when the
    /// simulation starts (or immediately-ish if already running).
    /// Anything convertible into the engine's component type is accepted,
    /// so node-enum wrapping happens here rather than at every call site.
    /// On sharded engines the component lands in the shard named by its
    /// [`Component::shard_hint`] (modulo the shard count; no hint → 0).
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        component: impl Into<C>,
    ) -> ComponentId {
        let comp = component.into();
        let shard = match comp.shard_hint() {
            Some(h) => h % self.core.shards.len(),
            None => 0,
        };
        self.insert_component(name.into(), comp, shard)
    }

    /// Register a component into an explicit shard (modulo the shard
    /// count), overriding its [`Component::shard_hint`]. The system layer
    /// uses this to co-locate each GM subtree — the GM and the LCs it
    /// manages — in one shard, so heartbeat traffic never crosses the
    /// lookahead boundary.
    pub fn add_component_in_shard(
        &mut self,
        name: impl Into<String>,
        component: impl Into<C>,
        shard: usize,
    ) -> ComponentId {
        let shard = shard % self.core.shards.len();
        self.insert_component(name.into(), component.into(), shard)
    }

    fn insert_component(&mut self, name: String, comp: C, shard: usize) -> ComponentId {
        let id = ComponentId(self.core.shard_of.len());
        self.core.shard_of.push(shard as u32);
        self.core.local_of.push(self.components[shard].len() as u32);
        self.components[shard].push(Some(comp));
        self.core.alive.push(true);
        self.core.incarnation.push(0);
        self.core.names.push(name);
        self.core.schedule(self.core.now, EventKind::Start(id));
        id
    }

    fn locate(&self, id: ComponentId) -> Option<(usize, usize)> {
        let shard = *self.core.shard_of.get(id.0)? as usize;
        let local = *self.core.local_of.get(id.0)? as usize;
        Some((shard, local))
    }

    /// Create a fresh multicast group.
    pub fn create_group(&mut self) -> GroupId {
        self.core.network.create_group()
    }

    /// Add a component to a multicast group from outside the simulation.
    pub fn join_group(&mut self, group: GroupId, id: ComponentId) {
        self.core.network.join_group(group, id);
    }

    /// Inject a message from outside the simulation, delivered to `dst` at
    /// absolute time `at` (no network latency is applied).
    pub fn post(&mut self, at: SimTime, dst: ComponentId, msg: impl Into<C::Msg>) {
        self.core.schedule(
            at,
            EventKind::Deliver {
                src: ComponentId::EXTERNAL,
                dst,
                msg: msg.into(),
                span: None,
            },
        );
    }

    /// Schedule a crash of `id` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, id: ComponentId) {
        self.core.schedule(at, EventKind::Crash(id));
    }

    /// Schedule a restart of `id` at time `at`.
    pub fn schedule_restart(&mut self, at: SimTime, id: ComponentId) {
        self.core.schedule(at, EventKind::Restart(id));
    }

    /// Schedule a network-health change at time `at` — link degradation
    /// and component isolation as first-class, digest-covered events.
    pub fn schedule_net_fault(&mut self, at: SimTime, fault: NetFault) {
        self.core.schedule(at, EventKind::Net(fault));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.core.events_executed
    }

    /// FNV-1a fingerprint of the executed event stream: every executed
    /// event's `(time, seq, kind, endpoints)` in order. Two runs from the
    /// same seed must report identical digests; `snooze-audit
    /// determinism` and the replay proptests assert exactly that. On
    /// sharded engines the digest is additionally independent of the
    /// worker count — only the shard count is semantic.
    pub fn digest(&self) -> u64 {
        self.core.digest
    }

    /// Number of event-queue shards (1 unless [`SimBuilder::shards`]).
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Worker threads windows execute on (1 = inline).
    pub fn worker_count(&self) -> usize {
        self.core.workers
    }

    /// The event-queue implementation in use.
    pub fn queue_kind(&self) -> QueueKind {
        self.core.shards[0].queue.kind()
    }

    /// Which shard component `id` was registered into.
    pub fn shard_of(&self, id: ComponentId) -> Option<usize> {
        self.core.shard_of.get(id.0).map(|&s| s as usize)
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: ComponentId) -> bool {
        self.core.alive.get(id.0).copied().unwrap_or(false)
    }

    /// The registered name of `id`.
    pub fn name_of(&self, id: ComponentId) -> &str {
        self.core.names.get(id.0).map(String::as_str).unwrap_or("?")
    }

    /// Metrics collected during the run.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    /// Mutable metrics (e.g. for a driver recording external observations).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Messages that arrived for a crashed or never-registered component
    /// and were dropped — the sum of every `dead_letters{reason}` count.
    pub fn dead_letters(&self) -> u64 {
        self.core.metrics.counter_total("dead_letters")
    }

    /// The bounded event trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// The causal span log accumulated by instrumented components.
    pub fn spans(&self) -> &SpanLog {
        &self.core.spans
    }

    /// FNV-1a digest of the span log's mutation stream — the telemetry
    /// analogue of [`Engine::digest`]; same-seed runs must agree on it.
    pub fn span_digest(&self) -> u64 {
        self.core.spans.digest()
    }

    /// Mutable span log — for drivers recording engine-external spans
    /// (e.g. the scenario layer's SLO alert spans).
    pub fn spans_mut(&mut self) -> &mut SpanLog {
        &mut self.core.spans
    }

    /// Number of events currently pending across every shard queue (plus
    /// scheduled network faults). An observer reading (the queues are
    /// untouched); SLO watchdogs use it as the backlog signal.
    pub fn queue_depth(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.queue.len())
            .sum::<usize>()
            + self.core.net_events.len()
    }

    /// Install the message classifier: a plain `fn` mapping a payload
    /// to its `&'static str` variant name. Powers the profiler's
    /// per-variant attribution, the flight recorder's event labels and
    /// the `dead_letters{msg}` breakdown. Purely observational — the
    /// digest-covered history is identical with or without it.
    pub fn set_msg_classifier(&mut self, classify: fn(&C::Msg) -> &'static str) {
        self.core.classifier = Some(classify);
    }

    /// Turn on the sim-time profiler (idempotent). Costs one advisory
    /// wall-clock read per executed event while on. Sharded engines
    /// profile per shard and merge on read.
    pub fn enable_profiler(&mut self) {
        if self.core.profiler.is_none() {
            self.core.profiler = Some(crate::flight::Profiler::new());
        }
        if self.core.shards.len() > 1 {
            for sh in &mut self.core.shards {
                if sh.scratch.profiler.is_none() {
                    sh.scratch.profiler = Some(crate::flight::Profiler::new());
                }
            }
        }
    }

    /// Turn on the flight recorder with a ring of `capacity` events
    /// (idempotent; the first call wins).
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        if self.core.flight.is_none() {
            self.core.flight = Some(crate::flight::FlightRecorder::new(capacity));
        }
    }

    /// The flight recorder, if enabled.
    pub fn flight_recorder(&self) -> Option<&crate::flight::FlightRecorder> {
        self.core.flight.as_ref()
    }

    /// The aggregated profile, hottest bucket first — empty when the
    /// profiler is off. Flushes the in-flight attribution first, and on
    /// sharded engines merges every shard's cells with the engine-level
    /// ones (commit-time network faults).
    pub fn profile_rows(&mut self) -> Vec<crate::flight::ProfileRow> {
        let mut cells: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        let mut enabled = false;
        if let Some(p) = self.core.profiler.as_mut() {
            p.flush();
            enabled = true;
            for row in p.rows() {
                let cell = cells.entry((row.kind, row.variant)).or_insert((0, 0));
                cell.0 += row.events;
                cell.1 += row.wall_nanos;
            }
        }
        for sh in &mut self.core.shards {
            if let Some(p) = sh.scratch.profiler.as_mut() {
                p.flush();
                enabled = true;
                for row in p.rows() {
                    let cell = cells.entry((row.kind, row.variant)).or_insert((0, 0));
                    cell.0 += row.events;
                    cell.1 += row.wall_nanos;
                }
            }
        }
        if !enabled {
            return Vec::new();
        }
        let mut rows: Vec<crate::flight::ProfileRow> = cells
            .into_iter()
            .map(
                |((kind, variant), (events, wall_nanos))| crate::flight::ProfileRow {
                    kind,
                    variant,
                    events,
                    wall_nanos,
                },
            )
            .collect();
        rows.sort_by(|a, b| {
            b.events
                .cmp(&a.events)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.variant.cmp(&b.variant))
        });
        rows
    }

    /// Folded-stack profile text (`kind;variant events` per line),
    /// flamegraph-compatible and byte-deterministic — empty when the
    /// profiler is off.
    pub fn profile_folded(&mut self) -> String {
        let mut out = String::new();
        for row in self.profile_rows() {
            out.push_str(&format!("{};{} {}\n", row.kind, row.variant, row.events));
        }
        out
    }

    /// Direct mutable access to the simulated network (partitions etc.).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.core.network
    }

    /// Borrow a registered component for inspection, or `None` for an
    /// unknown id. (Node-enum engines usually chain this with the enum's
    /// generated `as_*` accessor.)
    pub fn get(&self, id: ComponentId) -> Option<&C> {
        let (shard, local) = self.locate(id)?;
        self.components[shard][local].as_ref()
    }

    /// Borrow a registered component for inspection. Panics if the id is
    /// unknown.
    pub fn component(&self, id: ComponentId) -> &C {
        self.get(id).expect("unknown component id")
    }

    /// Execute a single event (single-shard engines) or a single
    /// lookahead window (sharded engines). Returns `false` when the
    /// queues are empty or the simulation halted.
    pub fn step(&mut self) -> bool {
        if self.core.shards.len() > 1 {
            let advanced = crate::exec::step_window(self, SimTime::MAX);
            self.core.flush_shard_observers();
            return advanced;
        }
        if self.core.halted || self.core.events_executed >= self.max_events {
            return false;
        }
        let ev = match self.core.shards[0].queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(ev.time >= self.core.now);
        self.execute(ev);
        true
    }

    /// Execute one event: advance the clock, fold the digest, dispatch to
    /// the target component. Shared by [`Engine::step`] (which executes
    /// the queue minimum) and the model checker's re-timed apply path —
    /// the checker drives even sharded engines through this sequential
    /// path, one event at a time.
    fn execute(&mut self, ev: Scheduled<C::Msg>) {
        crate::audit_invariant!(
            "engine",
            "monotonic-clock",
            ev.time >= self.core.now,
            "event at t={:?} executed while clock already at t={:?}",
            ev.time,
            self.core.now
        );
        crate::audit_invariant!(
            "engine",
            "total-event-order",
            // Sharded engines have per-shard seq counters; global
            // (time, seq) strictness only holds with a single shard.
            self.core.shards.len() > 1
                || self
                    .core
                    .last_executed
                    .is_none_or(|last| (ev.time, ev.seq) > last),
            "event (t={:?}, seq={}) not after last executed {:?}",
            ev.time,
            ev.seq,
            self.core.last_executed
        );
        self.core.last_executed = Some((ev.time, ev.seq));
        self.core.fold_event(&ev);
        self.core.now = ev.time;
        self.core.events_executed += 1;
        if self.core.profiler.is_some() || self.core.flight.is_some() {
            self.observe_event(&ev);
        }
        match ev.kind {
            EventKind::Start(id) => {
                self.with_component(id, |comp, ctx| comp.on_start(ctx));
            }
            EventKind::Deliver {
                src,
                dst,
                msg,
                span,
            } => {
                if self.core.alive.get(dst.0).copied().unwrap_or(false) {
                    self.core.metrics.incr("net.delivered");
                    self.core.ctx_span = span;
                    self.with_component(dst, |comp, ctx| comp.on_message(ctx, src, msg));
                } else {
                    // Dead letter: delivered to a crashed component, or to
                    // an id nothing was ever registered under. Counted per
                    // reason so silent drops show up in run outcomes.
                    self.core.metrics.incr("net.to_dead");
                    let reason = if dst.0 < self.core.names.len() {
                        "crashed"
                    } else {
                        "unknown_dst"
                    };
                    let mut labels = label("reason", reason);
                    if let Some(classify) = self.core.classifier {
                        // Break the drop count down by message variant
                        // so "129 dead letters" becomes "mostly missed
                        // GmLcHeartbeat to a crashed LC".
                        labels.insert("msg", classify(&msg));
                    }
                    self.core.metrics.incr_with("dead_letters", &labels);
                }
            }
            EventKind::Timer {
                dst,
                tag,
                incarnation,
                id,
                span,
            } => {
                let shard = self.core.shard_idx(dst);
                let stale = self.core.shards[shard].cancelled_timers.remove(&id)
                    || self.core.incarnation[dst.0] != incarnation
                    || !self.core.alive[dst.0];
                if !stale {
                    self.core.ctx_span = span;
                    self.with_component(dst, |comp, ctx| comp.on_timer(ctx, tag));
                }
            }
            EventKind::Crash(id) => {
                if self.core.alive[id.0] {
                    self.core.alive[id.0] = false;
                    // Bump the incarnation so timers set by the dead
                    // incarnation never fire, even across a restart.
                    self.core.incarnation[id.0] += 1;
                    self.core.metrics.incr("failure.crashes");
                    let now = self.core.now;
                    if let Some((shard, local)) = self.locate(id) {
                        if let Some(comp) = self.components[shard][local].as_mut() {
                            comp.on_crash(now);
                        }
                    }
                    let name = self.core.names[id.0].clone();
                    self.core.trace.record(now, id, "crash", name);
                }
            }
            EventKind::Restart(id) => {
                if !self.core.alive[id.0] {
                    self.core.alive[id.0] = true;
                    self.core.metrics.incr("failure.restarts");
                    self.with_component(id, |comp, ctx| comp.on_restart(ctx));
                }
            }
            EventKind::Net(fault) => {
                self.core.metrics.incr("failure.net");
                match fault {
                    NetFault::Isolate(id) => self.core.network.isolate(id),
                    NetFault::Reconnect(id) => self.core.network.reconnect(id),
                    NetFault::SetLossPpm(ppm) => self.core.network.set_loss_rate(ppm as f64 / 1e6),
                }
            }
        }
    }

    /// Feed one executed event to the enabled observers (profiler and
    /// flight recorder). Pure observation: reads the event, mutates
    /// only observer state, schedules nothing — the digest-covered
    /// history is identical with observers on or off.
    fn observe_event(&mut self, ev: &Scheduled<C::Msg>) {
        let (kind, comp, a, b): (&'static str, Option<usize>, u64, u64) = match &ev.kind {
            EventKind::Start(id) => ("start", Some(id.0), id.0 as u64, 0),
            EventKind::Deliver { src, dst, .. } => {
                ("deliver", Some(dst.0), src.0 as u64, dst.0 as u64)
            }
            EventKind::Timer { dst, tag, .. } => ("timer", Some(dst.0), dst.0 as u64, *tag),
            EventKind::Crash(id) => ("crash", Some(id.0), id.0 as u64, 0),
            EventKind::Restart(id) => ("restart", Some(id.0), id.0 as u64, 0),
            EventKind::Net(_) => ("net", None, 0, 0),
        };
        let variant = match (&ev.kind, self.core.classifier) {
            (EventKind::Deliver { msg, .. }, Some(classify)) => classify(msg),
            _ => kind,
        };
        if let Some(p) = self.core.profiler.as_mut() {
            let k = p.kind_index(comp, &self.core.names);
            p.begin_event(k, variant);
        }
        if let Some(fr) = self.core.flight.as_mut() {
            fr.record(crate::flight::FlightEvent {
                time_us: ev.time.0,
                seq: ev.seq,
                kind,
                a,
                b,
                variant,
            });
        }
    }

    fn with_component<F: FnOnce(&mut C, &mut Ctx<'_, C::Msg>)>(&mut self, id: ComponentId, f: F) {
        self.started = true;
        let Some((shard, local)) = self.locate(id) else {
            return;
        };
        let mut comp = match self.components[shard][local].take() {
            Some(c) => c,
            None => return, // unknown or re-entrant — drop the event
        };
        {
            let mut ctx = Ctx {
                inner: CtxInner::Seq(&mut self.core),
                me: id,
            };
            f(&mut comp, &mut ctx);
        }
        // Context hygiene: ambient span context never leaks across events.
        self.core.ctx_span = None;
        self.components[shard][local] = Some(comp);
    }

    /// Run until the queue drains, the engine halts, or `max_events` hits.
    pub fn run(&mut self) {
        if self.core.shards.len() > 1 {
            while crate::exec::step_window(self, SimTime::MAX) {}
            self.core.flush_shard_observers();
            return;
        }
        while self.step() {}
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are executed). Time advances to `deadline` even if the
    /// queue drains early.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.core.shards.len() > 1 {
            while crate::exec::step_window(self, deadline) {}
            if self.core.now < deadline && !self.core.halted {
                self.core.now = deadline;
            }
            self.core.flush_shard_observers();
            return;
        }
        loop {
            match self.core.shards[0].queue.peek_key() {
                Some((time, _)) if time <= deadline => {}
                _ => break,
            }
            if !self.step() {
                break;
            }
        }
        if self.core.now < deadline && !self.core.halted {
            self.core.now = deadline;
        }
    }

    /// Run for an additional span of virtual time.
    pub fn run_for(&mut self, span: SimSpan) {
        let deadline = self.core.now + span;
        self.run_until(deadline);
    }
}

// ---------------------------------------------------------------------------
// Model-checking hooks (see `crate::mc` and the `snooze-mc` crate)
// ---------------------------------------------------------------------------

/// Bit position separating the shard index from the per-shard seq in the
/// encoded pending-event ids [`Engine::mc_pending`] reports on sharded
/// engines. Single-shard engines report raw seqs (historical format).
const MC_SHARD_SHIFT: u32 = 48;

impl<C: Component> Engine<C>
where
    C: Clone,
    C::Msg: Clone,
{
    /// Capture a full copy of the engine state: clock, counters, pending
    /// events (per shard), network, RNG streams, span log and every
    /// component. Metrics and the bounded trace are *not* captured — they
    /// are observers, never causes, and restoring them would only blur
    /// exploration statistics.
    pub fn mc_snapshot(&self) -> crate::mc::SystemState<C> {
        let mut fifo_union = FifoClamps::new();
        for sh in &self.core.shards {
            for (&key, &t) in &sh.fifo {
                let slot = fifo_union.entry(key).or_insert(SimTime::ZERO);
                if t > *slot {
                    *slot = t;
                }
            }
        }
        crate::mc::SystemState {
            now: self.core.now,
            shards: self
                .core
                .shards
                .iter()
                .map(|sh| crate::mc::ShardSnap {
                    queue: sh.queue.to_sorted_vec(),
                    seq: sh.seq,
                    rng: sh.rng.clone(),
                    next_timer_id: sh.next_timer_id,
                    cancelled_timers: sh.cancelled_timers.clone(),
                    next_span: sh.scratch.next_span,
                    span_parents: sh.scratch.span_parents.clone(),
                })
                .collect(),
            net_events: self.core.net_events.clone(),
            network: self.core.network.save_state(fifo_union),
            spans: self.core.spans.clone(),
            ctx_span: self.core.ctx_span,
            alive: self.core.alive.clone(),
            incarnation: self.core.incarnation.clone(),
            halted: self.core.halted,
            events_executed: self.core.events_executed,
            digest: self.core.digest,
            last_executed: self.core.last_executed,
            components: self.components.clone(),
        }
    }

    /// Restore a state captured by [`Engine::mc_snapshot`]. The snapshot
    /// must come from *this* engine (same components, same names, same
    /// shard layout); the checker only ever restores its own captures.
    pub fn mc_restore(&mut self, state: &crate::mc::SystemState<C>) {
        assert_eq!(
            state.components.len(),
            self.components.len(),
            "snapshot from a different system shape"
        );
        for (mine, theirs) in self.components.iter().zip(state.components.iter()) {
            assert_eq!(
                mine.len(),
                theirs.len(),
                "snapshot from a different system shape"
            );
        }
        self.core.now = state.now;
        for (sh, snap) in self.core.shards.iter_mut().zip(state.shards.iter()) {
            let kind = sh.queue.kind();
            sh.queue = EventQueue::from_vec(kind, snap.queue.clone());
            sh.seq = snap.seq;
            sh.rng = snap.rng.clone();
            sh.next_timer_id = snap.next_timer_id;
            sh.cancelled_timers = snap.cancelled_timers.clone();
            sh.scratch.next_span = snap.next_span;
            sh.scratch.span_parents = snap.span_parents.clone();
        }
        self.core.net_events = state.net_events.clone();
        let clamps = self.core.network.load_state(&state.network);
        {
            // Redistribute the merged FIFO clamps back to the shard that
            // owns each (src, dst) link — src determines the shard.
            let EngineCore {
                shards, shard_of, ..
            } = &mut self.core;
            for sh in shards.iter_mut() {
                sh.fifo.clear();
            }
            for ((src, dst), t) in clamps {
                let s = shard_of.get(src).map(|&x| x as usize).unwrap_or(0);
                shards[s].fifo.insert((src, dst), t);
            }
        }
        self.core.spans = state.spans.clone();
        self.core.ctx_span = state.ctx_span;
        self.core.alive = state.alive.clone();
        self.core.incarnation = state.incarnation.clone();
        self.core.halted = state.halted;
        self.core.events_executed = state.events_executed;
        self.core.digest = state.digest;
        self.core.last_executed = state.last_executed;
        self.components = state.components.clone();
    }
}

impl<C: Component> Engine<C> {
    fn timer_is_stale(&self, dst: ComponentId, incarnation: u32, id: u64) -> bool {
        let shard = self.core.shard_idx(dst);
        self.core.shards[shard].cancelled_timers.contains(&id)
            || self.core.incarnation.get(dst.0).copied() != Some(incarnation)
            || !self.core.alive.get(dst.0).copied().unwrap_or(false)
    }

    fn encode_pending(&self, shard: usize, seq: u64) -> u64 {
        if self.core.shards.len() == 1 {
            seq
        } else {
            (((shard as u64) + 1) << MC_SHARD_SHIFT) | seq
        }
    }

    fn decode_pending(&self, enc: u64) -> (usize, u64) {
        if self.core.shards.len() == 1 {
            (0, enc)
        } else {
            (
                ((enc >> MC_SHARD_SHIFT) - 1) as usize,
                enc & ((1u64 << MC_SHARD_SHIFT) - 1),
            )
        }
    }

    /// Every pending event a checker could execute next, sorted by
    /// `(time, seq)`. Stale timers (cancelled, or set by a dead or
    /// superseded incarnation) are omitted — they would be silently
    /// discarded by normal execution too. On sharded engines the reported
    /// seq encodes the owning shard (`((shard+1) << 48) | seq`); treat it
    /// as an opaque token either way.
    pub fn mc_pending(&self) -> Vec<crate::mc::McPending> {
        let mut out: Vec<crate::mc::McPending> = Vec::new();
        for (s, sh) in self.core.shards.iter().enumerate() {
            for ev in sh.queue.iter() {
                let desc = match &ev.kind {
                    EventKind::Start(dst) => crate::mc::McEventDesc::Start { dst: *dst },
                    EventKind::Deliver { src, dst, .. } => crate::mc::McEventDesc::Deliver {
                        src: *src,
                        dst: *dst,
                    },
                    EventKind::Timer {
                        dst,
                        tag,
                        incarnation,
                        id,
                        ..
                    } => {
                        if self.timer_is_stale(*dst, *incarnation, *id) {
                            continue;
                        }
                        crate::mc::McEventDesc::Timer {
                            dst: *dst,
                            tag: *tag,
                        }
                    }
                    EventKind::Crash(dst) => crate::mc::McEventDesc::Crash { dst: *dst },
                    EventKind::Restart(dst) => crate::mc::McEventDesc::Restart { dst: *dst },
                    EventKind::Net(_) => crate::mc::McEventDesc::Net,
                };
                let dst_alive = match desc {
                    crate::mc::McEventDesc::Start { dst }
                    | crate::mc::McEventDesc::Deliver { dst, .. }
                    | crate::mc::McEventDesc::Timer { dst, .. } => self.is_alive(dst),
                    _ => true,
                };
                out.push(crate::mc::McPending {
                    seq: self.encode_pending(s, ev.seq),
                    time: ev.time,
                    dst_alive,
                    desc,
                });
            }
        }
        // Sharded engines keep network faults outside the shard queues;
        // they draw shard-0 seqs, so encode them as shard 0.
        for &(time, seq, _) in &self.core.net_events {
            out.push(crate::mc::McPending {
                seq: self.encode_pending(0, seq),
                time,
                dst_alive: true,
                desc: crate::mc::McEventDesc::Net,
            });
        }
        out.sort_by_key(|p| (p.time, p.seq));
        out
    }

    fn mc_remove(&mut self, enc: u64) -> Option<Scheduled<C::Msg>> {
        let (shard, seq) = self.decode_pending(enc);
        if self.core.shards.len() > 1 && shard == 0 {
            // Net events share shard 0's seq counter but live in their
            // own list; their seqs never collide with queued events.
            if let Some(pos) = self.core.net_events.iter().position(|&(_, s, _)| s == seq) {
                let (time, seq, fault) = self.core.net_events.remove(pos);
                return Some(Scheduled {
                    time,
                    seq,
                    kind: EventKind::Net(fault),
                });
            }
        }
        let sh = self.core.shards.get_mut(shard)?;
        let kind = sh.queue.kind();
        let mut events = sh.queue.drain_all();
        let pos = events.iter().position(|ev| ev.seq == seq);
        let found = pos.map(|i| events.remove(i));
        sh.queue = EventQueue::from_vec(kind, events);
        found
    }

    /// Execute pending event `seq` *now*, regardless of queue order: the
    /// event is re-timed to `max(now, its scheduled time)` and re-sequenced
    /// so the executed stream stays strictly `(time, seq)`-ordered — the
    /// audit invariants hold during exploration exactly as during normal
    /// runs. Returns `false` if no such pending event exists.
    pub fn mc_execute_pending(&mut self, seq: u64) -> bool {
        let Some(ev) = self.mc_remove(seq) else {
            return false;
        };
        let time = ev.time.max(self.core.now);
        let shard = self.core.shard_for_kind(&ev.kind);
        let sh = &mut self.core.shards[shard];
        let new_seq = sh.seq;
        sh.seq += 1;
        self.execute(Scheduled {
            time,
            seq: new_seq,
            kind: ev.kind,
        });
        true
    }

    /// Drop pending event `seq` without executing it — the checker's
    /// explicit message-loss action. Returns `false` if no such pending
    /// event exists.
    pub fn mc_drop_pending(&mut self, seq: u64) -> bool {
        if self.mc_remove(seq).is_none() {
            return false;
        }
        self.core.metrics.incr("mc.dropped");
        true
    }

    /// Crash `id` immediately (a checker-chosen crash point). No-op if
    /// already dead.
    pub fn mc_inject_crash(&mut self, id: ComponentId) {
        let shard = self.core.shard_idx(id);
        let sh = &mut self.core.shards[shard];
        let seq = sh.seq;
        sh.seq += 1;
        self.execute(Scheduled {
            time: self.core.now,
            seq,
            kind: EventKind::Crash(id),
        });
    }

    /// Restart `id` immediately. No-op if alive.
    pub fn mc_inject_restart(&mut self, id: ComponentId) {
        let shard = self.core.shard_idx(id);
        let sh = &mut self.core.shards[shard];
        let seq = sh.seq;
        sh.seq += 1;
        self.execute(Scheduled {
            time: self.core.now,
            seq,
            kind: EventKind::Restart(id),
        });
    }

    /// Purge stale timers from the queues (and their ids from the
    /// cancelled sets). Keeps snapshots small and fingerprints free of
    /// events that can never fire.
    pub fn mc_gc(&mut self) {
        let EngineCore {
            shards,
            alive,
            incarnation,
            ..
        } = &mut self.core;
        for sh in shards.iter_mut() {
            let mut stale: Vec<u64> = Vec::new();
            let ShardState {
                queue,
                cancelled_timers,
                ..
            } = sh;
            queue.retain(|ev| {
                if let EventKind::Timer {
                    dst,
                    incarnation: inc,
                    id,
                    ..
                } = &ev.kind
                {
                    if cancelled_timers.contains(id)
                        || incarnation.get(dst.0).copied() != Some(*inc)
                        || !alive.get(dst.0).copied().unwrap_or(false)
                    {
                        stale.push(*id);
                        return false;
                    }
                }
                true
            });
            for id in stale {
                cancelled_timers.remove(&id);
            }
        }
    }

    /// Hand the queues back to normal scheduled execution after checker
    /// perturbation: any event whose scheduled time fell behind the clock
    /// (a message the checker left "in flight" while executing later
    /// events) is re-timed to *now*, preserving relative `(time, seq)`
    /// order via fresh sequence numbers. Without this, [`Engine::step`]'s
    /// monotonic-clock invariant would trip on the stale entries.
    pub fn mc_release(&mut self) {
        let now = self.core.now;
        for sh in self.core.shards.iter_mut() {
            if sh.queue.iter().all(|ev| ev.time >= now) {
                continue;
            }
            let kind = sh.queue.kind();
            let mut events = sh.queue.drain_all(); // sorted by (time, seq)
            for ev in events.iter_mut() {
                if ev.time < now {
                    ev.time = now;
                    ev.seq = sh.seq;
                    sh.seq += 1;
                }
            }
            sh.queue = EventQueue::from_vec(kind, events);
        }
        if self.core.net_events.iter().any(|&(t, _, _)| t < now) {
            let mut evs = std::mem::take(&mut self.core.net_events);
            evs.sort_by_key(|&(t, s, _)| (t, s));
            for e in evs.iter_mut() {
                if e.0 < now {
                    e.0 = now;
                    let sh = &mut self.core.shards[0];
                    e.1 = sh.seq;
                    sh.seq += 1;
                }
            }
            evs.sort_by_key(|&(t, s, _)| (t, s));
            self.core.net_events = evs;
        }
    }
}

impl<C> Engine<C>
where
    C: Component + crate::mc::McState,
    C::Msg: crate::mc::McState,
{
    /// Canonical fingerprint of the current state, for visited-state
    /// deduplication: per-component state, liveness, the pending-event
    /// multiset (stale timers excluded, times relative to now), and the
    /// network's mutable state. Excludes observers (metrics, trace,
    /// spans), history (digest, executed count) and identity counters
    /// (seq, timer ids) — none of which influence future behavior.
    pub fn mc_fingerprint(&self) -> u64 {
        let mut h = crate::mc::McHasher::new(self.core.now);
        h.flag(self.core.halted);
        for idx in 0..self.core.names.len() {
            h.word(idx as u64);
            h.flag(self.core.alive[idx]);
            h.word(self.core.incarnation[idx] as u64);
            if let Some((shard, local)) = self.locate(ComponentId(idx)) {
                if let Some(c) = self.components[shard][local].as_ref() {
                    c.mc_fold(&mut h);
                }
            }
        }
        let mut pending: Vec<(usize, &Scheduled<C::Msg>)> = Vec::new();
        for (s, sh) in self.core.shards.iter().enumerate() {
            for ev in sh.queue.iter() {
                if let EventKind::Timer {
                    dst,
                    incarnation,
                    id,
                    ..
                } = &ev.kind
                {
                    if self.timer_is_stale(*dst, *incarnation, *id) {
                        continue;
                    }
                }
                pending.push((s, ev));
            }
        }
        pending.sort_by_key(|(s, ev)| (ev.time, *s, ev.seq));
        for (_, ev) in pending {
            h.time(ev.time);
            match &ev.kind {
                EventKind::Start(dst) => {
                    h.word(1);
                    h.id(*dst);
                }
                EventKind::Deliver { src, dst, msg, .. } => {
                    h.word(2);
                    h.id(*src);
                    h.id(*dst);
                    msg.mc_fold(&mut h);
                }
                EventKind::Timer { dst, tag, .. } => {
                    h.word(3);
                    h.id(*dst);
                    h.word(*tag);
                }
                EventKind::Crash(dst) => {
                    h.word(4);
                    h.id(*dst);
                }
                EventKind::Restart(dst) => {
                    h.word(5);
                    h.id(*dst);
                }
                EventKind::Net(fault) => {
                    h.word(6);
                    match fault {
                        NetFault::Isolate(id) => {
                            h.word(0);
                            h.id(*id);
                        }
                        NetFault::Reconnect(id) => {
                            h.word(1);
                            h.id(*id);
                        }
                        NetFault::SetLossPpm(ppm) => {
                            h.word(2);
                            h.word(*ppm as u64);
                        }
                    }
                }
            }
        }
        // Scheduled network faults held outside the shard queues (always
        // empty on single-shard engines, so the historical fold is
        // unchanged there).
        for &(time, _, fault) in &self.core.net_events {
            h.time(time);
            h.word(6);
            match fault {
                NetFault::Isolate(id) => {
                    h.word(0);
                    h.id(id);
                }
                NetFault::Reconnect(id) => {
                    h.word(1);
                    h.id(id);
                }
                NetFault::SetLossPpm(ppm) => {
                    h.word(2);
                    h.word(ppm as u64);
                }
            }
        }
        self.core.network.fold_state(|w| h.word(w));
        h.finish()
    }
}

/// Generate a dispatch enum over several [`Component`] types sharing one
/// message type — the glue that lets a heterogeneous system (managers,
/// controllers, clients, …) live in one typed [`Engine`].
///
/// For each `Variant(Inner) as accessor` entry the macro emits:
/// * the enum variant wrapping `Inner`,
/// * `From<Inner>` (so [`Engine::add_component`] takes the bare inner
///   type),
/// * an `fn accessor(&self) -> Option<&Inner>` borrow for inspection,
/// * and a [`Component`] impl that delegates every callback (including
///   [`Component::shard_hint`]) to the active variant.
///
/// ```
/// use snooze_simcore::prelude::*;
///
/// enum Msg { Ping }
///
/// struct Ping;
/// impl Component for Ping {
///     type Msg = Msg;
///     fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ComponentId, _: Msg) {}
/// }
///
/// node_enum! {
///     /// All node kinds of this little system.
///     enum Node: Msg {
///         Ping(Ping) as as_ping,
///     }
/// }
///
/// let mut sim: Engine<Node> = SimBuilder::new(1).build();
/// let id = sim.add_component("ping", Ping);
/// sim.run();
/// assert!(sim.component(id).as_ping().is_some());
/// ```
#[macro_export]
macro_rules! node_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident : $msg:ty {
            $( $variant:ident($inner:ty) as $as_fn:ident ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $(
                #[doc = concat!("A [`", stringify!($inner), "`] node.")]
                $variant($inner),
            )+
        }

        $(
            impl ::core::convert::From<$inner> for $name {
                fn from(inner: $inner) -> Self {
                    $name::$variant(inner)
                }
            }
        )+

        impl $name {
            $(
                #[doc = concat!(
                    "Borrow the inner [`", stringify!($inner),
                    "`] if this node is that kind."
                )]
                #[allow(unreachable_patterns, dead_code)]
                $vis fn $as_fn(&self) -> ::core::option::Option<&$inner> {
                    match self {
                        $name::$variant(inner) => ::core::option::Option::Some(inner),
                        _ => ::core::option::Option::None,
                    }
                }
            )+
        }

        impl $crate::engine::Component for $name {
            type Msg = $msg;

            fn on_start(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_start(inner, ctx), )+
                }
            }

            fn on_message(
                &mut self,
                ctx: &mut $crate::engine::Ctx<'_, $msg>,
                src: $crate::engine::ComponentId,
                msg: $msg,
            ) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_message(inner, ctx, src, msg), )+
                }
            }

            fn on_timer(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>, tag: u64) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_timer(inner, ctx, tag), )+
                }
            }

            fn on_crash(&mut self, now: $crate::time::SimTime) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_crash(inner, now), )+
                }
            }

            fn on_restart(&mut self, ctx: &mut $crate::engine::Ctx<'_, $msg>) {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::on_restart(inner, ctx), )+
                }
            }

            fn shard_hint(&self) -> ::core::option::Option<usize> {
                match self {
                    $( $name::$variant(inner) =>
                        $crate::engine::Component::shard_hint(inner), )+
                }
            }
        }
    };
}
#[cfg(test)]
mod tests {
    use super::*;

    /// The closed message set of the unit-test system.
    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping,
    }

    /// Echoes every message back to its sender `bounces` times.
    struct Echo {
        bounces: u32,
        seen: u32,
    }

    impl Component for Echo {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, src: ComponentId, _msg: TestMsg) {
            self.seen += 1;
            if self.bounces > 0 && src != ComponentId::EXTERNAL {
                self.bounces -= 1;
                ctx.send(src, TestMsg::Ping);
            }
        }
    }

    struct Kickoff {
        peer: ComponentId,
    }

    impl Component for Kickoff {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.send(self.peer, TestMsg::Ping);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, src: ComponentId, _msg: TestMsg) {
            ctx.send(src, TestMsg::Ping);
        }
    }

    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Component for TimerUser {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_secs(1), 1);
            let h = ctx.set_timer(SimSpan::from_secs(2), 2);
            ctx.set_timer(SimSpan::from_secs(3), 3);
            if self.cancel_second {
                ctx.cancel_timer(h);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            self.fired.push(tag);
        }
    }

    struct RestartProbe {
        restarts: u32,
        crashes: u32,
    }

    impl Component for RestartProbe {
        type Msg = TestMsg;
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_crash(&mut self, _now: SimTime) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx<'_, TestMsg>) {
            self.restarts += 1;
        }
    }

    struct Caster {
        group: GroupId,
    }
    impl Component for Caster {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.join_group(self.group);
            ctx.multicast(self.group, || TestMsg::Ping);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
            panic!("sender must not receive its own multicast");
        }
    }

    struct Loopy;
    impl Component for Loopy {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _tag: u64) {
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
    }

    struct SrcProbe {
        from_external: bool,
    }
    impl Component for SrcProbe {
        type Msg = TestMsg;
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, src: ComponentId, _: TestMsg) {
            self.from_external = src == ComponentId::EXTERNAL;
        }
    }

    /// Opens a root span, relays through a middle hop that doesn't
    /// instrument anything, ends at a sink that opens a child — the
    /// context must survive the uninstrumented hop.
    struct SpanSource {
        next: ComponentId,
    }
    impl Component for SpanSource {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let root = ctx.span_open("op.root");
            ctx.span_label(root, "kind", "test");
            ctx.send(self.next, TestMsg::Ping);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
    }
    struct SpanRelay {
        next: ComponentId,
    }
    impl Component for SpanRelay {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, msg: TestMsg) {
            ctx.send(self.next, msg); // no instrumentation here
        }
    }
    struct SpanSink;
    impl Component for SpanSink {
        type Msg = TestMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
            let leaf = ctx.span_open("op.leaf");
            ctx.span_close(leaf);
        }
    }

    struct TimerSpans {
        carried: Option<Option<SpanId>>,
        plain: Option<Option<SpanId>>,
    }
    impl Component for TimerSpans {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let op = ctx.span_open("op");
            ctx.set_timer_in(op, SimSpan::from_secs(1), 1);
            ctx.set_timer(SimSpan::from_secs(2), 2);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            if tag == 1 {
                self.carried = Some(ctx.current_span());
            } else {
                self.plain = Some(ctx.current_span());
            }
        }
    }

    struct Nester;
    impl Component for Nester {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let outer = ctx.span_open("outer");
            let inner = ctx.span_open("inner");
            assert_eq!(ctx.current_span(), Some(inner));
            ctx.span_close(inner);
            assert_eq!(ctx.current_span(), Some(outer));
            let marker = ctx.span_instant("marker");
            assert_eq!(ctx.current_span(), Some(outer));
            ctx.span_close(outer);
            assert_eq!(ctx.current_span(), None);
            let _ = marker;
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
    }

    struct Halter;
    impl Component for Halter {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(SimSpan::from_secs(1), 0);
            ctx.set_timer(SimSpan::from_secs(100), 1);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            if tag == 0 {
                ctx.halt();
            } else {
                panic!("should have halted");
            }
        }
    }

    /// Declares a preferred shard via [`Component::shard_hint`].
    struct Hinted {
        shard: usize,
    }
    impl Component for Hinted {
        type Msg = TestMsg;
        fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        fn shard_hint(&self) -> Option<usize> {
            Some(self.shard)
        }
    }

    node_enum! {
        /// Every component kind the engine unit tests register,
        /// exercising the macro-generated dispatcher along the way.
        enum TestNode: TestMsg {
            Echo(Echo) as as_echo,
            Kickoff(Kickoff) as as_kickoff,
            TimerUser(TimerUser) as as_timer_user,
            RestartProbe(RestartProbe) as as_restart_probe,
            Caster(Caster) as as_caster,
            Loopy(Loopy) as as_loopy,
            SrcProbe(SrcProbe) as as_src_probe,
            SpanSource(SpanSource) as as_span_source,
            SpanRelay(SpanRelay) as as_span_relay,
            SpanSink(SpanSink) as as_span_sink,
            TimerSpans(TimerSpans) as as_timer_spans,
            Nester(Nester) as as_nester,
            Halter(Halter) as as_halter,
            Hinted(Hinted) as as_hinted,
        }
    }

    fn sim(seed: u64) -> Engine<TestNode> {
        SimBuilder::new(seed).build()
    }

    #[test]
    fn ping_pong_terminates() {
        let mut sim = sim(1);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 5,
                seen: 0,
            },
        );
        let _kick = sim.add_component("kick", Kickoff { peer: echo });
        sim.run();
        let echo_ref = sim.component(echo).as_echo().unwrap();
        assert_eq!(echo_ref.seen, 6); // initial + 5 replies to its bounces
        assert_eq!(echo_ref.bounces, 0);
    }

    #[test]
    fn time_advances_with_network_latency() {
        let mut sim = sim(1);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        sim.post(SimTime::from_secs(3), echo, TestMsg::Ping);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.run();
        assert_eq!(
            sim.component(id).as_timer_user().unwrap().fired,
            vec![1, 2, 3]
        );
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: true,
            },
        );
        sim.run();
        assert_eq!(sim.component(id).as_timer_user().unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1) + SimSpan::from_micros(1), id);
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.run();
        // Only the first timer fired before the crash.
        assert_eq!(sim.component(id).as_timer_user().unwrap().fired, vec![1]);
        assert_eq!(sim.metrics().counter("net.to_dead"), 1);
    }

    #[test]
    fn dead_letters_are_counted_by_reason() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        // To a crashed component and to an id nothing is registered under.
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.post(SimTime::from_secs(2), ComponentId(99), TestMsg::Ping);
        sim.run();
        assert_eq!(
            sim.metrics()
                .counter_with("dead_letters", &label("reason", "crashed")),
            1
        );
        assert_eq!(
            sim.metrics()
                .counter_with("dead_letters", &label("reason", "unknown_dst")),
            1
        );
        assert_eq!(sim.dead_letters(), 2);
        assert_eq!(sim.metrics().counter("net.to_dead"), 2);
    }

    #[test]
    fn crash_restart_lifecycle() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "p",
            RestartProbe {
                restarts: 0,
                crashes: 0,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.schedule_restart(SimTime::from_secs(2), id);
        // Crash while already dead and restart while alive are no-ops.
        sim.schedule_crash(SimTime::from_secs(1) + SimSpan::from_millis(1), id);
        sim.schedule_restart(SimTime::from_secs(3), id);
        sim.run();
        let p = sim.component(id).as_restart_probe().unwrap();
        assert_eq!(p.crashes, 1);
        assert_eq!(p.restarts, 1);
        assert!(sim.is_alive(id));
    }

    #[test]
    fn run_until_advances_clock_past_empty_queue() {
        let mut sim = sim(1);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn determinism_same_seed_same_history() {
        fn history(seed: u64) -> (u64, SimTime) {
            let mut sim = sim(seed);
            let echo = sim.add_component(
                "echo",
                Echo {
                    bounces: 50,
                    seen: 0,
                },
            );
            let _k = sim.add_component("kick", Kickoff { peer: echo });
            sim.run();
            (sim.events_executed(), sim.now())
        }
        assert_eq!(history(42), history(42));
    }

    #[test]
    fn multicast_reaches_all_members_except_sender() {
        let mut sim = sim(1);
        let group = sim.create_group();
        let a = sim.add_component(
            "a",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        let b = sim.add_component(
            "b",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        sim.join_group(group, a);
        sim.join_group(group, b);
        let _c = sim.add_component("caster", Caster { group });
        sim.run();
        assert_eq!(sim.component(a).as_echo().unwrap().seen, 1);
        assert_eq!(sim.component(b).as_echo().unwrap().seen, 1);
    }

    #[test]
    fn max_events_guard_stops_runaway() {
        let mut sim: Engine<TestNode> = SimBuilder::new(1).max_events(100).build();
        sim.add_component("loopy", Loopy);
        sim.run();
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn run_for_advances_relative_spans() {
        let mut sim = sim(1);
        sim.run_for(SimSpan::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run_for(SimSpan::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(8));
    }

    #[test]
    fn node_enum_accessor_is_variant_checked() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "echo",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        assert!(sim.component(id).as_echo().is_some());
        assert!(sim.component(id).as_kickoff().is_none());
        assert!(sim.get(ComponentId(99)).is_none());
    }

    #[test]
    fn external_posts_report_external_sender() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "p",
            SrcProbe {
                from_external: false,
            },
        );
        sim.post(SimTime::from_secs(1), id, TestMsg::Ping);
        sim.run();
        assert!(sim.component(id).as_src_probe().unwrap().from_external);
    }

    #[test]
    fn name_of_unknown_component_is_safe() {
        let sim = sim(1);
        assert_eq!(sim.name_of(ComponentId(99)), "?");
        assert!(!sim.is_alive(ComponentId(99)));
    }

    #[test]
    fn span_context_survives_uninstrumented_hops() {
        let mut sim = sim(1);
        let sink = sim.add_component("sink", SpanSink);
        let relay = sim.add_component("relay", SpanRelay { next: sink });
        let _src = sim.add_component("src", SpanSource { next: relay });
        sim.run();
        let spans = sim.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "op.root").unwrap();
        let leaf = spans.iter().find(|s| s.name == "op.leaf").unwrap();
        assert_eq!(leaf.parent, Some(root.id), "context lost across relay");
        assert_eq!(root.label("kind"), Some("test"));
        assert!(leaf.end_us.is_some());
        assert!(root.end_us.is_none(), "source never closed its root");
    }

    #[test]
    fn plain_timers_do_not_inherit_context_but_spanned_ones_carry_it() {
        let mut sim = sim(1);
        let id = sim.add_component(
            "t",
            TimerSpans {
                carried: None,
                plain: None,
            },
        );
        sim.run();
        let t = sim.component(id).as_timer_spans().unwrap();
        assert_eq!(t.carried, Some(Some(SpanId(1))));
        assert_eq!(t.plain, Some(None));
    }

    #[test]
    fn span_open_close_behaves_as_stack() {
        let mut sim = sim(1);
        sim.add_component("n", Nester);
        sim.run();
        assert_eq!(sim.spans().len(), 3);
        let marker = sim.spans().iter().find(|s| s.name == "marker").unwrap();
        assert_eq!(
            marker.parent,
            Some(sim.spans().iter().find(|s| s.name == "outer").unwrap().id)
        );
    }

    #[test]
    fn span_digest_is_deterministic_across_runs() {
        fn run() -> u64 {
            let mut sim = sim(7);
            let sink = sim.add_component("sink", SpanSink);
            let relay = sim.add_component("relay", SpanRelay { next: sink });
            let _src = sim.add_component("src", SpanSource { next: relay });
            sim.run();
            sim.span_digest()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn halt_stops_run() {
        let mut sim = sim(1);
        sim.add_component("h", Halter);
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    fn classify(_m: &TestMsg) -> &'static str {
        "Ping"
    }

    #[test]
    fn observers_do_not_perturb_the_event_digest() {
        fn run(observed: bool) -> (u64, u64) {
            let mut sim = sim(9);
            if observed {
                sim.set_msg_classifier(classify);
                sim.enable_profiler();
                sim.enable_flight_recorder(16);
            }
            let echo = sim.add_component(
                "echo",
                Echo {
                    bounces: 5,
                    seen: 0,
                },
            );
            sim.add_component("kick", Kickoff { peer: echo });
            sim.run();
            (sim.digest(), sim.events_executed())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiler_attributes_events_to_kind_and_variant() {
        let mut sim = sim(3);
        sim.set_msg_classifier(classify);
        sim.enable_profiler();
        let echo = sim.add_component(
            "echo1",
            Echo {
                bounces: 2,
                seen: 0,
            },
        );
        sim.add_component("echo2", Kickoff { peer: echo });
        sim.run();
        let folded = sim.profile_folded();
        // Both components share the digit-stripped kind "echo"; starts
        // and delivers are separate buckets.
        assert!(folded.contains("echo;Ping "), "folded:\n{folded}");
        assert!(folded.contains("echo;start 2\n"), "folded:\n{folded}");
        let rows = sim.profile_rows();
        let total: u64 = rows.iter().map(|r| r.events).sum();
        assert_eq!(total, sim.events_executed());
        // Deterministic bytes for the deterministic columns.
        assert_eq!(folded, sim.profile_folded());
    }

    #[test]
    fn flight_recorder_keeps_recent_events_with_variants() {
        let mut sim = sim(4);
        sim.set_msg_classifier(classify);
        sim.enable_flight_recorder(4);
        let echo = sim.add_component(
            "echo",
            Echo {
                bounces: 6,
                seen: 0,
            },
        );
        sim.add_component("kick", Kickoff { peer: echo });
        sim.run();
        let fr = sim.flight_recorder().unwrap();
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.recorded(), sim.events_executed());
        let evs = fr.events();
        assert_eq!(evs.len(), 4);
        assert!(evs
            .windows(2)
            .all(|w| (w[0].time_us, w[0].seq) < (w[1].time_us, w[1].seq)));
        assert!(evs
            .iter()
            .all(|e| e.kind == "deliver" && e.variant == "Ping"));
    }

    #[test]
    fn dead_letters_carry_msg_variant_when_classified() {
        let mut sim = sim(5);
        sim.set_msg_classifier(classify);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.post(SimTime::from_secs(2), id, TestMsg::Ping);
        sim.run();
        let labels = label("reason", "crashed").with("msg", "Ping");
        assert_eq!(sim.metrics().counter_with("dead_letters", &labels), 1);
        assert_eq!(sim.dead_letters(), 1);
    }

    #[test]
    fn queue_depth_reports_pending_events() {
        let mut sim = sim(6);
        let id = sim.add_component(
            "t",
            TimerUser {
                fired: vec![],
                cancel_second: false,
            },
        );
        assert_eq!(sim.queue_depth(), 1, "the pending Start event");
        sim.post(SimTime::from_secs(10), id, TestMsg::Ping);
        assert_eq!(sim.queue_depth(), 2);
        sim.run();
        assert_eq!(sim.queue_depth(), 0);
    }

    // -- sharded execution ---------------------------------------------

    fn ssim(seed: u64, shards: usize, workers: usize) -> Engine<TestNode> {
        SimBuilder::new(seed)
            .shards(shards)
            .workers(workers)
            .build()
    }

    /// Cross-shard ping-pong mesh: kickers and echoes deliberately land
    /// on different shards so every exchange crosses a shard boundary.
    fn build_mesh(sim: &mut Engine<TestNode>, shards: usize) {
        let mut echoes = Vec::new();
        for i in 0..shards.max(2) {
            echoes.push(sim.add_component_in_shard(
                "echo",
                Echo {
                    bounces: 5,
                    seen: 0,
                },
                i % shards,
            ));
        }
        for (i, &echo) in echoes.iter().enumerate() {
            sim.add_component_in_shard("kick", Kickoff { peer: echo }, (i + 1) % shards);
        }
    }

    #[test]
    fn sharded_digest_independent_of_worker_count() {
        let mut reference = None;
        for workers in [1usize, 2, 4, 8] {
            let mut sim = ssim(42, 4, workers);
            build_mesh(&mut sim, 4);
            sim.run();
            let got = (
                sim.digest(),
                sim.events_executed(),
                sim.now(),
                sim.metrics().counter("net.sent"),
                sim.metrics().counter("net.delivered"),
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "worker count {workers} changed observable behavior"
                ),
            }
        }
    }

    #[test]
    fn single_shard_matches_sharded_engine_structure() {
        // S=1 must follow the historical sequential path byte-for-byte;
        // S>1 is a different (but self-consistent) schedule.
        let mut seq = ssim(9, 1, 1);
        build_mesh(&mut seq, 1);
        seq.run();
        let mut again = ssim(9, 1, 4);
        build_mesh(&mut again, 1);
        again.run();
        assert_eq!(seq.digest(), again.digest());
        assert_eq!(seq.queue_kind(), QueueKind::Heap);
        assert_eq!(again.shard_count(), 1);
    }

    #[test]
    fn queue_kind_does_not_affect_digest() {
        let run = |kind: QueueKind| {
            let mut sim: Engine<TestNode> = SimBuilder::new(7).queue(kind).build();
            build_mesh(&mut sim, 1);
            sim.add_component(
                "t",
                TimerUser {
                    fired: vec![],
                    cancel_second: true,
                },
            );
            sim.run();
            (sim.digest(), sim.events_executed())
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Bucket));
    }

    #[test]
    fn shard_hint_routes_registration() {
        let mut sim = ssim(1, 4, 1);
        let a = sim.add_component("a", Hinted { shard: 2 });
        let b = sim.add_component("b", Hinted { shard: 7 });
        let c = sim.add_component(
            "c",
            Echo {
                bounces: 0,
                seen: 0,
            },
        );
        assert_eq!(sim.shard_of(a), Some(2));
        assert_eq!(
            sim.shard_of(b),
            Some(3),
            "hints wrap modulo the shard count"
        );
        assert_eq!(sim.shard_of(c), Some(0), "no hint lands on shard 0");
        assert!(sim.component(a).as_hinted().is_some());
        assert_eq!(sim.shard_count(), 4);
        assert_eq!(sim.worker_count(), 1);
        assert_eq!(sim.queue_kind(), QueueKind::Bucket);
    }

    #[test]
    fn sharded_multicast_and_metrics() {
        let mut sim = ssim(5, 4, 2);
        let g = sim.create_group();
        let m1 = sim.add_component_in_shard(
            "m1",
            Echo {
                bounces: 0,
                seen: 0,
            },
            1,
        );
        let m2 = sim.add_component_in_shard(
            "m2",
            Echo {
                bounces: 0,
                seen: 0,
            },
            2,
        );
        sim.join_group(g, m1);
        sim.join_group(g, m2);
        sim.add_component_in_shard("caster", Caster { group: g }, 3);
        sim.run();
        assert_eq!(sim.metrics().counter("net.sent"), 2);
        assert_eq!(sim.metrics().counter("net.delivered"), 2);
        assert_eq!(sim.component(m1).as_echo().unwrap().seen, 1);
        assert_eq!(sim.component(m2).as_echo().unwrap().seen, 1);
    }

    #[test]
    fn sharded_dead_letters_and_crash_lifecycle() {
        let mut sim: Engine<TestNode> = SimBuilder::new(11)
            .shards(2)
            .workers(2)
            .trace_capacity(16)
            .build();
        let probe = sim.add_component_in_shard(
            "probe",
            RestartProbe {
                restarts: 0,
                crashes: 0,
            },
            1,
        );
        let timers = sim.add_component_in_shard(
            "timers",
            TimerUser {
                fired: vec![],
                cancel_second: true,
            },
            0,
        );
        sim.schedule_crash(SimTime(500_000), probe);
        sim.post(SimTime::from_secs(1), probe, TestMsg::Ping);
        sim.schedule_restart(SimTime(1_500_000), probe);
        sim.run();
        let p = sim.component(probe).as_restart_probe().unwrap();
        assert_eq!(p.crashes, 1);
        assert_eq!(p.restarts, 1);
        let t = sim.component(timers).as_timer_user().unwrap();
        assert_eq!(t.fired, vec![1, 3], "cancelled timer must not fire");
        assert_eq!(sim.metrics().counter("net.to_dead"), 1);
        assert_eq!(sim.dead_letters(), 1);
        assert_eq!(sim.metrics().counter("failure.crashes"), 1);
        assert_eq!(sim.metrics().counter("failure.restarts"), 1);
        assert_eq!(
            sim.trace().total_recorded(),
            1,
            "the crash must surface in the replayed trace"
        );
    }

    #[test]
    fn sharded_spans_cross_shard_parentage() {
        let mut sim = ssim(3, 3, 3);
        let sink = sim.add_component_in_shard("sink", SpanSink, 2);
        let relay = sim.add_component_in_shard("relay", SpanRelay { next: sink }, 1);
        sim.add_component_in_shard("source", SpanSource { next: relay }, 0);
        sim.run();
        let spans = sim.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "op.root").unwrap();
        let leaf = spans.iter().find(|s| s.name == "op.leaf").unwrap();
        assert_eq!(
            leaf.parent,
            Some(root.id),
            "span context must survive two shard hops"
        );
        assert!(
            root.id.0 >= 1 << 40,
            "sharded span ids live in the shard namespace"
        );
        assert_eq!(root.label("kind"), Some("test"));
    }

    #[test]
    fn sharded_observers_do_not_perturb_digest() {
        let bare = {
            let mut sim = ssim(21, 4, 4);
            build_mesh(&mut sim, 4);
            sim.run();
            sim.digest()
        };
        let mut sim: Engine<TestNode> = SimBuilder::new(21)
            .shards(4)
            .workers(4)
            .trace_capacity(64)
            .build();
        sim.enable_profiler();
        sim.enable_flight_recorder(32);
        build_mesh(&mut sim, 4);
        sim.run();
        assert_eq!(sim.digest(), bare);
        assert!(!sim.profile_rows().is_empty());
        assert!(sim.flight_recorder().unwrap().recorded() > 0);
    }

    #[test]
    fn sharded_halt_and_run_until() {
        let mut sim = ssim(13, 2, 2);
        sim.add_component_in_shard("halter", Halter, 0);
        sim.add_component_in_shard("loopy", Loopy, 1);
        sim.run();
        assert!(sim.now() >= SimTime::from_secs(1));
        assert!(
            sim.now() < SimTime::from_secs(100),
            "halt must stop the run"
        );

        let mut sim = ssim(13, 2, 2);
        sim.add_component_in_shard("loopy", Loopy, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert!(sim.events_executed() > 100);
    }

    #[test]
    fn sharded_net_fault_fires_at_commit() {
        let mut sim = ssim(17, 2, 2);
        let echo = sim.add_component_in_shard(
            "echo",
            Echo {
                bounces: 9,
                seen: 0,
            },
            0,
        );
        sim.add_component_in_shard("kick", Kickoff { peer: echo }, 1);
        sim.schedule_net_fault(SimTime(50), NetFault::SetLossPpm(1_000_000));
        sim.run();
        assert_eq!(sim.metrics().counter("failure.net"), 1);
        assert!(
            sim.metrics().counter("net.dropped") > 0,
            "full loss after the fault must drop the remaining traffic"
        );
    }

    // -- model checking over sharded queues ----------------------------

    /// Minimal cloneable component for snapshot/restore tests.
    #[derive(Clone)]
    struct McPing {
        peer: Option<ComponentId>,
        count: u32,
        timers: u32,
    }
    impl Component for McPing {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            if let Some(p) = self.peer {
                ctx.send(p, TestMsg::Ping);
            }
            ctx.set_timer(SimSpan::from_secs(1), 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, src: ComponentId, _: TestMsg) {
            self.count += 1;
            if self.count < 6 && src != ComponentId::EXTERNAL {
                ctx.send(src, TestMsg::Ping);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _tag: u64) {
            // Bounded re-arming so every run drains even if the peer dies.
            self.timers += 1;
            if self.timers < 3 {
                ctx.set_timer(SimSpan::from_secs(1), 0);
            }
        }
    }
    impl crate::mc::McState for McPing {
        fn mc_fold(&self, h: &mut crate::mc::McHasher) {
            h.word(self.count as u64);
        }
    }
    impl crate::mc::McState for TestMsg {
        fn mc_fold(&self, h: &mut crate::mc::McHasher) {
            h.word(match self {
                TestMsg::Ping => 1,
            });
        }
    }

    #[test]
    fn mc_snapshot_restore_roundtrip_over_sharded_queues() {
        let mut sim: Engine<McPing> = SimBuilder::new(31).shards(2).build();
        let b = sim.add_component_in_shard(
            "b",
            McPing {
                peer: None,
                count: 0,
                timers: 0,
            },
            1,
        );
        sim.add_component_in_shard(
            "a",
            McPing {
                peer: Some(b),
                count: 0,
                timers: 0,
            },
            0,
        );
        // Advance a couple of windows so both shard queues hold live
        // cross-shard traffic, then capture.
        sim.step();
        sim.step();
        let pending = sim.mc_pending();
        assert!(!pending.is_empty());
        assert!(
            pending.iter().all(|p| p.seq >= 1 << 48),
            "sharded pending seqs carry the shard namespace"
        );
        let snap = sim.mc_snapshot();
        let fp = sim.mc_fingerprint();
        sim.run();
        let end = (sim.digest(), sim.events_executed(), sim.now());

        sim.mc_restore(&snap);
        assert_eq!(sim.mc_fingerprint(), fp, "restore must reproduce the state");
        assert!(!sim.mc_drop_pending(u64::MAX), "bogus seq is rejected");
        sim.run();
        assert_eq!(
            (sim.digest(), sim.events_executed(), sim.now()),
            end,
            "a restored run must replay identically"
        );
    }

    #[test]
    fn mc_perturbation_on_sharded_queues() {
        let mut sim: Engine<McPing> = SimBuilder::new(33).shards(2).build();
        let b = sim.add_component_in_shard(
            "b",
            McPing {
                peer: None,
                count: 0,
                timers: 0,
            },
            1,
        );
        let a = sim.add_component_in_shard(
            "a",
            McPing {
                peer: Some(b),
                count: 0,
                timers: 0,
            },
            0,
        );
        sim.step();
        // Execute a pending event out of order, drop another, then let a
        // crash/restart pair run — the monotonic-seq audit must hold.
        let pending = sim.mc_pending();
        assert!(sim.mc_execute_pending(pending[pending.len() - 1].seq));
        if let Some(p) = sim.mc_pending().first() {
            assert!(sim.mc_drop_pending(p.seq));
        }
        sim.mc_inject_crash(a);
        sim.mc_inject_restart(a);
        sim.mc_gc();
        sim.mc_release();
        sim.run();
        assert!(sim.metrics().counter("mc.dropped") >= 1);
        assert_eq!(sim.metrics().counter("failure.crashes"), 1);
    }
}
