//! Windowed executor for sharded engines.
//!
//! A sharded [`Engine`](crate::engine::Engine) advances in *conservative
//! lookahead windows*. Each window:
//!
//! 1. finds `t0`, the earliest pending event across every shard queue and
//!    the scheduled network faults;
//! 2. sets the horizon to `min(t0 + lookahead, deadline, first net fault)`,
//!    where `lookahead` is the minimum cross-component network latency
//!    fixed at build time — no cross-shard message sent at or after `t0`
//!    can arrive before `t0 + lookahead`, so events up to the horizon are
//!    causally independent across shards;
//! 3. lets every shard execute its own events up to the horizon —
//!    inline, or on worker threads when the window is big enough to pay
//!    for dispatch (the choice is invisible: per-shard work is isolated
//!    either way);
//! 4. commits the window in deterministic shard-major order: digest
//!    records, due network faults, liveness and group changes,
//!    cross-shard outboxes (which draw destination-shard seqs here, not
//!    on the worker), halt flags and flight-recorder events.
//!
//! Worker count never appears in any of those steps, which is why the
//! audited digest of an `N`-worker run is byte-identical to the same
//! engine run with one worker.

use snooze_telemetry::label::label;
use snooze_telemetry::span::SpanId;

use crate::engine::{
    event_words, Component, ComponentId, Ctx, Engine, EngineCore, EventKind, ExecRec, NetFault,
    Scheduled, ShardCtx, ShardState, SharedView,
};
use crate::flight::FlightEvent;
use crate::time::SimTime;

/// Estimated events per window below which thread dispatch costs more
/// than it saves; such windows run inline on the calling thread. The
/// choice never affects the digest — only wall-clock time.
pub(crate) const DISPATCH_THRESHOLD: u64 = 96;

/// Execute one lookahead window up to `deadline`. Returns `false` when
/// nothing at or before `deadline` is pending, the engine halted, or the
/// event budget ran out — i.e. when the caller's loop should stop.
pub(crate) fn step_window<C: Component>(engine: &mut Engine<C>, deadline: SimTime) -> bool {
    if engine.core.halted || engine.core.events_executed >= engine.max_events {
        return false;
    }
    engine.started = true;

    // The global minimum pending time, across shard queues and faults.
    let mut t0 = engine.core.net_events.first().map(|&(t, _, _)| t);
    for sh in engine.core.shards.iter_mut() {
        if let Some((t, _)) = sh.queue.peek_key() {
            t0 = Some(match t0 {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        }
    }
    let Some(t0) = t0 else { return false };
    if t0 > deadline {
        return false;
    }

    // Conservative horizon: events up to here are safe to execute
    // without seeing this window's cross-shard traffic. Network faults
    // mutate global state, so the horizon never extends past the first.
    let mut horizon = SimTime(t0.0.saturating_add(engine.core.lookahead.0)).min(deadline);
    if let Some(&(t, _, _)) = engine.core.net_events.first() {
        horizon = horizon.min(t);
    }

    // Count (approximately, capped) how much work the window holds to
    // decide whether thread dispatch is worth it.
    let mut est = 0u64;
    for sh in engine.core.shards.iter_mut() {
        est += sh
            .queue
            .approx_events_before(horizon, DISPATCH_THRESHOLD as usize) as u64;
        if est >= DISPATCH_THRESHOLD {
            break;
        }
    }
    let use_pool = engine.core.workers > 1 && est >= DISPATCH_THRESHOLD;

    {
        let Engine {
            core, components, ..
        } = engine;
        let EngineCore {
            shards,
            shard_of,
            local_of,
            network,
            names,
            alive,
            incarnation,
            classifier,
            flight,
            ..
        } = &mut *core;
        let shared = SharedView {
            network: &*network,
            names: names.as_slice(),
            alive: alive.as_slice(),
            incarnation: incarnation.as_slice(),
            shard_of: shard_of.as_slice(),
            local_of: local_of.as_slice(),
            n_components: names.len(),
            classifier: *classifier,
            flight_on: flight.is_some(),
        };
        if use_pool {
            rayon::scope(|s| {
                for (i, (st, comps)) in shards.iter_mut().zip(components.iter_mut()).enumerate() {
                    s.spawn(move |_| run_shard(i, st, comps, shared, horizon));
                }
            });
        } else {
            for (i, (st, comps)) in shards.iter_mut().zip(components.iter_mut()).enumerate() {
                run_shard(i, st, comps, shared, horizon);
            }
        }
    }

    commit(engine, horizon)
}

/// Drain one shard's queue up to (and including) the horizon. Touches
/// only the shard's own state plus the frozen shared view — this is the
/// function that runs concurrently.
fn run_shard<C: Component>(
    shard: usize,
    st: &mut ShardState<C::Msg>,
    comps: &mut [Option<C>],
    shared: SharedView<'_, C::Msg>,
    horizon: SimTime,
) {
    loop {
        match st.queue.peek_key() {
            Some((t, _)) if t <= horizon => {}
            _ => break,
        }
        let ev = st.queue.pop().expect("peeked event vanished");
        execute_shard_event(shard, st, comps, shared, ev);
    }
}

/// Liveness of `id` as seen by this shard: the window's own overlay if
/// this shard crashed/restarted it, else the frozen pre-window state.
fn live_of<M>(st: &ShardState<M>, shared: SharedView<'_, M>, id: ComponentId) -> (bool, u32) {
    match st.scratch.live.get(&id.0) {
        Some(&(alive, inc)) => (alive, inc),
        None => (
            shared.alive.get(id.0).copied().unwrap_or(false),
            shared.incarnation.get(id.0).copied().unwrap_or(0),
        ),
    }
}

/// Feed one executed event to this shard's observer buffers. Mirrors the
/// sequential engine's `observe_event`; pure observation, never folded.
fn observe<M>(st: &mut ShardState<M>, shared: SharedView<'_, M>, ev: &Scheduled<M>) {
    if st.scratch.profiler.is_none() && !shared.flight_on {
        return;
    }
    let (kind, comp, a, b): (&'static str, Option<usize>, u64, u64) = match &ev.kind {
        EventKind::Start(id) => ("start", Some(id.0), id.0 as u64, 0),
        EventKind::Deliver { src, dst, .. } => ("deliver", Some(dst.0), src.0 as u64, dst.0 as u64),
        EventKind::Timer { dst, tag, .. } => ("timer", Some(dst.0), dst.0 as u64, *tag),
        EventKind::Crash(id) => ("crash", Some(id.0), id.0 as u64, 0),
        EventKind::Restart(id) => ("restart", Some(id.0), id.0 as u64, 0),
        EventKind::Net(_) => ("net", None, 0, 0),
    };
    let variant = match (&ev.kind, shared.classifier) {
        (EventKind::Deliver { msg, .. }, Some(classify)) => classify(msg),
        _ => kind,
    };
    if let Some(p) = st.scratch.profiler.as_mut() {
        let k = p.kind_index(comp, shared.names);
        p.begin_event(k, variant);
    }
    if shared.flight_on {
        st.scratch.flight.push(FlightEvent {
            time_us: ev.time.0,
            seq: ev.seq,
            kind,
            a,
            b,
            variant,
        });
    }
}

/// Execute one event inside a shard, buffering every side effect that
/// touches shared state into the shard's scratch.
fn execute_shard_event<C: Component>(
    shard: usize,
    st: &mut ShardState<C::Msg>,
    comps: &mut [Option<C>],
    shared: SharedView<'_, C::Msg>,
    ev: Scheduled<C::Msg>,
) {
    crate::audit_invariant!(
        "engine",
        "shard-monotonic",
        st.scratch
            .last_executed
            .is_none_or(|last| (ev.time, ev.seq) > last),
        "shard event (t={:?}, seq={}) not after last executed {:?}",
        ev.time,
        ev.seq,
        st.scratch.last_executed
    );
    st.scratch.last_executed = Some((ev.time, ev.seq));
    let (disc, a, b) = event_words(&ev.kind);
    st.scratch.recs.push(ExecRec {
        time: ev.time,
        seq: ev.seq,
        disc,
        a,
        b,
    });
    st.scratch.events += 1;
    observe(st, shared, &ev);
    let now = ev.time;
    match ev.kind {
        EventKind::Start(id) => {
            with_comp(shard, st, comps, shared, now, id, None, |comp, ctx| {
                comp.on_start(ctx)
            });
        }
        EventKind::Deliver {
            src,
            dst,
            msg,
            span,
        } => {
            if live_of(st, shared, dst).0 {
                st.scratch.fast.delivered += 1;
                with_comp(shard, st, comps, shared, now, dst, span, |comp, ctx| {
                    comp.on_message(ctx, src, msg)
                });
            } else {
                st.scratch.fast.to_dead += 1;
                let reason = if dst.0 < shared.n_components {
                    "crashed"
                } else {
                    "unknown_dst"
                };
                let mut labels = label("reason", reason);
                if let Some(classify) = shared.classifier {
                    labels.insert("msg", classify(&msg));
                }
                st.scratch.metrics.incr_with("dead_letters", &labels);
            }
        }
        EventKind::Timer {
            dst,
            tag,
            incarnation,
            id,
            span,
        } => {
            let (alive, inc) = live_of(st, shared, dst);
            let stale = st.cancelled_timers.remove(&id) || inc != incarnation || !alive;
            if !stale {
                with_comp(shard, st, comps, shared, now, dst, span, |comp, ctx| {
                    comp.on_timer(ctx, tag)
                });
            }
        }
        EventKind::Crash(id) => {
            let (alive, inc) = live_of(st, shared, id);
            if alive {
                st.scratch.live.insert(id.0, (false, inc + 1));
                st.scratch.fast.crashes += 1;
                if let Some(&local) = shared.local_of.get(id.0) {
                    if let Some(comp) = comps.get_mut(local as usize).and_then(|s| s.as_mut()) {
                        comp.on_crash(now);
                    }
                }
                let name = shared.names.get(id.0).cloned().unwrap_or_default();
                st.scratch.trace.push((now, id, "crash", name));
            }
        }
        EventKind::Restart(id) => {
            let (alive, inc) = live_of(st, shared, id);
            if !alive {
                st.scratch.live.insert(id.0, (true, inc));
                st.scratch.fast.restarts += 1;
                with_comp(shard, st, comps, shared, now, id, None, |comp, ctx| {
                    comp.on_restart(ctx)
                });
            }
        }
        EventKind::Net(_) => {
            unreachable!("network faults never enter shard queues")
        }
    }
}

/// Borrow the component behind `id` out of this shard and invoke `f`
/// with a windowed [`Ctx`]. Events in a shard's queue only ever target
/// that shard's own components, so `local_of` indexes `comps` directly.
#[allow(clippy::too_many_arguments)]
fn with_comp<C: Component, F: FnOnce(&mut C, &mut Ctx<'_, C::Msg>)>(
    shard: usize,
    st: &mut ShardState<C::Msg>,
    comps: &mut [Option<C>],
    shared: SharedView<'_, C::Msg>,
    now: SimTime,
    id: ComponentId,
    span: Option<SpanId>,
    f: F,
) {
    let Some(&local) = shared.local_of.get(id.0) else {
        return;
    };
    let Some(slot) = comps.get_mut(local as usize) else {
        return;
    };
    let Some(mut comp) = slot.take() else {
        return; // unknown or re-entrant — drop the event
    };
    st.scratch.ctx_span = span;
    {
        let mut ctx = Ctx::for_shard(
            ShardCtx {
                shard,
                now,
                state: st,
                shared,
            },
            id,
        );
        f(&mut comp, &mut ctx);
    }
    // Context hygiene: ambient span context never leaks across events.
    st.scratch.ctx_span = None;
    comps[local as usize] = Some(comp);
}

/// Commit a finished window into the shared engine state. Every loop
/// below walks the shards in index order and drains buffers that were
/// filled in per-shard execution order, so the merged effect is a pure
/// function of the window's contents — never of worker scheduling.
fn commit<C: Component>(engine: &mut Engine<C>, horizon: SimTime) -> bool {
    let mut total = 0u64;

    // 1. Fold the executed-event records into the run digest,
    // shard-major.
    for s in 0..engine.core.shards.len() {
        let recs = std::mem::take(&mut engine.core.shards[s].scratch.recs);
        for r in &recs {
            engine.core.fold_exec(r.time, r.seq, r.disc, r.a, r.b);
        }
        total += std::mem::take(&mut engine.core.shards[s].scratch.events);
    }

    // 2. Network faults due at the horizon run now, on the engine
    // thread — they mutate global network state, which is exactly why
    // the horizon never extends past the first of them.
    let mut net_flights: Vec<FlightEvent> = Vec::new();
    let n_due = engine
        .core
        .net_events
        .partition_point(|&(t, _, _)| t <= horizon);
    let due: Vec<(SimTime, u64, NetFault)> = engine.core.net_events.drain(..n_due).collect();
    for (t, seq, fault) in due {
        let kind = EventKind::<C::Msg>::Net(fault);
        let (disc, a, b) = event_words(&kind);
        engine.core.fold_exec(t, seq, disc, a, b);
        total += 1;
        engine.core.metrics.incr("failure.net");
        {
            let EngineCore {
                profiler, names, ..
            } = &mut engine.core;
            if let Some(p) = profiler.as_mut() {
                let k = p.kind_index(None, names);
                p.begin_event(k, "net");
            }
        }
        if engine.core.flight.is_some() {
            net_flights.push(FlightEvent {
                time_us: t.0,
                seq,
                kind: "net",
                a,
                b,
                variant: "net",
            });
        }
        match fault {
            NetFault::Isolate(id) => engine.core.network.isolate(id),
            NetFault::Reconnect(id) => engine.core.network.reconnect(id),
            NetFault::SetLossPpm(ppm) => engine.core.network.set_loss_rate(ppm as f64 / 1e6),
        }
    }

    // 3. Liveness overlays and multicast membership deltas, shard-major.
    for s in 0..engine.core.shards.len() {
        let live = std::mem::take(&mut engine.core.shards[s].scratch.live);
        for (idx, (alive, inc)) in live {
            engine.core.alive[idx] = alive;
            engine.core.incarnation[idx] = inc;
        }
        let groups = std::mem::take(&mut engine.core.shards[s].scratch.groups);
        for (g, id, joined) in groups {
            if joined {
                engine.core.network.join_group(g, id);
            } else {
                engine.core.network.leave_group(g, id);
            }
        }
    }

    // 4. Cross-shard outboxes: destination-shard seqs are assigned here,
    // in shard-major source order, so they are identical for every
    // worker count. The lookahead horizon guarantees each arrival lands
    // at or beyond every shard's horizon, i.e. in a later window.
    {
        let EngineCore { shards, .. } = &mut engine.core;
        for s in 0..shards.len() {
            let outbox = std::mem::take(&mut shards[s].scratch.outbox);
            for (dshard, time, kind) in outbox {
                debug_assert!(time >= horizon, "cross-shard arrival inside the window");
                let dst = &mut shards[dshard as usize];
                let seq = dst.seq;
                dst.seq += 1;
                dst.queue.push(Scheduled { time, seq, kind });
            }
        }
    }

    // 5. Halt flags.
    for s in 0..engine.core.shards.len() {
        if std::mem::take(&mut engine.core.shards[s].scratch.halt) {
            engine.core.halted = true;
        }
    }

    // 6. Flight-recorder merge: shard buffers plus the window's network
    // faults, stably sorted by time (same-time events keep shard-major
    // order), then pushed through the bounded ring.
    if engine.core.flight.is_some() {
        let mut batch: Vec<FlightEvent> = Vec::new();
        for s in 0..engine.core.shards.len() {
            batch.append(&mut engine.core.shards[s].scratch.flight);
        }
        batch.append(&mut net_flights);
        batch.sort_by_key(|e| e.time_us);
        if let Some(fr) = engine.core.flight.as_mut() {
            for e in batch {
                fr.record(e);
            }
        }
    }

    // 7. Advance the shared clock to the horizon.
    engine.core.events_executed += total;
    if horizon > engine.core.now {
        engine.core.now = horizon;
    }
    total > 0
}
