//! Virtual time.
//!
//! Simulation time is a monotonically non-decreasing counter of
//! **microseconds** since the start of the run. Microsecond resolution is
//! fine-grained enough to model LAN latencies (tens to hundreds of µs) while
//! keeping all arithmetic exact in `u64` — no floating-point drift, which
//! matters for run-to-run determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span elapsed since `earlier`. Saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// Build an instant from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);
    /// The largest representable span; used as "forever".
    pub const MAX: SimSpan = SimSpan(u64::MAX);

    /// Build a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimSpan {
        SimSpan(s * 1_000_000)
    }

    /// Build a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimSpan {
        SimSpan(ms * 1_000)
    }

    /// Build a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimSpan {
        SimSpan(us)
    }

    /// Build a span from fractional seconds, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimSpan {
        assert!(
            s.is_finite() && s >= 0.0,
            "span must be finite and >= 0, got {s}"
        );
        SimSpan((s * 1e6).round() as u64)
    }

    /// Whole microseconds in this span.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by a float factor, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimSpan {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and >= 0"
        );
        SimSpan((self.0 as f64 * factor).round() as u64)
    }

    /// True if this span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimSpan::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimSpan::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimSpan::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs(5).as_micros(), 5_000_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimSpan::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimSpan::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimSpan::from_secs_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let s = SimSpan::from_secs(3);
        assert_eq!((t + s).as_micros(), 13_000_000);
        assert_eq!((t - s).as_micros(), 7_000_000);
        assert_eq!((t + s) - t, s);
        // Saturation at zero.
        assert_eq!(SimTime::ZERO - s, SimTime::ZERO);
        assert_eq!(SimTime::ZERO.since(t), SimSpan::ZERO);
    }

    #[test]
    fn span_arithmetic_saturates() {
        assert_eq!(SimSpan::MAX + SimSpan::from_secs(1), SimSpan::MAX);
        assert_eq!(SimSpan::ZERO - SimSpan::from_secs(1), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs(4) / 2, SimSpan::from_secs(2));
        assert_eq!(SimSpan::from_secs(4) * 2, SimSpan::from_secs(8));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimSpan::from_micros(3).mul_f64(0.5).as_micros(), 2); // 1.5 rounds to 2
        assert_eq!(
            SimSpan::from_secs(1).mul_f64(2.5),
            SimSpan::from_millis(2500)
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(format!("{}", SimSpan::from_micros(500)), "500µs");
        assert_eq!(format!("{}", SimSpan::from_millis(2)), "2.00ms");
        assert_eq!(format!("{}", SimSpan::from_secs(2)), "2.000s");
    }
}
