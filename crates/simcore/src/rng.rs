//! Deterministic, stream-splittable randomness.
//!
//! Every source of randomness in a simulation must flow from a single master
//! seed, otherwise runs are not replayable and experiments are not
//! comparable. [`SimRng`] wraps a ChaCha8 generator (fast, high-quality,
//! portable across platforms — unlike `SmallRng` whose algorithm may change
//! between `rand` releases) and adds the distribution helpers the cluster
//! and workload models need.
//!
//! Streams are split with [`SimRng::fork`], which derives a child generator
//! keyed by a label so that, e.g., adding one more VM's workload generator
//! does not perturb the arrival process of every other VM.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::SimSpan;

/// Seedable deterministic RNG with simulation-oriented helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream keyed by `label`.
    ///
    /// Forking is stable: the same parent seed and label always produce the
    /// same child stream, and consuming values from one child does not
    /// affect siblings.
    pub fn fork(&self, label: u64) -> SimRng {
        // Mix the parent's word stream position-independently: hash the
        // parent seed material with the label via splitmix64 finalization.
        let mut seed = self.inner.get_seed();
        let mut x = label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in seed.chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            for (b, s) in x.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *s ^= *b;
            }
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`. Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "integer range empty: [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean (`mean > 0`).
    ///
    /// Used for inter-arrival times of VM submissions and failure events.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be > 0");
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller transform).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be >= 0");
        let u1 = 1.0 - self.f64(); // avoid ln(0)
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Normal value clamped to `[lo, hi]` (truncated by clamping, which is
    /// adequate for utilization noise where tails are meaningless).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Pareto-distributed value with scale `x_m > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed VM lifetimes and burst sizes follow this in the
    /// workload generators.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(x_m > 0.0 && alpha > 0.0, "pareto parameters must be > 0");
        let u = 1.0 - self.f64(); // in (0, 1]
        x_m / u.powf(1.0 / alpha)
    }

    /// Zipf-like rank in `[0, n)` with skew `s >= 0` (s = 0 is uniform).
    ///
    /// Computed by inverse-CDF over the normalized harmonic weights; O(n)
    /// per draw, fine for the sizes simulated here.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf needs n > 0");
        assert!(s >= 0.0, "zipf skew must be >= 0");
        if n == 1 {
            return 0;
        }
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.f64() * norm;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Exponentially distributed virtual-time span with the given mean.
    pub fn exp_span(&mut self, mean: SimSpan) -> SimSpan {
        SimSpan::from_secs_f64(self.exponential(mean.as_secs_f64().max(1e-9)))
    }

    /// Uniform virtual-time span in `[lo, hi)`.
    pub fn span_between(&mut self, lo: SimSpan, hi: SimSpan) -> SimSpan {
        if lo >= hi {
            return lo;
        }
        SimSpan(self.inner.gen_range(lo.0..hi.0))
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Sample an index from non-negative weights proportionally.
    ///
    /// Returns `None` if the weights are empty or sum to zero. This is the
    /// primitive the ACO consolidation algorithm's probabilistic decision
    /// rule is built on.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.f64() * total;
        let mut last_positive = None;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                last_positive = Some(i);
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        last_positive // floating-point slack: fall back to the last candidate
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = SimRng::new(99);
        let mut c1 = parent.fork(5);
        let mut c2 = parent.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent.fork(6);
        assert_ne!(parent.fork(5).next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.15,
            "sample mean {mean} too far from 4.0"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn pareto_lower_bound_holds() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            assert!(r.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = SimRng::new(19);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.zipf(10, 1.2)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate: {counts:?}"
        );
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let mut r = SimRng::new(23);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[r.zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!((1_600..2_400).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut r = SimRng::new(29);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[r.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.5..3.6).contains(&ratio), "ratio {ratio} not ~3");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut r = SimRng::new(31);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(37);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(41);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn span_between_handles_degenerate_range() {
        let mut r = SimRng::new(43);
        let lo = SimSpan::from_millis(5);
        assert_eq!(r.span_between(lo, lo), lo);
        for _ in 0..100 {
            let s = r.span_between(SimSpan::from_millis(1), SimSpan::from_millis(2));
            assert!(s >= SimSpan::from_millis(1) && s < SimSpan::from_millis(2));
        }
    }
}
