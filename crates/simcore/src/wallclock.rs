//! Advisory wall-clock measurement.
//!
//! Simulated history must never depend on the host's clock — the
//! determinism lint bans `Instant::now` on the whole simulation path.
//! But the harness still wants to *report* how long a run or an
//! algorithm phase took on the host (the "wall ms" columns, the ACO
//! phase profile). [`WallClock`] is the single sanctioned entry point
//! for that: a stopwatch whose readings are advisory — they may be
//! printed, but must never be folded into digests, exports, or any
//! decision the simulation makes.

/// An advisory stopwatch over the host's monotonic clock.
///
/// Readings are host-dependent by construction; callers must only use
/// them for human-facing reporting (and should label the columns so:
/// "wall ms", "advisory").
#[derive(Clone, Copy, Debug)]
pub struct WallClock(std::time::Instant);

impl WallClock {
    /// Start a stopwatch now.
    pub fn start() -> Self {
        // The one sanctioned wall-clock read on the simulation path.
        WallClock(std::time::Instant::now()) // audit-allow(wall-clock): the single advisory stopwatch entry point; readings are never folded into digests or exports
    }

    /// Milliseconds elapsed since [`WallClock::start`], as a float.
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Whole nanoseconds elapsed since [`WallClock::start`].
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }

    /// Nanoseconds since the last lap (or since `start`), and restart
    /// the stopwatch — a single clock read, so per-event profiling costs
    /// one `Instant::now` rather than two. Advisory like every reading.
    pub fn lap_nanos(&mut self) -> u64 {
        let now = std::time::Instant::now(); // audit-allow(wall-clock): same sanctioned stopwatch; lap readings are advisory-only
        let nanos = now.duration_since(self.0).as_nanos() as u64;
        self.0 = now;
        nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let w = WallClock::start();
        let a = w.elapsed_nanos();
        let b = w.elapsed_nanos();
        assert!(b >= a);
        assert!(w.elapsed_ms() >= 0.0);
    }
}
