//! Golden-file test for the Prometheus text exposition format.
//!
//! Builds a registry with every metric kind (labeled and unlabeled
//! counters, gauges, a histogram-backed summary) and compares
//! [`MetricsRegistry::to_prometheus`] byte-for-byte against the
//! checked-in golden file. Any change to name sanitisation, label
//! escaping, family ordering, or number formatting shows up as a diff
//! here — regenerate the golden deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p snooze-simcore --test prometheus_golden`.

use snooze_simcore::metrics::MetricsRegistry;
use snooze_simcore::telemetry::label::{label, LabelSet};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");

fn fixture() -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    // Counters: dotted names, label sorting, multi-label sets.
    m.add("net.sent", 42);
    m.incr_with("heartbeat_missed", &label("role", "gm"));
    m.add_with("heartbeat_missed", &label("role", "lc"), 3);
    m.incr_with(
        "power.commands",
        &LabelSet::EMPTY.with("kind", "wake").with("node", "lc-17"),
    );
    // Gauges, including an escaped label value.
    m.set_gauge("cluster.load", 0.625);
    m.set_gauge_with("vm.count", &label("state", "run\"ning"), 7.0);
    // Histogram → summary quantiles + _sum/_count.
    for v in [1.0, 2.0, 3.0, 4.0] {
        m.observe("submit.latency", v);
    }
    m
}

#[test]
fn exposition_matches_golden_file() {
    let text = fixture().to_prometheus();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &text).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file present");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom \
         (run with UPDATE_GOLDEN=1 to regenerate deliberately)"
    );
}

#[test]
fn exposition_is_parseable_line_shape() {
    // Every non-comment line is `name{labels} value` with a numeric value.
    for line in fixture().to_prometheus().lines() {
        if line.starts_with("# TYPE ") {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        value.parse::<f64>().expect("value is numeric");
    }
}
