//! Property-based tests of the discrete-event engine: time monotonicity,
//! per-pair FIFO delivery, timer semantics, and determinism under loss.

use proptest::prelude::*;

use snooze_simcore::prelude::*;

/// Records every message it receives with the receive time and a
/// sequence number the sender embedded.
struct Recorder {
    received: Vec<(SimTime, u64)>,
    last_seen_now: SimTime,
    time_went_backwards: bool,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            received: Vec::new(),
            last_seen_now: SimTime::ZERO,
            time_went_backwards: false,
        }
    }
}

impl Component for Recorder {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: ComponentId, seq: u64) {
        let now = ctx.now();
        if now < self.last_seen_now {
            self.time_went_backwards = true;
        }
        self.last_seen_now = now;
        self.received.push((now, seq));
    }
}

/// Sends `count` numbered messages to `target`, spaced by `gap_us`.
struct Sender {
    target: ComponentId,
    count: u64,
    gap_us: u64,
    sent: u64,
}

impl Component for Sender {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(SimSpan::from_micros(1), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: ComponentId, _: u64) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        if self.sent < self.count {
            let target = self.target;
            let seq = self.sent;
            ctx.send(target, seq);
            self.sent += 1;
            ctx.set_timer(SimSpan::from_micros(self.gap_us.max(1)), 0);
        }
    }
}

/// Sets one timer per configured delay and records the fire times.
struct TimerBank {
    delays: Vec<u64>,
    fired: Vec<(SimTime, u64)>,
}

impl Component for TimerBank {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for (i, &d) in self.delays.iter().enumerate() {
            ctx.set_timer(SimSpan::from_micros(d), i as u64);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: ComponentId, _: u64) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
        self.fired.push((ctx.now(), tag));
    }
}

/// Recorder variant that also emits a trace line per receipt, so the
/// trace digest witnesses payload content, not just event ordering.
struct TracingRecorder {
    received: u64,
}

impl Component for TracingRecorder {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: ComponentId, seq: u64) {
        self.received += 1;
        ctx.trace("gossip", format!("from={src:?} seq={seq}"));
    }
}

node_enum! {
    /// The property-test system: numbered-message senders and recorders.
    enum PropNode: u64 {
        Recorder(Recorder) as as_recorder,
        Sender(Sender) as as_sender,
        TimerBank(TimerBank) as as_timer_bank,
        TracingRecorder(TracingRecorder) as as_tracing_recorder,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Messages between one (src, dst) pair arrive in send order — the
    /// TCP-like FIFO contract — regardless of jittered latencies.
    #[test]
    fn per_pair_delivery_is_fifo(seed in any::<u64>(), count in 1u64..80, gap in 1u64..2000) {
        let mut sim: Engine<PropNode> =
            SimBuilder::new(seed).network(NetworkConfig::lan()).build();
        let rec = sim.add_component("rec", Recorder::new());
        let _snd = sim.add_component("snd", Sender { target: rec, count, gap_us: gap, sent: 0 });
        sim.run();
        let r = sim.component(rec).as_recorder().unwrap();
        prop_assert!(!r.time_went_backwards);
        prop_assert_eq!(r.received.len() as u64, count, "lossless network delivers all");
        let seqs: Vec<u64> = r.received.iter().map(|&(_, s)| s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&seqs, &sorted, "FIFO violated");
        // Arrival times are non-decreasing too.
        prop_assert!(r.received.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// Under loss, the set of delivered messages is a subsequence of what
    /// was sent, and the whole run replays identically from the seed.
    #[test]
    fn lossy_delivery_is_a_deterministic_subsequence(seed in any::<u64>(), loss in 0.0f64..0.9) {
        let run = |seed: u64| -> Vec<u64> {
            let mut sim: Engine<PropNode> =
                SimBuilder::new(seed).network(NetworkConfig::lossy_lan(loss)).build();
            let rec = sim.add_component("rec", Recorder::new());
            let _snd =
                sim.add_component("snd", Sender { target: rec, count: 50, gap_us: 100, sent: 0 });
            sim.run();
            sim.component(rec).as_recorder().unwrap().received.iter().map(|&(_, s)| s).collect()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b, "same seed, same drops");
        // Subsequence of 0..50 in order.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&a, &sorted);
        prop_assert!(a.iter().all(|&s| s < 50));
    }

    /// Timers fire at exactly now + delay, in delay order, and cancelled
    /// handles never fire.
    #[test]
    fn timer_semantics(delays in prop::collection::vec(0u64..10_000, 1..20)) {
        let mut sim: Engine<PropNode> = SimBuilder::new(1).build();
        let id = sim.add_component("t", TimerBank { delays: delays.clone(), fired: vec![] });
        sim.run();
        let t = sim.component(id).as_timer_bank().unwrap();
        prop_assert_eq!(t.fired.len(), delays.len());
        for &(at, tag) in &t.fired {
            prop_assert_eq!(at.as_micros(), delays[tag as usize]);
        }
        // Fire order is (time, set-order) — non-decreasing times.
        prop_assert!(t.fired.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

#[test]
fn messages_from_distinct_sources_may_interleave_but_time_is_monotone() {
    let mut sim: Engine<PropNode> = SimBuilder::new(9).network(NetworkConfig::lan()).build();
    let rec = sim.add_component("rec", Recorder::new());
    for i in 0..5 {
        sim.add_component(
            format!("snd{i}"),
            Sender {
                target: rec,
                count: 20,
                gap_us: 150,
                sent: 0,
            },
        );
    }
    sim.run();
    let r = sim.component(rec).as_recorder().unwrap();
    assert_eq!(r.received.len(), 100);
    assert!(!r.time_went_backwards);
    assert!(r.received.windows(2).all(|w| w[0].0 <= w[1].0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two engine runs built identically from a random seed and a random
    /// ring topology (size, stride, loss rate) must produce bit-identical
    /// event and trace digests — the foundation the `snooze-audit
    /// determinism` replay check rests on.
    #[test]
    fn replayed_runs_have_identical_digests(
        seed in any::<u64>(),
        n in 2usize..12,
        stride in 1usize..5,
        loss_bp in 0u32..1500,
    ) {
        let run = || {
            let loss = f64::from(loss_bp) / 10_000.0;
            let mut sim: Engine<PropNode> = SimBuilder::new(seed)
                .network(NetworkConfig::lossy_lan(loss))
                .build();
            let recorders: Vec<ComponentId> = (0..n)
                .map(|i| sim.add_component(format!("rec{i}"), TracingRecorder { received: 0 }))
                .collect();
            for (i, _) in recorders.iter().enumerate() {
                let target = recorders[(i + stride) % n];
                sim.add_component(
                    format!("snd{i}"),
                    Sender { target, count: 15, gap_us: 100 + (i as u64) * 13, sent: 0 },
                );
            }
            sim.run();
            let received: u64 = recorders
                .iter()
                .map(|&r| sim.component(r).as_tracing_recorder().unwrap().received)
                .sum();
            (sim.digest(), sim.trace().digest(), sim.events_executed(), received)
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first, second, "same seed + topology must replay bit-identically");
    }
}
