//! Property tests for the sharded executor: over random topologies,
//! the audited engine digest must be a function of (seed, topology,
//! shard count) only — never of the worker-thread count or the queue
//! implementation — and model-checker snapshot/restore must round-trip
//! the per-shard queues exactly.

use proptest::prelude::*;

use snooze_simcore::prelude::*;

/// A gossip node: on start it pings its successor peers, every received
/// message is forwarded with a decremented TTL to a peer chosen by the
/// TTL (deterministic, but irregular), and a bounded timer keeps
/// background traffic flowing. Peers are arbitrary, so random
/// topologies route freely across shard boundaries.
#[derive(Clone)]
struct Gossip {
    peers: Vec<ComponentId>,
    timers_left: u32,
    seen: u64,
}

impl Component for Gossip {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for (i, &p) in self.peers.iter().enumerate() {
            ctx.send(p, 3 + i as u64);
        }
        if self.timers_left > 0 {
            ctx.set_timer(SimSpan::from_micros(700), 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: ComponentId, ttl: u64) {
        self.seen += 1;
        if ttl > 0 && !self.peers.is_empty() {
            let next = self.peers[(ttl as usize) % self.peers.len()];
            ctx.send(next, ttl - 1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        if let Some(&first) = self.peers.first() {
            ctx.send(first, 2u64);
        }
        if self.timers_left > 0 {
            self.timers_left -= 1;
            ctx.set_timer(SimSpan::from_micros(900), 0);
        }
    }
}

impl McState for Gossip {
    fn mc_fold(&self, h: &mut McHasher) {
        h.word(self.peers.len() as u64);
        h.word(self.timers_left as u64);
        h.word(self.seen);
    }
}

/// Build one engine over a pseudo-random topology drawn from `seed`:
/// `n` gossip nodes, each wired to 1–3 peers, spread across `shards`
/// via explicit placement.
fn build(seed: u64, n: usize, shards: usize, workers: usize, queue: QueueKind) -> Engine<Gossip> {
    let mut sim: Engine<Gossip> = SimBuilder::new(seed)
        .network(NetworkConfig::lan())
        .shards(shards)
        .workers(workers)
        .queue(queue)
        .build();
    let mut rng = SimRng::new(seed ^ 0x70_90_10);
    for i in 0..n {
        let n_peers = 1 + rng.range(0, 3);
        let peers = (0..n_peers).map(|_| ComponentId(rng.range(0, n))).collect();
        sim.add_component_in_shard(
            format!("g{i}"),
            Gossip {
                peers,
                timers_left: 2 + rng.range(0, 3) as u32,
                seen: 0,
            },
            i % shards,
        );
    }
    sim
}

const HORIZON: SimTime = SimTime(80_000);

fn digest_of(seed: u64, n: usize, shards: usize, workers: usize, queue: QueueKind) -> (u64, u64) {
    let mut sim = build(seed, n, shards, workers, queue);
    sim.run_until(HORIZON);
    (sim.digest(), sim.events_executed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: 1, 2, 4 and 8 workers produce the same
    /// audited digest over the same sharded topology.
    #[test]
    fn digest_is_independent_of_worker_count(
        seed in any::<u64>(),
        n in 3usize..20,
        shards in 1usize..5,
    ) {
        let reference = digest_of(seed, n, shards, 1, QueueKind::Bucket);
        for workers in [2usize, 4, 8] {
            let got = digest_of(seed, n, shards, workers, QueueKind::Bucket);
            prop_assert_eq!(
                got, reference,
                "digest drifted at {} workers (seed {seed}, n {n}, shards {shards})",
                workers
            );
        }
    }

    /// The queue implementation is a pure data-structure swap: heap and
    /// bucket runs replay byte-identical histories.
    #[test]
    fn digest_is_independent_of_queue_impl(
        seed in any::<u64>(),
        n in 3usize..20,
        shards in 1usize..5,
    ) {
        let heap = digest_of(seed, n, shards, 1, QueueKind::Heap);
        let bucket = digest_of(seed, n, shards, 1, QueueKind::Bucket);
        prop_assert_eq!(heap, bucket);
    }

    /// Snapshot → run to the horizon → restore → run again: the second
    /// pass must replay the exact same history over the restored
    /// per-shard queues, and the restored state must fingerprint
    /// identically to the captured one.
    #[test]
    fn mc_snapshot_restore_round_trips_sharded_queues(
        seed in any::<u64>(),
        n in 3usize..16,
        shards in 1usize..4,
    ) {
        let mut sim = build(seed, n, shards, 1, QueueKind::Bucket);
        sim.run_until(SimTime(20_000));
        let snap = sim.mc_snapshot();
        let fp_before = sim.mc_fingerprint();

        sim.run_until(HORIZON);
        let first = (sim.digest(), sim.events_executed());

        sim.mc_restore(&snap);
        prop_assert_eq!(sim.mc_fingerprint(), fp_before, "restore changed the fingerprint");
        sim.run_until(HORIZON);
        let second = (sim.digest(), sim.events_executed());
        prop_assert_eq!(first, second, "restored run diverged (seed {seed}, shards {shards})");
    }
}

/// Scale past the executor's inline-dispatch threshold (windows with a
/// hundred-plus synchronized timer events) so the worker pool really
/// runs, then hold the digest to the single-worker reference.
#[test]
fn pool_dispatch_matches_inline_at_scale() {
    let reference = digest_of(11, 96, 4, 1, QueueKind::Bucket);
    assert!(reference.1 > 1_000, "scale test too small to mean anything");
    for workers in [2usize, 4, 8] {
        assert_eq!(
            digest_of(11, 96, 4, workers, QueueKind::Bucket),
            reference,
            "{workers} workers"
        );
    }
}

/// A plain `SimBuilder::new(seed)` engine (the pre-shard configuration)
/// and an explicit single-shard sharded build replay byte-identical
/// histories — the compatibility guarantee protecting every E4–E12
/// golden.
#[test]
fn single_shard_build_matches_the_classic_engine() {
    for seed in [1u64, 7, 0xE4] {
        let classic = {
            let mut sim: Engine<Gossip> =
                SimBuilder::new(seed).network(NetworkConfig::lan()).build();
            let mut rng = SimRng::new(seed ^ 0x70_90_10);
            for i in 0..12 {
                let n_peers = 1 + rng.range(0, 3);
                let peers = (0..n_peers)
                    .map(|_| ComponentId(rng.range(0, 12)))
                    .collect();
                sim.add_component(
                    format!("g{i}"),
                    Gossip {
                        peers,
                        timers_left: 2 + rng.range(0, 3) as u32,
                        seen: 0,
                    },
                );
            }
            sim.run_until(HORIZON);
            (sim.digest(), sim.events_executed())
        };
        let sharded = digest_of(seed, 12, 1, 1, QueueKind::Heap);
        assert_eq!(classic, sharded, "seed {seed}");
    }
}
