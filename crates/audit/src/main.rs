//! `snooze-audit` — the workspace determinism auditor.
//!
//! ```text
//! snooze-audit lint [--json] [--root DIR] [--allowlist FILE] [--include-allowed]
//! snooze-audit determinism [--json] [--seed N] [--nodes N] [--vms N] [--secs N]
//! snooze-audit rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use snooze_audit::determinism::{check, Scenario};
use snooze_audit::lint::{lint_root, rules, Allowlist};
use snooze_audit::report::{findings_json, findings_text, json_escape};

fn usage() -> &'static str {
    "snooze-audit: determinism lint + runtime invariant audit\n\
     \n\
     USAGE:\n\
     \x20 snooze-audit lint [--json] [--root DIR] [--allowlist FILE] [--include-allowed]\n\
     \x20     Scan workspace sources for determinism-hostile constructs.\n\
     \x20     Exit 1 if any finding is not allowlisted.\n\
     \x20 snooze-audit determinism [--json] [--seed N] [--nodes N] [--vms N] [--secs N]\n\
     \x20     Run a full-stack scenario twice with one seed and diff the\n\
     \x20     event/trace digests. Exit 1 on divergence.\n\
     \x20 snooze-audit rules\n\
     \x20     List the lint rules with their fix hints.\n"
}

/// Walk upward from the current directory to the workspace root (the
/// first ancestor holding a `Cargo.toml` with a `[workspace]` table).
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_lint(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json = take_flag(&mut args, "--json");
    let include_allowed = take_flag(&mut args, "--include-allowed");
    let root = take_value(&mut args, "--root")?
        .map(PathBuf::from)
        .unwrap_or_else(find_root);
    let allowlist_path = take_value(&mut args, "--allowlist")?
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("audit.allowlist"));
    if let Some(stray) = args.first() {
        return Err(format!("unknown lint argument: {stray}"));
    }

    let allowlist = Allowlist::load(&allowlist_path)?;
    let mut findings = lint_root(&root, &allowlist)?;
    // Stale-entry hygiene: computed against the full finding set, before
    // the allowed ones are filtered out of the report.
    for stale in allowlist.stale_entries(&findings) {
        eprintln!("snooze-audit lint: warning: stale allowlist entry `{stale}` matches no finding");
    }
    let active = findings.iter().filter(|f| !f.allowed).count();
    if !include_allowed {
        findings.retain(|f| !f.allowed);
    }
    if json {
        print!("{}", findings_json(&findings));
    } else {
        print!("{}", findings_text(&findings));
        if active == 0 {
            println!("snooze-audit lint: clean ({} rules)", rules().len());
        } else {
            println!("snooze-audit lint: {active} finding(s)");
        }
    }
    Ok(if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected an integer, got `{s}`"))
}

fn cmd_determinism(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json = take_flag(&mut args, "--json");
    let mut sc = Scenario::default();
    if let Some(v) = take_value(&mut args, "--seed")? {
        sc.seed = parse_u64(&v, "--seed")?;
    }
    if let Some(v) = take_value(&mut args, "--nodes")? {
        sc.nodes = parse_u64(&v, "--nodes")? as usize;
    }
    if let Some(v) = take_value(&mut args, "--vms")? {
        sc.vms = parse_u64(&v, "--vms")?;
    }
    if let Some(v) = take_value(&mut args, "--secs")? {
        sc.secs = parse_u64(&v, "--secs")?;
    }
    if let Some(stray) = args.first() {
        return Err(format!("unknown determinism argument: {stray}"));
    }

    let verdict = check(&sc);
    let identical = verdict.identical();
    if json {
        let diffs: Vec<String> = verdict
            .diverging_fields()
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        println!(
            "{{\"seed\": {}, \"nodes\": {}, \"vms\": {}, \"secs\": {}, \
             \"identical\": {}, \"event_digest\": \"{:#018x}\", \
             \"trace_digest\": \"{:#018x}\", \"events\": {}, \"diverging\": [{}]}}",
            sc.seed,
            sc.nodes,
            sc.vms,
            sc.secs,
            identical,
            verdict.first.event_digest,
            verdict.first.trace_digest,
            verdict.first.events,
            diffs.join(", "),
        );
    } else {
        println!(
            "run 1: events={} event_digest={:#018x} trace_digest={:#018x} placed={} energy={} Wh",
            verdict.first.events,
            verdict.first.event_digest,
            verdict.first.trace_digest,
            verdict.first.placed,
            verdict.first.energy,
        );
        println!(
            "run 2: events={} event_digest={:#018x} trace_digest={:#018x} placed={} energy={} Wh",
            verdict.second.events,
            verdict.second.event_digest,
            verdict.second.trace_digest,
            verdict.second.placed,
            verdict.second.energy,
        );
        if identical {
            println!(
                "snooze-audit determinism: identical (seed {}, {} nodes, {} VMs, {} s)",
                sc.seed, sc.nodes, sc.vms, sc.secs
            );
        } else {
            println!(
                "snooze-audit determinism: DIVERGED in {:?}",
                verdict.diverging_fields()
            );
        }
    }
    Ok(if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_rules() -> ExitCode {
    for r in rules() {
        println!("{:<20} {}", r.id, r.summary);
        println!("{:<20} fix: {}", "", r.hint);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", usage());
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "lint" => cmd_lint(args),
        "determinism" => cmd_determinism(args),
        "rules" => Ok(cmd_rules()),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand: {other}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("snooze-audit: {msg}");
            eprint!("{}", usage());
            ExitCode::from(2)
        }
    }
}
