//! Rendering lint findings for humans and machines.
//!
//! The JSON encoder is hand-rolled (the workspace builds offline, with
//! no serde); the schema is small and stable:
//!
//! ```json
//! {
//!   "findings": [
//!     {"rule": "...", "path": "...", "line": 3,
//!      "snippet": "...", "hint": "...", "allowed": false}
//!   ],
//!   "total": 1,
//!   "active": 1
//! }
//! ```

use crate::lint::Finding;

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Findings as the JSON document described in the module docs.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"hint\": \"{}\", \"allowed\": {}}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.snippet),
            json_escape(f.hint),
            f.allowed,
        ));
    }
    let active = findings.iter().filter(|f| !f.allowed).count();
    out.push_str(&format!(
        "\n  ],\n  \"total\": {},\n  \"active\": {}\n}}\n",
        findings.len(),
        active
    ));
    out
}

/// Findings as compiler-style text: `path:line: [rule] snippet` plus the
/// fix hint, with allowed findings marked when included.
pub fn findings_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let marker = if f.allowed { " (allowed)" } else { "" };
        out.push_str(&format!(
            "{}:{}: [{}]{} {}\n",
            f.path, f.line, f.rule, marker, f.snippet
        ));
        out.push_str(&format!("    fix: {}\n", f.hint));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "hash-iter",
            hint: "use a BTreeMap",
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            snippet: "for (k, v) in map.iter() { \"q\\\"\" }".into(),
            allowed: false,
        }
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_document_shape() {
        let doc = findings_json(&[finding()]);
        assert!(doc.contains("\"rule\": \"hash-iter\""));
        assert!(doc.contains("\"line\": 7"));
        assert!(doc.contains("\"total\": 1"));
        assert!(doc.contains("\"active\": 1"));
        assert!(doc.trim_end().ends_with('}'));
    }

    #[test]
    fn text_includes_hint() {
        let txt = findings_text(&[finding()]);
        assert!(txt.contains("crates/x/src/lib.rs:7: [hash-iter]"));
        assert!(txt.contains("fix: use a BTreeMap"));
    }
}
