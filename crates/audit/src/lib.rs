#![warn(missing_docs)]

//! # snooze-audit
//!
//! Determinism auditing for the Snooze workspace, in two layers:
//!
//! 1. **Static** — [`lint`]: a dependency-free text/AST-lite analysis
//!    that bans sources of nondeterminism at their origin (hash-order
//!    iteration, wall-clock reads, ambient entropy, exact float
//!    comparisons, unwraps in message handlers). Run it with
//!    `snooze-audit lint`; suppress individual sites with
//!    `// audit-allow(rule): reason` or curated entries in
//!    `audit.allowlist`.
//!
//! 2. **Dynamic** — [`determinism`] plus the `audit` cargo feature:
//!    runtime invariant checks (`snooze_simcore::invariant`) wired into
//!    the engine, the hypervisor and the ACO colony, and a two-run
//!    replay check (`snooze-audit determinism`) that diffs event and
//!    trace digests of identical-seed runs.
//!
//! The two layers are complementary: the lint catches what the type
//! system can't before it ships, the runtime checks catch semantic
//! drift (conservation violations, order inversions) while scenarios
//! execute, and the replay diff is the end-to-end oracle.

pub mod determinism;
pub mod lint;
pub mod report;
