//! The `snooze-audit determinism` subcommand: run one full-stack Snooze
//! scenario twice from the same seed and diff the run fingerprints.
//!
//! The scenario deliberately mirrors the repository's tier-1 replay
//! test: a lossy LAN, a full hierarchy (GL election, GMs, LCs), a batch
//! of on/off-workload VMs, and a mid-run GM crash — determinism must
//! hold *through* failure handling, not just on the happy path. The
//! fingerprint combines independent witnesses:
//!
//! * the engine's executed-event digest ([`snooze_simcore::Engine::digest`]),
//! * the trace-stream digest ([`snooze_simcore::trace::Trace::digest`]),
//! * executed event count and final placements,
//! * accumulated energy (formatted, so the comparison is exact).

use snooze::prelude::*;
use snooze_cluster::node::NodeSpec;
use snooze_cluster::resources::ResourceVector;
use snooze_cluster::vm::{VmId, VmSpec};
use snooze_cluster::workload::{UsageShape, VmWorkload};
use snooze_simcore::prelude::*;

/// Scenario knobs, all defaulted by the CLI.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Master seed.
    pub seed: u64,
    /// Cluster size (LC nodes).
    pub nodes: usize,
    /// VMs submitted by the client.
    pub vms: u64,
    /// Virtual seconds to run.
    pub secs: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            seed: 77,
            nodes: 8,
            vms: 10,
            secs: 300,
        }
    }
}

/// Everything one run produces that a replay must reproduce exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Executed-event digest from the engine.
    pub event_digest: u64,
    /// Digest of the full trace stream.
    pub trace_digest: u64,
    /// Number of events executed.
    pub events: u64,
    /// FNV-1a over the (vm, lc) placement pairs, in placement order.
    pub placements: u64,
    /// Count of placed VMs.
    pub placed: usize,
    /// Total energy, formatted to µWh precision.
    pub energy: String,
}

fn fnv1a_words(mut hash: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Run the scenario once and fingerprint it.
pub fn run_once(sc: &Scenario) -> Fingerprint {
    let mut sim: Engine<SnoozeNode> = SimBuilder::new(sc.seed)
        .network(NetworkConfig::lossy_lan(0.02))
        .build();
    let config = SnoozeConfig::fast_test();
    let nodes = NodeSpec::standard_cluster(sc.nodes);
    let system = SnoozeSystem::deploy(&mut sim, &config, 3, &nodes, 1);
    let schedule: Vec<ScheduledVm> = (0..sc.vms)
        .map(|i| ScheduledVm {
            at: SimTime::from_secs(10),
            spec: VmSpec::new(VmId(i), ResourceVector::new(2.0, 4096.0, 100.0, 100.0)),
            workload: VmWorkload {
                cpu: UsageShape::OnOff {
                    on_level: 0.9,
                    off_level: 0.1,
                    duty: 0.4,
                    slot: SimSpan::from_secs(60),
                },
                memory: UsageShape::Constant(0.7),
                network: UsageShape::Constant(0.2),
                seed: i,
            },
            lifetime: None,
        })
        .collect();
    let client = sim.add_component(
        "client",
        ClientDriver::new(system.eps[0], schedule, SimSpan::from_secs(10)),
    );
    // Determinism must hold through failure handling, so crash a GM.
    sim.schedule_crash(SimTime::from_secs(40), system.gms[0]);
    sim.run_until(SimTime::from_secs(sc.secs));

    let driver = sim
        .component(client)
        .as_client()
        .expect("client driver present");
    let placements = fnv1a_words(
        0xcbf2_9ce4_8422_2325,
        driver.placed.iter().flat_map(|p| [p.vm.0, p.lc.0 as u64]),
    );
    Fingerprint {
        event_digest: sim.digest(),
        trace_digest: sim.trace().digest(),
        events: sim.events_executed(),
        placements,
        placed: driver.placed.len(),
        energy: format!("{:.6}", system.total_energy_wh(&sim, sim.now())),
    }
}

/// Outcome of the two-run diff.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// First run.
    pub first: Fingerprint,
    /// Second run.
    pub second: Fingerprint,
}

impl Verdict {
    /// Whether the two runs are indistinguishable.
    pub fn identical(&self) -> bool {
        self.first == self.second
    }

    /// Names of the fingerprint fields that differ.
    pub fn diverging_fields(&self) -> Vec<&'static str> {
        let (a, b) = (&self.first, &self.second);
        let mut out = Vec::new();
        if a.event_digest != b.event_digest {
            out.push("event_digest");
        }
        if a.trace_digest != b.trace_digest {
            out.push("trace_digest");
        }
        if a.events != b.events {
            out.push("events");
        }
        if a.placements != b.placements {
            out.push("placements");
        }
        if a.placed != b.placed {
            out.push("placed");
        }
        if a.energy != b.energy {
            out.push("energy");
        }
        out
    }
}

/// Run the scenario twice and compare.
pub fn check(sc: &Scenario) -> Verdict {
    Verdict {
        first: run_once(sc),
        second: run_once(sc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_replays_identically() {
        let sc = Scenario {
            seed: 11,
            nodes: 4,
            vms: 4,
            secs: 120,
        };
        let v = check(&sc);
        assert!(v.identical(), "diverged in {:?}", v.diverging_fields());
    }

    #[test]
    fn different_seeds_diverge() {
        let sc = Scenario {
            seed: 11,
            nodes: 4,
            vms: 4,
            secs: 120,
        };
        let a = run_once(&sc);
        let b = run_once(&Scenario { seed: 12, ..sc });
        assert_ne!(a.event_digest, b.event_digest);
        assert_ne!(a.trace_digest, b.trace_digest);
    }
}
