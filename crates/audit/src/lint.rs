//! The determinism lint: a text/AST-lite static analysis over the
//! workspace sources.
//!
//! The simulator's whole value proposition is bit-identical replay from
//! a seed. Every rule here bans a *source* of nondeterminism (or of
//! silent divergence) that survives type-checking:
//!
//! | rule               | bans                                            |
//! |--------------------|-------------------------------------------------|
//! | `hash-iter`        | iterating `HashMap`/`HashSet` in simulation code |
//! | `wall-clock`       | `Instant::now` / `SystemTime` outside benches    |
//! | `ambient-rng`      | `thread_rng` / `from_entropy` / `OsRng`          |
//! | `float-eq`         | `==`/`!=` against float literals in schedulers   |
//! | `partial-cmp-unwrap` | `.partial_cmp(..).unwrap()` on floats          |
//! | `handler-unwrap`   | `.unwrap()`/`.expect(` inside `on_message`       |
//! | `type-erasure`     | `dyn Any` / `downcast` on the simulation path    |
//! | `interleaving-hashset` | any `HashSet` on the simulation path         |
//! | `unscoped-thread`  | threads/locks/atomics outside the shard executor |
//!
//! The analysis is deliberately lightweight: a comment/string-aware line
//! model plus token scanning — no syn, no rustc internals, no external
//! dependencies. Suppression is explicit and auditable: an inline
//! `// audit-allow: reason` (or rule-targeted
//! `// audit-allow(rule-id): reason`) on the offending line or on a
//! standalone comment line directly above it, or an entry in the curated
//! allowlist file (`audit.allowlist` at the workspace root).
//!
//! Heuristic limits, by design: `#[cfg(test)]` modules are skipped (test
//! assertions may compare floats or iterate maps without affecting the
//! simulated history), and `hash-iter` tracks *named* bindings declared
//! as hash collections in the same file — good enough for this codebase,
//! and wrong in the safe direction for exotic code (it misses, it does
//! not false-positive).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Crates whose sources sit on the simulation path: any iteration-order
/// or float-comparison wobble here changes simulated histories.
pub const SIM_PATH: &[&str] = &[
    "crates/simcore/src",
    "crates/protocols/src",
    "crates/cluster/src",
    "crates/snooze/src",
    "crates/consolidation/src",
    "crates/telemetry/src",
    "crates/scenario/src",
    "crates/mc/src",
    "crates/trace/src",
];

/// One source line, split into its code and comment parts (string
/// literal contents are blanked out of `code`).
#[derive(Debug)]
pub struct SourceLine {
    /// The original text.
    pub raw: String,
    /// Code with comments removed and string/char literal bodies blanked.
    pub code: String,
    /// The comment text (line + block comments) on this line.
    pub comment: String,
}

/// A parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Parsed lines.
    pub lines: Vec<SourceLine>,
    /// Index of the first line of a trailing `#[cfg(test)]` module, if
    /// any — lines from here on are exempt from the rules.
    pub test_cut: Option<usize>,
}

/// Lexer state carried across lines.
enum St {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Parse `text` into the line model.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let mut st = St::Code;
        let mut lines = Vec::new();
        for raw in text.lines() {
            let ch: Vec<char> = raw.chars().collect();
            let mut code = String::new();
            let mut comment = String::new();
            let mut i = 0usize;
            let mut line_comment = false;
            while i < ch.len() {
                match st {
                    St::Code => {
                        let c = ch[i];
                        let next = ch.get(i + 1).copied();
                        if c == '/' && next == Some('/') {
                            comment.push_str(&ch[i + 2..].iter().collect::<String>());
                            line_comment = true;
                            break;
                        } else if c == '/' && next == Some('*') {
                            st = St::Block(1);
                            i += 2;
                        } else if c == '"' {
                            code.push('"');
                            st = St::Str;
                            i += 1;
                        } else if c == 'r'
                            && !ch
                                .get(i.wrapping_sub(1))
                                .copied()
                                .map(ident_char)
                                .unwrap_or(false)
                        {
                            // Possible raw string: r"..."/r#"..."#.
                            let mut j = i + 1;
                            while ch.get(j) == Some(&'#') {
                                j += 1;
                            }
                            if ch.get(j) == Some(&'"') {
                                code.push('"');
                                st = St::RawStr((j - i - 1) as u32);
                                i = j + 1;
                            } else {
                                code.push(c);
                                i += 1;
                            }
                        } else if c == '\'' {
                            // Char literal vs lifetime.
                            if next == Some('\\') {
                                // '\n' style: consume through closing quote.
                                let mut j = i + 2;
                                while j < ch.len() && ch[j] != '\'' {
                                    j += 1;
                                }
                                code.push(' ');
                                i = j + 1;
                            } else if ch.get(i + 2) == Some(&'\'') {
                                code.push(' ');
                                i += 3;
                            } else {
                                code.push('\'');
                                i += 1;
                            }
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    St::Block(depth) => {
                        let c = ch[i];
                        let next = ch.get(i + 1).copied();
                        if c == '*' && next == Some('/') {
                            if depth == 1 {
                                st = St::Code;
                            } else {
                                st = St::Block(depth - 1);
                            }
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            st = St::Block(depth + 1);
                            i += 2;
                        } else {
                            comment.push(c);
                            i += 1;
                        }
                    }
                    St::Str => {
                        let c = ch[i];
                        if c == '\\' {
                            i += 2;
                        } else if c == '"' {
                            code.push('"');
                            st = St::Code;
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    St::RawStr(hashes) => {
                        if ch[i] == '"' {
                            let n = hashes as usize;
                            if ch[i + 1..].iter().take(n).filter(|&&h| h == '#').count() == n {
                                code.push('"');
                                st = St::Code;
                                i += 1 + n;
                                continue;
                            }
                        }
                        i += 1;
                    }
                }
            }
            if line_comment {
                st = St::Code;
            }
            lines.push(SourceLine {
                raw: raw.to_string(),
                code,
                comment,
            });
        }
        let test_cut = lines.iter().position(|l| l.code.trim() == "#[cfg(test)]");
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            test_cut,
        }
    }

    /// Whether line `idx` (0-based) is inside a trailing test module.
    pub fn in_test_module(&self, idx: usize) -> bool {
        self.test_cut.is_some_and(|cut| idx >= cut)
    }

    /// Whether an inline marker suppresses `rule` at line `idx`: either
    /// on the line itself or on a standalone comment line directly above.
    pub fn allows(&self, idx: usize, rule: &str) -> bool {
        if comment_allows(&self.lines[idx].comment, rule) {
            return true;
        }
        idx > 0
            && self.lines[idx - 1].code.trim().is_empty()
            && comment_allows(&self.lines[idx - 1].comment, rule)
    }
}

/// `audit-allow: reason` suppresses every rule at its site;
/// `audit-allow(rule-a, rule-b): reason` suppresses only those rules.
fn comment_allows(comment: &str, rule: &str) -> bool {
    let Some(pos) = comment.find("audit-allow") else {
        return false;
    };
    let rest = &comment[pos + "audit-allow".len()..];
    if let Some(inner) = rest.strip_prefix('(') {
        match inner.find(')') {
            Some(close) => inner[..close].split(',').any(|r| r.trim() == rule),
            None => false,
        }
    } else {
        rest.trim_start().starts_with(':')
    }
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offset of each word-boundary occurrence of `token` in `code`.
/// `token` itself may contain `::` (path tokens).
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = code[start..].find(token) {
        let at = start + p;
        let before_ok = at == 0 || !ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = at + token.len();
        let after_ok =
            after >= code.len() || !ident_char(code[after..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + token.len().max(1);
    }
    out
}

/// A raw rule hit: 0-based line index plus display snippet.
type Hit = (usize, String);

fn snippet(file: &SourceFile, idx: usize) -> String {
    let s = file.lines[idx].raw.trim();
    if s.len() > 120 {
        let mut cut = 117;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &s[..cut])
    } else {
        s.to_string()
    }
}

/// A lint rule: identity, scope predicate, and checker.
pub struct RuleDef {
    /// Stable rule id (used in allow markers and the allowlist).
    pub id: &'static str,
    /// One-line description of what the rule bans.
    pub summary: &'static str,
    /// How to fix a finding.
    pub hint: &'static str,
    /// Whether the rule applies to a (workspace-relative) path.
    pub in_scope: fn(&str) -> bool,
    /// Scan a file, returning raw hits.
    pub check: fn(&SourceFile) -> Vec<Hit>,
}

fn scope_sim_path(path: &str) -> bool {
    SIM_PATH.iter().any(|p| path.starts_with(p))
}

fn scope_not_bench(path: &str) -> bool {
    !path.starts_with("crates/bench")
}

fn scope_everywhere(_path: &str) -> bool {
    true
}

fn scope_scheduling_aco(path: &str) -> bool {
    path.starts_with("crates/consolidation/src") || path.starts_with("crates/snooze/src")
}

// --- rule: hash-iter ----------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "into_iter()",
    "keys()",
    "values()",
    "values_mut()",
    "into_keys()",
    "into_values()",
    "drain(",
    "retain(",
];

/// Names declared as `HashMap`/`HashSet` in this file (struct fields,
/// `let` bindings with type annotations or `::new()` initializers).
fn hash_binding_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in token_positions(code, ty) {
                let before = code[..pos].trim_end();
                // `name: HashMap<..>` (field or typed binding).
                if let Some(stripped) = before.strip_suffix(':') {
                    if let Some(name) = last_ident(stripped) {
                        names.insert(name);
                        continue;
                    }
                }
                // `let [mut] name = HashMap::new()` style.
                if let Some(stripped) = before.strip_suffix('=') {
                    let head = stripped.trim_end();
                    if code.contains("let ") {
                        if let Some(name) = last_ident(head) {
                            names.insert(name);
                        }
                    }
                }
            }
        }
    }
    names
}

fn last_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| ident_char(*c))
        .map(|(i, _)| i)
        .last()?;
    let ident = &trimmed[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

fn check_hash_iter(file: &SourceFile) -> Vec<Hit> {
    let names = hash_binding_names(file);
    if names.is_empty() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let mut flagged = false;
        for name in &names {
            if flagged {
                break;
            }
            for pos in token_positions(code, name) {
                let after = &code[pos + name.len()..];
                // `name.iter()` / `.keys()` / `.drain(..)` and friends.
                if let Some(rest) = after.strip_prefix('.') {
                    if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                        hits.push((idx, snippet(file, idx)));
                        flagged = true;
                        break;
                    }
                }
                // `for x in [&[mut]] [self.]name` loops.
                let mut pre = &code[..pos];
                if let Some(p) = pre.strip_suffix("self.") {
                    pre = p;
                }
                let pre = pre.trim_end_matches("mut ").trim_end_matches('&');
                let consumed_ok =
                    after.is_empty() || after.starts_with(' ') || after.starts_with('{');
                if pre.ends_with(" in ") && consumed_ok {
                    hits.push((idx, snippet(file, idx)));
                    flagged = true;
                    break;
                }
            }
        }
    }
    hits
}

// --- rule: wall-clock / ambient-rng -------------------------------------

fn check_tokens(file: &SourceFile, tokens: &[&str]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if tokens
            .iter()
            .any(|t| !token_positions(&line.code, t).is_empty())
        {
            hits.push((idx, snippet(file, idx)));
        }
    }
    hits
}

fn check_wall_clock(file: &SourceFile) -> Vec<Hit> {
    check_tokens(file, &["Instant::now", "SystemTime::now", "UNIX_EPOCH"])
}

fn check_ambient_rng(file: &SourceFile) -> Vec<Hit> {
    check_tokens(
        file,
        &[
            "thread_rng",
            "from_entropy",
            "OsRng",
            "getrandom",
            "rand::random",
        ],
    )
}

// --- rule: float-eq -----------------------------------------------------

/// Token directly left of byte `end` in `code`: identifier chars, `.`,
/// and indexing are collected; anything else terminates.
fn operand_left(code: &str, end: usize) -> String {
    let mut out: Vec<char> = Vec::new();
    for c in code[..end].chars().rev() {
        if c == ' ' && out.is_empty() {
            continue;
        }
        if ident_char(c) || c == '.' {
            out.push(c);
        } else {
            break;
        }
    }
    out.into_iter().rev().collect()
}

/// Token directly right of byte `start`; `+`/`-` are kept only directly
/// after an exponent marker so `1e-9` parses as one token.
fn operand_right(code: &str, start: usize) -> String {
    let mut out = String::new();
    for c in code[start..].chars() {
        if c == ' ' && out.is_empty() {
            continue;
        }
        let exponent_sign = (c == '+' || c == '-') && out.ends_with(['e', 'E']);
        if ident_char(c) || c == '.' || exponent_sign {
            out.push(c);
        } else {
            break;
        }
    }
    out
}

/// Whether `tok` is a floating-point literal (`0.5`, `1e-9`, `2f64`…).
fn is_float_literal(tok: &str) -> bool {
    let t = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map(|t| t.strip_suffix('_').unwrap_or(t))
        .unwrap_or(tok);
    let mut chars = t.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    let floaty =
        t.contains('.') || t.contains(['e', 'E']) || tok.ends_with("f64") || tok.ends_with("f32");
    floaty
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'))
}

fn check_float_eq(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let bytes = code.as_bytes();
        let mut flagged = false;
        let mut i = 0;
        while i + 1 < bytes.len() && !flagged {
            let two = &code[i..i + 2];
            let is_eq = two == "==" || two == "!=";
            if is_eq {
                let prev = if i == 0 { b' ' } else { bytes[i - 1] };
                let next = if i + 2 < bytes.len() {
                    bytes[i + 2]
                } else {
                    b' '
                };
                // Skip `<=`, `>=`, `=>`-adjacent and `===`-like runs.
                if !matches!(prev, b'=' | b'<' | b'>' | b'!') && next != b'=' {
                    let lhs = operand_left(code, i);
                    let rhs = operand_right(code, i + 2);
                    if is_float_literal(&lhs) || is_float_literal(&rhs) {
                        hits.push((idx, snippet(file, idx)));
                        flagged = true;
                    }
                }
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    hits
}

// --- rule: partial-cmp-unwrap -------------------------------------------

fn check_partial_cmp_unwrap(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if let Some(pos) = code.find(".partial_cmp(") {
            // The `.unwrap()` may be chained on the same or the next line.
            let mut tail = code[pos..].to_string();
            if let Some(next) = file.lines.get(idx + 1) {
                tail.push_str(next.code.trim());
            }
            if tail.contains(".unwrap()") || tail.contains(".expect(") {
                hits.push((idx, snippet(file, idx)));
            }
        }
    }
    hits
}

// --- rule: handler-unwrap -----------------------------------------------

fn check_handler_unwrap(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    let mut depth: i32 = 0;
    let mut in_handler = false;
    let mut seeking = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if !in_handler && !seeking && code.contains("fn on_message") {
            seeking = true;
            depth = 0;
        }
        if seeking || in_handler {
            if in_handler && (code.contains(".unwrap()") || code.contains(".expect(")) {
                hits.push((idx, snippet(file, idx)));
            }
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if seeking {
                            seeking = false;
                            in_handler = true;
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if in_handler && depth == 0 {
                            in_handler = false;
                        }
                    }
                    // A `;` before any `{` means this was a trait-method
                    // declaration, not a handler body.
                    ';' if seeking && depth == 0 => {
                        seeking = false;
                    }
                    _ => {}
                }
            }
        }
    }
    hits
}

// --- rule: type-erasure ---------------------------------------------------

fn check_type_erasure(file: &SourceFile) -> Vec<Hit> {
    check_tokens(
        file,
        &["dyn Any", "downcast", "downcast_ref", "downcast_mut"],
    )
}

// --- rule: interleaving-hashset -------------------------------------------

/// `hash-iter` catches *iteration* of a named hash binding; this rule is
/// stricter on sets. A `HashSet` poisons determinism even without a
/// visible `.iter()` — its order leaks through `Extend`, `Debug`
/// formatting, drains inside std adaptors, and any later refactor that
/// adds a loop. The model checker's visited-set and worklist code made
/// the gap concrete: a `HashSet` there would reorder exploration without
/// failing `hash-iter`. On the simulation path the type itself is
/// banned; `BTreeSet` costs a logarithm and buys replayability.
fn check_interleaving_hashset(file: &SourceFile) -> Vec<Hit> {
    check_tokens(file, &["HashSet", "hash_set"])
}

// --- rule: unscoped-thread ------------------------------------------------

/// The sharded executor (`crates/simcore/src/exec.rs`) is the one
/// module allowed to touch real concurrency: it owns the scoped fork /
/// join and the deterministic commit that makes worker threads
/// invisible to the digest. Everywhere else on the simulation path,
/// threads, locks and atomics are how nondeterminism sneaks back in —
/// an unscoped `thread::spawn` races the virtual clock, and a shared
/// `Mutex`/`AtomicUsize` counter observes real scheduling order.
fn scope_sim_path_outside_shard_executor(path: &str) -> bool {
    scope_sim_path(path) && path != "crates/simcore/src/exec.rs"
}

fn check_unscoped_thread(file: &SourceFile) -> Vec<Hit> {
    check_tokens(
        file,
        &[
            "thread::spawn",
            "Mutex",
            "RwLock",
            "Condvar",
            "AtomicUsize",
            "AtomicU64",
            "AtomicU32",
            "AtomicBool",
            "AtomicI64",
        ],
    )
}

/// The rule set, in reporting order.
pub fn rules() -> &'static [RuleDef] {
    &[
        RuleDef {
            id: "hash-iter",
            summary: "HashMap/HashSet iteration in simulation-path code",
            hint: "use a BTreeMap/BTreeSet, or sort the items and mark the site `// audit-allow(hash-iter): sorted`",
            in_scope: scope_sim_path,
            check: check_hash_iter,
        },
        RuleDef {
            id: "wall-clock",
            summary: "wall-clock reads (Instant::now / SystemTime) outside crates/bench",
            hint: "use virtual time (SimTime, Ctx::now); wall-clock timing belongs in crates/bench only",
            in_scope: scope_not_bench,
            check: check_wall_clock,
        },
        RuleDef {
            id: "ambient-rng",
            summary: "ambient entropy sources (thread_rng / from_entropy / OsRng)",
            hint: "draw randomness from the engine's seeded SimRng (fork a labeled stream)",
            in_scope: scope_everywhere,
            check: check_ambient_rng,
        },
        RuleDef {
            id: "float-eq",
            summary: "exact float equality against a literal in scheduling/ACO code",
            hint: "compare with an epsilon band or use f64::total_cmp; exact equality flips on the last ulp",
            in_scope: scope_scheduling_aco,
            check: check_float_eq,
        },
        RuleDef {
            id: "partial-cmp-unwrap",
            summary: ".partial_cmp(..).unwrap() in simulation-path code",
            hint: "use f64::total_cmp (or .unwrap_or(Ordering::Equal) with a deterministic tiebreak)",
            in_scope: scope_sim_path,
            check: check_partial_cmp_unwrap,
        },
        RuleDef {
            id: "handler-unwrap",
            summary: ".unwrap()/.expect() inside an on_message handler",
            hint: "handlers must tolerate stale or malformed messages: use if-let/match instead of unwrapping",
            in_scope: scope_sim_path,
            check: check_handler_unwrap,
        },
        RuleDef {
            id: "type-erasure",
            summary: "type-erased messaging (dyn Any / downcast) in simulation-path code",
            hint: "the engine is generic over its message enum; add a variant and match on it instead of erasing the type",
            in_scope: scope_sim_path,
            check: check_type_erasure,
        },
        RuleDef {
            id: "interleaving-hashset",
            summary: "HashSet declared or used in simulation-path code",
            hint: "use a BTreeSet: set order leaks into simulated histories even without direct iteration",
            in_scope: scope_sim_path,
            check: check_interleaving_hashset,
        },
        RuleDef {
            id: "unscoped-thread",
            summary: "threads, locks or atomics on the simulation path outside the shard executor",
            hint: "real concurrency belongs in crates/simcore/src/exec.rs (scoped fork/join + deterministic commit); route parallel work through the sharded engine",
            in_scope: scope_sim_path_outside_shard_executor,
            check: check_unscoped_thread,
        },
    ]
}

/// One reportable finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Fix hint for the rule.
    pub hint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line.
    pub snippet: String,
    /// Suppressed by an inline marker or the allowlist.
    pub allowed: bool,
}

/// The curated allowlist file: `rule-id path-substring` per line, `#`
/// comments, blank lines ignored. A `*` rule matches every rule.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parse the allowlist format. Returns `Err` on malformed lines.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(rule), Some(path)) => entries.push((rule.to_string(), path.to_string())),
                _ => return Err(format!("allowlist line {}: expected `rule path`", n + 1)),
            }
        }
        Ok(Allowlist { entries })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Whether `rule` at `path` is allowlisted.
    pub fn permits(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p)| (r == "*" || r == rule) && path.contains(p.as_str()))
    }

    /// Entries that matched none of `findings` — dead weight left behind
    /// after the offending code was fixed, moved, or renamed. A stale
    /// entry is a latent hole: it silently re-permits the pattern if it
    /// ever comes back. Pass the *full* finding set (allowed included),
    /// since a live entry's findings are, by definition, allowed.
    /// Returns displayable `rule path` strings in file order.
    pub fn stale_entries(&self, findings: &[Finding]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(rule, path)| {
                !findings.iter().any(|f| {
                    (rule.as_str() == "*" || rule.as_str() == f.rule)
                        && f.path.contains(path.as_str())
                })
            })
            .map(|(rule, path)| format!("{rule} {path}"))
            .collect()
    }
}

/// Lint one parsed file against every in-scope rule.
pub fn lint_file(file: &SourceFile, allowlist: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules() {
        if !(rule.in_scope)(&file.rel_path) {
            continue;
        }
        for (idx, snip) in (rule.check)(file) {
            if file.in_test_module(idx) {
                continue;
            }
            let allowed = file.allows(idx, rule.id) || allowlist.permits(rule.id, &file.rel_path);
            findings.push(Finding {
                rule: rule.id,
                hint: rule.hint,
                path: file.rel_path.clone(),
                line: idx + 1,
                snippet: snip,
                allowed,
            });
        }
    }
    findings
}

/// Collect the workspace `.rs` sources under `root`, skipping build
/// output, vendored stand-ins, and the lint's own fixture corpus.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint the whole workspace rooted at `root`.
///
/// Errors if no sources are found: a "clean" verdict over zero files
/// (wrong `--root`, deleted tree) must never read as a pass.
pub fn lint_root(root: &Path, allowlist: &Allowlist) -> Result<Vec<Finding>, String> {
    let files = collect_files(root);
    if files.is_empty() {
        return Err(format!("no .rs sources found under {}", root.display()));
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
        let file = SourceFile::parse(&rel, &text);
        findings.extend(lint_file(&file, allowlist));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/simcore/src/x.rs", src)
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let f = parse("let a = \"HashMap // not code\"; // trailing HashMap\nlet b = 2; /* block\nHashMap */ let c = 3;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("trailing HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("let c = 3;"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let f = parse("let s = r#\"thread_rng()\"#; let c = 'x'; let lt: &'static str = \"y\";\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn allow_markers_parse() {
        assert!(comment_allows(" audit-allow: sorted below", "hash-iter"));
        assert!(comment_allows(
            " audit-allow(hash-iter): sorted",
            "hash-iter"
        ));
        assert!(comment_allows(" audit-allow(a, hash-iter): x", "hash-iter"));
        assert!(!comment_allows(" audit-allow(float-eq): x", "hash-iter"));
        assert!(!comment_allows(" plain comment", "hash-iter"));
    }

    #[test]
    fn float_literal_detection() {
        for t in ["0.0", "1.5", "1e-9", "2f64", "3.25f32", "1_000.5"] {
            assert!(is_float_literal(t), "{t}");
        }
        for t in ["100", "x", "w", "a.b", "0", "self.x.0", ""] {
            assert!(!is_float_literal(t), "{t}");
        }
    }

    #[test]
    fn stale_allowlist_entries_are_detected() {
        let allowlist = Allowlist::parse(
            "wall-clock crates/simcore/src/x.rs\n\
             hash-iter crates/gone/src/old.rs\n",
        )
        .expect("allowlist parses");
        let file = parse("fn t() -> Instant { Instant::now() }\n");
        let findings = lint_file(&file, &allowlist);
        // The wall-clock entry is live (it suppresses a real finding)…
        assert!(findings.iter().any(|f| f.rule == "wall-clock" && f.allowed));
        // …while the hash-iter entry points at code that no longer exists.
        assert_eq!(
            allowlist.stale_entries(&findings),
            vec!["hash-iter crates/gone/src/old.rs".to_string()]
        );
    }

    /// Pin the lint's jurisdiction. Every crate whose code can touch a
    /// simulated history must be listed — including the observability
    /// path (`telemetry` windows, the `scenario` compiler's SLO/flight
    /// machinery, the `mc` checker), whose whole contract is *not*
    /// perturbing that history. Growing the workspace means consciously
    /// extending this list; shrinking it silently would exempt live
    /// simulation code, so any change must update this test too.
    #[test]
    fn sim_path_covers_every_simulation_crate() {
        assert_eq!(
            SIM_PATH,
            &[
                "crates/simcore/src",
                "crates/protocols/src",
                "crates/cluster/src",
                "crates/snooze/src",
                "crates/consolidation/src",
                "crates/telemetry/src",
                "crates/scenario/src",
                "crates/mc/src",
                "crates/trace/src",
            ]
        );
        for path in [
            "crates/simcore/src/flight.rs",
            "crates/telemetry/src/window.rs",
            "crates/scenario/src/incident.rs",
            "crates/scenario/src/compile.rs",
        ] {
            assert!(scope_sim_path(path), "{path} must be in lint scope");
        }
    }

    /// The observability modules this repo grew (flight recorder +
    /// profiler, windowed time-series, incident dumps, SLO evaluation)
    /// must be lint-clean against the real allowlist: they observe the
    /// simulation and therefore sit on the simulation path themselves.
    #[test]
    fn observability_modules_are_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let allowlist = Allowlist::load(&root.join("audit.allowlist")).expect("allowlist loads");
        for rel in [
            "crates/simcore/src/flight.rs",
            "crates/telemetry/src/window.rs",
            "crates/scenario/src/incident.rs",
            "crates/scenario/src/compile.rs",
        ] {
            let text = std::fs::read_to_string(root.join(rel)).expect(rel);
            let file = SourceFile::parse(rel, &text);
            let live: Vec<String> = lint_file(&file, &allowlist)
                .into_iter()
                .filter(|f| !f.allowed)
                .map(|f| format!("{}:{} {} {}", f.path, f.line, f.rule, f.snippet))
                .collect();
            assert!(
                live.is_empty(),
                "lint findings in {rel}:\n{}",
                live.join("\n")
            );
        }
    }

    #[test]
    fn tuple_field_access_is_not_float_eq() {
        let f = SourceFile::parse(
            "crates/snooze/src/x.rs",
            "fn c(w: &[(f64, u32)]) -> bool { w[0].1 == w[1].1 }\n",
        );
        assert!(check_float_eq(&f).is_empty());
    }
}
