//! Runtime invariant checks (layer 2), exercised with the `audit`
//! feature armed: `cargo test -p snooze-audit --features audit`.
//!
//! The invariant sink is process-global, so every test here serializes
//! on one gate and restores the previous sink before exiting.

use std::sync::{Mutex, MutexGuard};

use snooze_simcore::invariant::{install_sink, report, take_sink, CollectingSink};
use snooze_simcore::prelude::*;

use snooze_cluster::hypervisor::Hypervisor;
use snooze_cluster::resources::ResourceVector;
use snooze_cluster::vm::{VmId, VmSpec};
use snooze_cluster::workload::VmWorkload;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run `f` with a collecting sink installed; return what accumulated.
fn collected(f: impl FnOnce()) -> Vec<String> {
    let (sink, store) = CollectingSink::new();
    let prev = install_sink(Box::new(sink));
    f();
    take_sink();
    if let Some(p) = prev {
        install_sink(p);
    }
    let got = store
        .lock()
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect();
    got
}

#[test]
fn clean_engine_run_reports_no_violations() {
    let _gate = serial();

    struct Echo;
    impl Component for Echo {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(SimSpan::from_secs(1), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _src: ComponentId, _msg: u64) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
            ctx.set_timer(SimSpan::from_secs(1), 1);
        }
    }

    let violations = collected(|| {
        let mut sim: Engine<Echo> = SimBuilder::new(42).build();
        sim.add_component("echo", Echo);
        sim.run_until(SimTime::from_secs(50));
        assert!(sim.events_executed() > 40);
    });
    assert_eq!(violations, Vec::<String>::new());
}

#[test]
fn hypervisor_mutations_stay_conserving() {
    let _gate = serial();
    let violations = collected(|| {
        let mut hv = Hypervisor::new(ResourceVector::splat(16.0));
        for i in 0..4 {
            let spec = VmSpec::new(VmId(i), ResourceVector::splat(3.0));
            hv.admit(spec, VmWorkload::flat_full(i), SimTime::ZERO)
                .expect("fits");
        }
        hv.remove(VmId(1));
        hv.remove(VmId(999)); // absent: must not disturb accounting
        hv.clear();
    });
    assert_eq!(violations, Vec::<String>::new());
}

#[test]
fn aco_pheromone_and_feasibility_hold_over_a_run() {
    let _gate = serial();
    use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
    use snooze_consolidation::problem::InstanceGenerator;
    use snooze_simcore::rng::SimRng;

    let violations = collected(|| {
        let inst = InstanceGenerator::grid11().generate(20, &mut SimRng::new(9));
        let run = AcoConsolidator::new(AcoParams::fast()).run(&inst);
        assert!(run.solution.is_some());
    });
    assert_eq!(violations, Vec::<String>::new());
}

#[test]
fn violations_reach_the_sink_with_domain_and_rule() {
    let _gate = serial();
    let violations = collected(|| {
        report("test-domain", "test-rule", "synthetic".to_string());
    });
    assert_eq!(violations, vec!["[test-domain/test-rule] synthetic"]);
}

#[test]
fn full_stack_scenario_is_violation_free_under_audit() {
    let _gate = serial();
    use snooze_audit::determinism::{run_once, Scenario};
    let violations = collected(|| {
        let fp = run_once(&Scenario {
            seed: 7,
            nodes: 4,
            vms: 4,
            secs: 120,
        });
        assert!(fp.events > 0);
    });
    assert_eq!(violations, Vec::<String>::new());
}
