//! Fixture proof for every lint rule: each rule has a positive fixture
//! that fires and a suppressed twin (inline allow marker or curated
//! allowlist entry) that does not.
//!
//! The fixtures live in `crates/audit/fixtures/` — a directory the
//! source walker deliberately skips, so the bad fixtures never pollute
//! a real `snooze-audit lint` run.

use snooze_audit::lint::{lint_file, rules, Allowlist, SourceFile};

/// Lint one fixture as if it sat at `rel_path` in the workspace.
fn findings(rel_path: &str, text: &str, allowlist: &Allowlist) -> Vec<(&'static str, bool)> {
    let file = SourceFile::parse(rel_path, text);
    lint_file(&file, allowlist)
        .into_iter()
        .map(|f| (f.rule, f.allowed))
        .collect()
}

fn empty() -> Allowlist {
    Allowlist::parse("").expect("empty allowlist parses")
}

fn active(rel_path: &str, text: &str) -> Vec<&'static str> {
    findings(rel_path, text, &empty())
        .into_iter()
        .filter(|(_, allowed)| !allowed)
        .map(|(rule, _)| rule)
        .collect()
}

#[test]
fn hash_iter_fires_on_hashmap_iteration() {
    let hits = active(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/hash_iter_bad.rs"),
    );
    assert_eq!(hits, vec!["hash-iter"]);
}

#[test]
fn hash_iter_respects_inline_allow() {
    let hits = active(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/hash_iter_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn hash_iter_is_scoped_to_sim_path_crates() {
    // The same source outside the simulation path is not in scope.
    let hits = active(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/hash_iter_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn wall_clock_fires_outside_bench() {
    let hits = active(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/wall_clock_bad.rs"),
    );
    assert_eq!(hits, vec!["wall-clock"]);
}

#[test]
fn wall_clock_respects_curated_allowlist() {
    let allowlist = Allowlist::parse(
        "# benchmark harness measures real time on purpose\n\
         wall-clock examples/fixture.rs\n",
    )
    .expect("allowlist parses");
    let found = findings(
        "examples/fixture.rs",
        include_str!("../fixtures/wall_clock_bad.rs"),
        &allowlist,
    );
    assert!(found
        .iter()
        .all(|(rule, allowed)| *rule == "wall-clock" && *allowed));
    assert!(
        !found.is_empty(),
        "finding should still be reported, just allowed"
    );
}

#[test]
fn wall_clock_is_permitted_in_bench() {
    let hits = active(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/wall_clock_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn ambient_rng_fires_everywhere() {
    for path in [
        "crates/simcore/src/fixture.rs",
        "crates/bench/src/fixture.rs",
    ] {
        let hits = active(path, include_str!("../fixtures/ambient_rng_bad.rs"));
        assert_eq!(hits, vec!["ambient-rng"], "at {path}");
    }
}

#[test]
fn ambient_rng_respects_untargeted_allow() {
    let hits = active(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/ambient_rng_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn float_eq_fires_in_scheduling_code() {
    let hits = active(
        "crates/consolidation/src/fixture.rs",
        include_str!("../fixtures/float_eq_bad.rs"),
    );
    assert_eq!(hits, vec!["float-eq"]);
}

#[test]
fn float_eq_respects_targeted_allow_on_previous_line() {
    let hits = active(
        "crates/consolidation/src/fixture.rs",
        include_str!("../fixtures/float_eq_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn partial_cmp_unwrap_fires_in_sim_path() {
    let hits = active(
        "crates/consolidation/src/fixture.rs",
        include_str!("../fixtures/partial_cmp_bad.rs"),
    );
    assert_eq!(hits, vec!["partial-cmp-unwrap"]);
}

#[test]
fn partial_cmp_unwrap_respects_targeted_allow() {
    let hits = active(
        "crates/consolidation/src/fixture.rs",
        include_str!("../fixtures/partial_cmp_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn handler_unwrap_fires_only_inside_on_message() {
    // `helper()` also unwraps, but only the handler body may be flagged.
    let file = SourceFile::parse(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/handler_unwrap_bad.rs"),
    );
    let found = lint_file(&file, &empty());
    let lines: Vec<usize> = found
        .iter()
        .filter(|f| f.rule == "handler-unwrap")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines.len(), 1, "exactly the handler-body line: {found:?}");
    assert!(
        found[0].snippet.contains("self.peer.unwrap()"),
        "flagged the handler body, not the helper: {found:?}"
    );
}

#[test]
fn handler_unwrap_respects_targeted_allow() {
    let hits = active(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/handler_unwrap_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn type_erasure_fires_in_sim_path() {
    let hits = active(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/type_erasure_bad.rs"),
    );
    // The fixture has three erasure sites (`dyn Any`, `downcast_ref`,
    // `downcast`) on three lines — every one must be reported.
    assert_eq!(hits, vec!["type-erasure"; 3]);
}

#[test]
fn type_erasure_is_scoped_to_sim_path_crates() {
    // Outside the simulation path (e.g. the audit crate's own scanner or
    // a bench harness) dynamic typing is not a determinism hazard.
    let hits = active(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/type_erasure_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn type_erasure_respects_targeted_allow() {
    let hits = active(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/type_erasure_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn interleaving_hashset_fires_without_iteration() {
    // The fixture declares and inserts into a HashSet but never iterates
    // it — invisible to `hash-iter`, exactly the gap this rule closes.
    // Both the import and the field declaration are flagged.
    let hits = active(
        "crates/mc/src/fixture.rs",
        include_str!("../fixtures/interleaving_hashset_bad.rs"),
    );
    assert_eq!(hits, vec!["interleaving-hashset"; 2]);
}

#[test]
fn interleaving_hashset_is_scoped_to_sim_path_crates() {
    let hits = active(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/interleaving_hashset_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn interleaving_hashset_respects_targeted_allow() {
    let hits = active(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/interleaving_hashset_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn unscoped_thread_fires_on_sim_path_concurrency() {
    // The fixture spawns a thread and declares a Mutex and an
    // AtomicUsize (imports included) — five flagged lines.
    let hits = active(
        "crates/snooze/src/fixture.rs",
        include_str!("../fixtures/unscoped_thread_bad.rs"),
    );
    assert!(!hits.is_empty());
    assert!(
        hits.iter().all(|&r| r == "unscoped-thread"),
        "got: {hits:?}"
    );
}

#[test]
fn unscoped_thread_exempts_the_shard_executor() {
    // The same source inside the approved shard-executor module is out
    // of scope: exec.rs owns the scoped fork/join.
    let hits = active(
        "crates/simcore/src/exec.rs",
        include_str!("../fixtures/unscoped_thread_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn unscoped_thread_is_scoped_to_sim_path_crates() {
    let hits = active(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/unscoped_thread_bad.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn unscoped_thread_respects_inline_allow() {
    let hits = active(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/unscoped_thread_allowed.rs"),
    );
    assert_eq!(hits, Vec::<&str>::new());
}

#[test]
fn unscoped_thread_respects_the_curated_allowlist() {
    let allow = Allowlist::parse("unscoped-thread crates/simcore/src/invariant.rs")
        .expect("allowlist parses");
    let flagged: Vec<_> = findings(
        "crates/simcore/src/invariant.rs",
        include_str!("../fixtures/unscoped_thread_bad.rs"),
        &allow,
    )
    .into_iter()
    .filter(|(_, allowed)| !allowed)
    .collect();
    assert_eq!(flagged, Vec::<(&str, bool)>::new());
}

#[test]
fn every_rule_has_fixture_coverage() {
    // Keep this test honest if rules are added later: each rule id must
    // appear among the fixture-driven positives above.
    let covered = [
        "hash-iter",
        "wall-clock",
        "ambient-rng",
        "float-eq",
        "partial-cmp-unwrap",
        "handler-unwrap",
        "type-erasure",
        "interleaving-hashset",
        "unscoped-thread",
    ];
    for rule in rules() {
        assert!(
            covered.contains(&rule.id),
            "rule `{}` has no fixture test; add one to lint_rules.rs",
            rule.id
        );
    }
    assert_eq!(rules().len(), covered.len());
}
