// Fixture: a handler unwrap suppressed with a targeted allow marker.
struct Node;

impl Component for Node {
    fn on_message(&mut self, _ctx: &mut Ctx, _src: ComponentId, msg: AnyMsg) {
        if msg.downcast_ref::<u32>().is_some() {
            let payload = msg.downcast::<u32>().unwrap(); // audit-allow(handler-unwrap): downcast guarded by is_some() above
            let _ = payload;
        }
    }
}
