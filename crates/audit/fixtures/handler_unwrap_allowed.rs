// Fixture: a handler unwrap suppressed with a targeted allow marker.
struct Node {
    peer: Option<ComponentId>,
}

impl Component for Node {
    type Msg = NodeMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, _src: ComponentId, msg: NodeMsg) {
        if self.peer.is_some() {
            let peer = self.peer.unwrap(); // audit-allow(handler-unwrap): guarded by is_some() above
            ctx.send(peer, msg);
        }
    }
}
