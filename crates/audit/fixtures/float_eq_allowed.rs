// Fixture: exact float equality suppressed with a targeted allow marker.
fn untouched(tau: f64) -> bool {
    // audit-allow(float-eq): sentinel value assigned verbatim, never computed
    tau == -1.0
}
