// Fixture: a HashSet on the simulation path must fire
// `interleaving-hashset` even though it is never iterated — the order
// still leaks through Extend, Debug output, and future refactors.
use std::collections::HashSet;

struct Dedup {
    seen: HashSet<u64>,
}

impl Dedup {
    fn observe(&mut self, id: u64) -> bool {
        self.seen.insert(id)
    }
}
