// Fixture: a type-erasure site suppressed with a targeted allow marker
// (e.g. a diagnostics sidecar that genuinely needs dynamic typing).
use std::any::Any;

struct Node;

impl Node {
    fn peek(&self, probe: &dyn Any) -> Option<u32> { // audit-allow(type-erasure): diagnostics-only probe, not a message path
        probe.downcast_ref::<u32>().copied() // audit-allow(type-erasure): diagnostics-only probe, not a message path
    }
}
