// Fixture: type-erased messaging must fire `type-erasure` — the
// `dyn Any` payload type and the runtime casts that go with it.
use std::any::Any;

type AnyMsg = Box<dyn Any>;

struct Node;

impl Node {
    fn peek(&self, msg: &AnyMsg) -> Option<u32> {
        msg.downcast_ref::<u32>().copied()
    }

    fn take(&self, msg: AnyMsg) -> Option<u32> {
        msg.downcast::<u32>().ok().map(|b| *b)
    }
}
