// Fixture: the same iteration, suppressed with an inline allow marker.
use std::collections::HashMap;

struct Registry {
    members: HashMap<u64, String>,
}

impl Registry {
    fn sorted_names(&self) -> Vec<&str> {
        // audit-allow(hash-iter): sorted immediately below
        let mut names: Vec<&str> = self.members.values().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}
