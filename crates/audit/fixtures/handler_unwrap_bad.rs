// Fixture: unwrapping inside an `on_message` handler must fire
// `handler-unwrap`, while the same call outside a handler must not.
struct Node {
    peer: Option<ComponentId>,
}

impl Node {
    fn helper(&self, v: Option<u32>) -> u32 {
        v.unwrap()
    }
}

impl Component for Node {
    type Msg = NodeMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, _src: ComponentId, msg: NodeMsg) {
        let peer = self.peer.unwrap();
        ctx.send(peer, msg);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, NodeMsg>, _tag: u64) {}
}
