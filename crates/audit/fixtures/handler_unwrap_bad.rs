// Fixture: unwrapping inside an `on_message` handler must fire
// `handler-unwrap`, while the same call outside a handler must not.
struct Node;

impl Node {
    fn helper(&self, v: Option<u32>) -> u32 {
        v.unwrap()
    }
}

impl Component for Node {
    fn on_message(&mut self, _ctx: &mut Ctx, _src: ComponentId, msg: AnyMsg) {
        let payload = msg.downcast::<u32>().unwrap();
        let _ = payload;
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _tag: u64) {}
}
