//! Suppressed twin of `unscoped_thread_bad.rs`: the same constructs
//! behind explicit inline allow markers (e.g. a test-only diagnostics
//! sink that never feeds back into the simulated history).

// audit-allow(unscoped-thread): diagnostics sink, never read by simulation code
use std::sync::atomic::{AtomicUsize, Ordering};
// audit-allow(unscoped-thread): diagnostics sink, never read by simulation code
use std::sync::Mutex;

// audit-allow(unscoped-thread): diagnostics sink, never read by simulation code
static EVENTS: AtomicUsize = AtomicUsize::new(0);
// audit-allow(unscoped-thread): diagnostics sink, never read by simulation code
static LOG: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn record(i: u64) {
    EVENTS.fetch_add(1, Ordering::Relaxed);
    // audit-allow(unscoped-thread): diagnostics sink, never read by simulation code
    LOG.lock().unwrap().push(i);
}
