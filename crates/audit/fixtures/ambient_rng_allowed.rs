// Fixture: ambient entropy suppressed with an untargeted allow marker.
fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // audit-allow: fixture demonstrating suppression
    rng.gen()
}
