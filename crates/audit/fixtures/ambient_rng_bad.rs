// Fixture: ambient entropy must fire `ambient-rng` anywhere in the tree.
fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
