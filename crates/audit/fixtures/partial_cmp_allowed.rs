// Fixture: the same comparison, suppressed with a targeted allow marker.
fn best(scores: &[f64]) -> Option<&f64> {
    // audit-allow(partial-cmp-unwrap): inputs are pheromone values, always finite
    scores.iter().max_by(|a, b| a.partial_cmp(b).unwrap())
}
