// Fixture: iterating a HashMap in simulation-path code must fire `hash-iter`.
use std::collections::HashMap;

struct Registry {
    members: HashMap<u64, String>,
}

impl Registry {
    fn broadcast(&self) {
        for (id, name) in self.members.iter() {
            println!("{id}: {name}");
        }
    }
}
