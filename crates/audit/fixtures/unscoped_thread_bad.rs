//! Positive fixture for `unscoped-thread`: ad-hoc concurrency on the
//! simulation path — a spawned thread racing the virtual clock and a
//! shared atomic counter observing real scheduling order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static EVENTS: AtomicUsize = AtomicUsize::new(0);
static LOG: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn count_in_background(n: u64) {
    std::thread::spawn(move || {
        for i in 0..n {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            LOG.lock().unwrap().push(i);
        }
    });
}
