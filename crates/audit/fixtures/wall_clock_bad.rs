// Fixture: wall-clock reads outside crates/bench must fire `wall-clock`.
use std::time::Instant;

fn measure() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
