// Fixture: exact float equality against a literal must fire `float-eq`.
fn saturated(utilization: f64) -> bool {
    utilization == 1.0
}
