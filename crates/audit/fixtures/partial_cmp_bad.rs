// Fixture: `.partial_cmp(..).unwrap()` must fire `partial-cmp-unwrap`.
fn best(scores: &[f64]) -> Option<&f64> {
    scores.iter().max_by(|a, b| a.partial_cmp(b).unwrap())
}
