// Fixture: the same membership set, suppressed with targeted markers at
// both sites (the import and the field declaration).
// audit-allow(interleaving-hashset): membership only, never ordered
use std::collections::HashSet;

struct Dedup {
    // audit-allow(interleaving-hashset): membership only, never ordered
    seen: HashSet<u64>,
}

impl Dedup {
    fn observe(&mut self, id: u64) -> bool {
        self.seen.insert(id)
    }
}
