//! **E12 — trace-driven consolidation** (beyond the paper's synthetic
//! workloads).
//!
//! The paper's energy evaluation (§III-B) drives the cluster with
//! hand-parameterized bursts and fleets; E12 replays a canonical VM
//! request trace instead (`snooze-trace`): diurnal arrivals, heavy-tailed
//! lifetimes, correlated cpu/mem reservations, and per-VM piecewise
//! demand curves the hypervisors sample live. The same replay runs under
//! ACO and FFD reconfiguration — the two scenario variants of
//! `scenarios/e12_trace.toml`, differing only in
//! `config.reconfiguration.algo` — and the table compares energy,
//! migration traffic and SLA violations. `BENCH_E12_TRACE.json` at the
//! workspace root is the checked-in baseline.
//!
//! `run_experiments --trace-smoke` is the CI gate: it generates a tiny
//! trace from the fixed seed (or takes one written by `snooze-tracegen`),
//! replays it twice on a reduced 128-LC shape, and fails unless the two
//! runs agree byte-for-byte on the event digest and every table column.

use std::path::Path;

use snooze_scenario::presets;

use crate::table::{f2, Table};

/// One variant's outcome.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// Scenario name (`e12-trace-aco`, `e12-trace-ffd`).
    pub name: String,
    /// LCs in the cluster.
    pub lcs: usize,
    /// VM requests the trace submitted.
    pub vms: usize,
    /// VMs placed.
    pub placed: usize,
    /// VMs rejected.
    pub rejected: usize,
    /// Total cluster energy over the horizon, Wh.
    pub energy_wh: f64,
    /// Live migrations performed.
    pub migrations: u64,
    /// Suspend transitions performed.
    pub suspends: u64,
    /// Mean powered-on node count (sampled every minute).
    pub mean_nodes_on: f64,
    /// Mean delivered application performance across samples
    /// (1.0 = no contention anywhere).
    pub mean_performance: f64,
    /// Loaded LC-samples whose performance fell below the SLA floor.
    pub sla_violations: u64,
    /// Loaded LC-samples observed (the violation denominator).
    pub sla_samples: u64,
    /// Deliveries that found no live receiver (must be 0: no faults).
    pub dead_letters: u64,
    /// Advisory wall-clock of the run, ms.
    pub wall_ms: f64,
}

fn row_from_outcome(o: snooze_scenario::ScenarioOutcome, lcs: usize) -> E12Row {
    E12Row {
        name: o.name,
        lcs,
        vms: o.requested_vms,
        placed: o.placed,
        rejected: o.rejected,
        energy_wh: o.energy_wh,
        migrations: o.migrations,
        suspends: o.suspends,
        mean_nodes_on: o.mean_nodes_on,
        mean_performance: o.mean_performance,
        sla_violations: o.sla_violations,
        sla_samples: o.sla_samples,
        dead_letters: o.dead_letters,
        wall_ms: o.wall_ms,
    }
}

/// Run both E12 variants (ACO, then FFD) on `lcs` nodes.
pub fn run(
    lcs: usize,
    trace_path: &str,
    max_vms: usize,
    horizon_secs: u64,
    seed: u64,
) -> Vec<E12Row> {
    presets::e12_trace(lcs, trace_path, max_vms, horizon_secs, seed)
        .iter()
        .map(|spec| {
            let o = snooze_scenario::run(spec)
                .expect("E12 preset compiles")
                .outcome;
            row_from_outcome(o, lcs)
        })
        .collect()
}

/// The full configuration used by `run_experiments e12`: the whole
/// checked-in reference trace on 1000 LCs.
pub fn default_rows() -> Vec<E12Row> {
    run(1000, presets::REFERENCE_TRACE, 0, 10_800, 0xE12)
}

/// Render the table.
pub fn render(rows: &[E12Row]) -> Table {
    let mut t = Table::new(
        "E12: trace-driven consolidation — ACO vs FFD under a diurnal VM trace",
        &[
            "scenario",
            "LCs",
            "VMs",
            "placed",
            "rejected",
            "energy Wh",
            "migrations",
            "suspends",
            "mean nodes on",
            "mean perf",
            "SLA viol",
            "SLA samples",
            "dead letters",
            "wall ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.lcs.to_string(),
            r.vms.to_string(),
            r.placed.to_string(),
            r.rejected.to_string(),
            f2(r.energy_wh),
            r.migrations.to_string(),
            r.suspends.to_string(),
            f2(r.mean_nodes_on),
            f2(r.mean_performance),
            r.sla_violations.to_string(),
            r.sla_samples.to_string(),
            r.dead_letters.to_string(),
            f2(r.wall_ms),
        ]);
    }
    t
}

/// Everything `--trace-smoke` measured.
#[derive(Debug)]
pub struct TraceSmoke {
    /// The first run's rows (one per variant), for rendering.
    pub rows: Vec<E12Row>,
    /// Both runs of every variant agreed on the event digest.
    pub digests_match: bool,
    /// Both runs rendered byte-identical tables.
    pub tables_identical: bool,
    /// Where the trace came from.
    pub trace_path: String,
}

/// Resolve the smoke-trace path: the caller's file when given,
/// otherwise the tiny seed-42 trace generated in-process (asserting the
/// generator is a pure function of the seed). Shared by `--trace-smoke`
/// and `--arena-smoke`.
pub fn smoke_trace_path(trace: Option<&Path>) -> Result<std::path::PathBuf, String> {
    match trace {
        Some(p) => Ok(p.to_path_buf()),
        None => {
            let cfg = snooze_trace::GeneratorConfig {
                vms: 200,
                horizon_s: 1800.0,
                diurnal_period_s: 900.0,
                flash_crowds: 1,
                curve_step_s: 300.0,
            };
            let text = snooze_trace::csv::to_string(&snooze_trace::generate(&cfg, 42));
            let again = snooze_trace::csv::to_string(&snooze_trace::generate(&cfg, 42));
            if text != again {
                return Err("tracegen is not a pure function of the seed".into());
            }
            let dir = std::env::temp_dir().join("snooze-trace-smoke");
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let p = dir.join("smoke_seed42.csv");
            std::fs::write(&p, text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok(p)
        }
    }
}

/// The `--trace-smoke` gate. With `trace` set, replay that file
/// (typically written by `snooze-tracegen --seed 42`); otherwise
/// generate the same tiny trace in-process and additionally assert the
/// generator is a pure function of the seed (two generations must be
/// byte-identical). Either way, run the reduced 128-LC shape twice and
/// compare event digests and rendered tables byte-for-byte.
pub fn smoke(trace: Option<&Path>) -> Result<TraceSmoke, String> {
    let path = smoke_trace_path(trace)?;
    let path_str = path
        .to_str()
        .ok_or_else(|| format!("non-UTF8 trace path {}", path.display()))?;

    let specs = presets::e12_trace_smoke(path_str);
    let mut rows = Vec::new();
    let mut digests_match = true;
    let mut tables_identical = true;
    for spec in &specs {
        let a = snooze_scenario::run(spec)?;
        let b = snooze_scenario::run(spec)?;
        digests_match &= a.live.sim.digest() == b.live.sim.digest();
        let row_a = row_from_outcome(a.outcome, 128);
        let row_b = row_from_outcome(b.outcome, 128);
        let strip = |r: &E12Row| {
            render(std::slice::from_ref(r))
                .without_columns(&["wall ms"])
                .to_json()
        };
        tables_identical &= strip(&row_a) == strip(&row_b);
        rows.push(row_a);
    }
    Ok(TraceSmoke {
        rows,
        digests_match,
        tables_identical,
        trace_path: path_str.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small, fast variant of the default run: 12 LCs, the first 40
    /// trace VMs, 45 simulated minutes.
    fn small_rows() -> Vec<E12Row> {
        run(12, presets::REFERENCE_TRACE, 40, 2700, 0x12)
    }

    #[test]
    fn trace_replay_places_vms_under_both_consolidators() {
        let rows = small_rows();
        assert_eq!(rows.len(), 2, "one row per variant");
        assert_eq!(rows[0].name, "e12-trace-aco");
        assert_eq!(rows[1].name, "e12-trace-ffd");
        for r in &rows {
            assert_eq!(r.vms, 40, "max_vms caps the trace");
            assert!(r.placed > 0, "{}: trace VMs must place", r.name);
            assert_eq!(r.dead_letters, 0, "{}: fault-free run", r.name);
            assert!(r.energy_wh > 0.0);
            assert!(r.sla_samples > 0, "{}: loaded LCs were sampled", r.name);
            assert!(
                r.mean_performance > 0.0 && r.mean_performance <= 1.0,
                "{}: perf in (0, 1], got {}",
                r.name,
                r.mean_performance
            );
        }
        // Admission is identical across variants (placement is
        // round-robin; the consolidator only moves VMs afterwards).
        assert_eq!(rows[0].placed, rows[1].placed);
    }

    #[test]
    fn trace_scenario_is_deterministic_across_runs() {
        let spec = &presets::e12_trace(12, presets::REFERENCE_TRACE, 40, 2700, 0x12)[0];
        let a = snooze_scenario::run(spec).expect("compiles");
        let b = snooze_scenario::run(spec).expect("compiles");
        assert_eq!(
            a.live.sim.digest(),
            b.live.sim.digest(),
            "same spec, same seed: identical event history"
        );
        assert_eq!(a.outcome.sim_events, b.outcome.sim_events);
        assert_eq!(a.outcome.energy_wh, b.outcome.energy_wh);
        assert_eq!(a.outcome.migrations, b.outcome.migrations);
    }

    #[test]
    fn table_has_the_sla_columns() {
        let rendered = render(&small_rows()).render();
        assert!(rendered.contains("SLA viol"));
        assert!(rendered.contains("mean perf"));
        assert!(rendered.contains("energy Wh"));
    }
}
