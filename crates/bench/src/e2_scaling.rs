//! **E2 — scaling beyond exactly solvable sizes** (paper §III-B / \[10\]).
//!
//! The GRID'11 evaluation also compares ACO and FFD where CPLEX can no
//! longer certify optima. The comparison sweeps instance sizes and
//! reports hosts, utilization, energy and algorithm runtime for the FFD
//! family and ACO.

use std::time::Instant;

use snooze_cluster::power::LinearPower;
use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::energy::{compute_energy_j, placement_energy_wh, EnergyParams};
use snooze_consolidation::ffd::{BestFit, FirstFitDecreasing, SortKey};
use snooze_consolidation::problem::{Consolidator, InstanceGenerator};
use snooze_simcore::rng::SimRng;

use crate::table::{f2, pct, Table};
use crate::{PLACEMENT_HOLD_SECS, SOLVER_MACHINE_WATTS};

/// One algorithm's aggregate at one size.
#[derive(Clone, Debug)]
pub struct E2Cell {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Mean hosts used.
    pub hosts: f64,
    /// Mean utilization of used hosts.
    pub util: f64,
    /// Mean placement + compute energy, Wh.
    pub energy_wh: f64,
    /// Mean solve wall-time, milliseconds.
    pub runtime_ms: f64,
}

/// All algorithms at one size.
#[derive(Clone, Debug)]
pub struct E2Row {
    /// Number of VMs.
    pub n: usize,
    /// Per-algorithm results.
    pub cells: Vec<E2Cell>,
}

/// Run E2 at the given sizes.
pub fn run(sizes: &[usize], repeats: u64, base_seed: u64) -> Vec<E2Row> {
    let gen = InstanceGenerator::grid11();
    let power = LinearPower::grid5000();
    let algos: Vec<(&'static str, Box<dyn Consolidator>)> = vec![
        (
            "FFD-cpu",
            Box::new(FirstFitDecreasing { key: SortKey::Cpu }),
        ),
        ("FFD-l2", Box::new(FirstFitDecreasing { key: SortKey::L2 })),
        ("BFD", Box::new(BestFit { key: SortKey::L2 })),
        ("ACO", Box::new(AcoConsolidator::new(AcoParams::default()))),
        (
            "ACO+LS",
            Box::new(AcoConsolidator::new(AcoParams {
                local_search: true,
                ..AcoParams::default()
            })),
        ),
    ];

    sizes
        .iter()
        .map(|&n| {
            let mut cells: Vec<E2Cell> = algos
                .iter()
                .map(|(name, _)| E2Cell {
                    algo: name,
                    hosts: 0.0,
                    util: 0.0,
                    energy_wh: 0.0,
                    runtime_ms: 0.0,
                })
                .collect();
            for rep in 0..repeats {
                let mut rng = SimRng::new(base_seed ^ ((n as u64) << 20) ^ rep);
                let instance = gen.generate(n, &mut rng);
                for (i, (_, algo)) in algos.iter().enumerate() {
                    let start = Instant::now();
                    let sol = algo.consolidate(&instance).expect("solvable");
                    let elapsed = start.elapsed().as_secs_f64();
                    cells[i].hosts += sol.bins_used() as f64;
                    cells[i].util += sol.avg_used_bin_utilization(&instance);
                    cells[i].runtime_ms += elapsed * 1e3;
                    cells[i].energy_wh += placement_energy_wh(
                        &instance,
                        &sol,
                        &EnergyParams {
                            power: &power,
                            duration_secs: PLACEMENT_HOLD_SECS,
                            compute_overhead_j: compute_energy_j(elapsed, SOLVER_MACHINE_WATTS),
                        },
                    );
                }
            }
            for c in &mut cells {
                let k = repeats as f64;
                c.hosts /= k;
                c.util /= k;
                c.energy_wh /= k;
                c.runtime_ms /= k;
            }
            E2Row { n, cells }
        })
        .collect()
}

/// Default configuration used by `run_experiments e2`.
pub fn default_rows() -> Vec<E2Row> {
    run(&[50, 100, 200, 400], 3, 0xE2)
}

/// Render the table.
pub fn render(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2: scaling — hosts / utilization / energy / runtime per algorithm",
        &["n", "algo", "hosts", "util", "energy Wh", "runtime ms"],
    );
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.n.to_string(),
                c.algo.to_string(),
                f2(c.hosts),
                pct(c.util),
                f2(c.energy_wh),
                f2(c.runtime_ms),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aco_wins_or_ties_on_hosts_at_scale() {
        let rows = run(&[60], 2, 11);
        let row = &rows[0];
        let get = |name: &str| row.cells.iter().find(|c| c.algo == name).unwrap();
        let aco = get("ACO");
        let ffd = get("FFD-cpu");
        assert!(
            aco.hosts <= ffd.hosts + 1e-9,
            "ACO {} vs FFD {}",
            aco.hosts,
            ffd.hosts
        );
        assert!(
            aco.energy_wh <= ffd.energy_wh * 1.02,
            "energy should track host count"
        );
        // Greedy baselines are orders of magnitude faster — that's the
        // trade-off the paper acknowledges.
        assert!(aco.runtime_ms > ffd.runtime_ms);
    }
}
