//! **E6 — fault tolerance vs application performance** (paper §II-F).
//!
//! "The results have shown that the fault tolerance features of the
//! framework do not impact application performance." Reproduced by
//! running a placed workload, then killing the GL, a GM, and an LC in
//! sequence while sampling the delivered/demanded performance ratio of
//! every VM-hosting node. Management-plane failures (GL, GM) must leave
//! application performance untouched; only the LC failure (a *data*-plane
//! failure) loses its VMs — and recovers them when snapshot rescheduling
//! is enabled.

use snooze::group_manager::GroupManager;
use snooze::prelude::*;
use snooze_simcore::prelude::*;

use crate::simrun::{burst, deploy, Deployment};
use crate::table::{f2, Table};

/// One injected failure's outcome.
#[derive(Clone, Debug)]
pub struct E6Row {
    /// What was killed.
    pub event: &'static str,
    /// Injection time (s).
    pub at_s: u64,
    /// Mean application performance over the 60 s after injection
    /// (1.0 = no degradation).
    pub perf_after: f64,
    /// VMs alive 120 s after injection.
    pub vms_after: usize,
    /// Seconds until the control plane visibly healed (new GL elected /
    /// LCs re-assigned / VMs rescheduled), capped at 120.
    pub recovery_s: f64,
}

/// Outcome of the full scenario.
#[derive(Clone, Debug)]
pub struct E6Report {
    /// Per-failure rows.
    pub rows: Vec<E6Row>,
    /// VMs placed before any failure.
    pub placed: usize,
}

/// Walk the 180 s after a failure in 2 s steps: sample application
/// performance over the first 60 s and record when `recovered` first
/// holds. Returns `(mean_perf, recovery_seconds)` (recovery NaN if the
/// condition never held).
fn observe_after(
    live: &mut crate::simrun::LiveSystem,
    from: SimTime,
    mut recovered: impl FnMut(&crate::simrun::LiveSystem) -> bool,
) -> (f64, f64) {
    let mut acc = 0.0;
    let mut n = 0u32;
    let mut recovery = f64::NAN;
    for step in 1..=90u64 {
        let t = from + SimSpan::from_secs(step * 2);
        live.sim.run_until(t);
        if step * 2 <= 60 {
            acc += live.system.mean_performance(&live.sim, live.sim.now());
            n += 1;
        }
        if recovery.is_nan() && recovered(live) {
            recovery = (step * 2) as f64;
        }
    }
    (if n == 0 { 1.0 } else { acc / n as f64 }, recovery)
}

/// Run the E6 scenario.
pub fn run(seed: u64, reschedule: bool) -> E6Report {
    let config = SnoozeConfig {
        idle_suspend_after: None,
        reschedule_on_lc_failure: reschedule,
        ..SnoozeConfig::default()
    };
    let dep = Deployment {
        managers: 4,
        lcs: 24,
        eps: 1,
        seed,
    };
    let schedule = burst(48, SimTime::from_secs(30), 2.0, 4096.0, 0.7);
    let mut live = deploy(&dep, &config, schedule);
    live.run_until_settled(SimTime::from_secs(400));
    let placed = live.client().placed.len();

    let mut rows = Vec::new();

    // --- kill the GL ---
    let t_gl = live.sim.now() + SimSpan::from_secs(10);
    let gl = live.system.current_gl(&live.sim).expect("converged");
    live.sim.schedule_crash(t_gl, gl);
    let (perf, recovery) =
        observe_after(&mut live, t_gl, |l| l.system.current_gl(&l.sim).is_some());
    rows.push(E6Row {
        event: "GL crash",
        at_s: t_gl.as_micros() / 1_000_000,
        perf_after: perf,
        vms_after: live.system.total_vms(&live.sim),
        recovery_s: recovery,
    });

    // --- kill a GM ---
    live.sim.run_until(live.sim.now() + SimSpan::from_secs(60));
    let gm = live.system.active_gms(&live.sim)[0];
    let t_gm = live.sim.now() + SimSpan::from_secs(5);
    live.sim.schedule_crash(t_gm, gm);
    let (perf, recovery) = observe_after(&mut live, t_gm, |l| {
        let live_gms = l.system.active_gms(&l.sim);
        l.system.lcs.iter().all(|&lc| {
            !l.sim.is_alive(lc)
                || l.sim
                    .component_as::<LocalController>(lc)
                    .and_then(|c| c.assigned_gm())
                    .map(|g| live_gms.contains(&g))
                    .unwrap_or(false)
        })
    });
    rows.push(E6Row {
        event: "GM crash",
        at_s: t_gm.as_micros() / 1_000_000,
        perf_after: perf,
        vms_after: live.system.total_vms(&live.sim),
        recovery_s: recovery,
    });

    // --- kill an LC hosting VMs ---
    live.sim.run_until(live.sim.now() + SimSpan::from_secs(60));
    let victim = *live
        .system
        .lcs
        .iter()
        .max_by_key(|&&lc| {
            live.sim
                .component_as::<LocalController>(lc)
                .map(|l| l.hypervisor().guest_count())
                .unwrap_or(0)
        })
        .unwrap();
    let before = live.system.total_vms(&live.sim);
    let t_lc = live.sim.now() + SimSpan::from_secs(5);
    live.sim.schedule_crash(t_lc, victim);
    let (perf, recovery) = observe_after(&mut live, t_lc, |l| {
        reschedule && l.system.total_vms(&l.sim) >= before
    });
    let after = live.system.total_vms(&live.sim);
    rows.push(E6Row {
        event: if reschedule {
            "LC crash (snapshots)"
        } else {
            "LC crash"
        },
        at_s: t_lc.as_micros() / 1_000_000,
        perf_after: perf,
        vms_after: after,
        recovery_s: recovery,
    });

    let _ = live.system.current_gl(&live.sim);
    E6Report { rows, placed }
}

/// Default configuration used by `run_experiments e6`.
pub fn default_report() -> E6Report {
    run(0xE6, true)
}

/// Render the table.
pub fn render(report: &E6Report) -> Table {
    let mut t = Table::new(
        format!(
            "E6: fault tolerance — {} VMs placed; failures injected (paper: no impact on application performance)",
            report.placed
        ),
        &["event", "at s", "perf after", "VMs after", "recovery s"],
    );
    for r in &report.rows {
        t.row(vec![
            r.event.to_string(),
            r.at_s.to_string(),
            f2(r.perf_after),
            r.vms_after.to_string(),
            if r.recovery_s.is_nan() {
                "n/a".into()
            } else {
                f2(r.recovery_s)
            },
        ]);
    }
    t
}

/// Convenience used by the GM-mode check above (re-exported for tests).
pub fn gm_mode(sim: &Engine, gm: ComponentId) -> Option<Mode> {
    sim.component_as::<GroupManager>(gm).map(|g| g.mode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn management_failures_do_not_hurt_application_performance() {
        let report = run(17, true);
        assert!(
            report.placed >= 40,
            "most of the burst placed: {}",
            report.placed
        );
        let gl = &report.rows[0];
        let gm = &report.rows[1];
        assert!(
            gl.perf_after > 0.99,
            "GL crash must not degrade VMs: {gl:?}"
        );
        assert!(
            gm.perf_after > 0.99,
            "GM crash must not degrade VMs: {gm:?}"
        );
        assert!(gl.recovery_s <= 120.0);
        assert!(gm.recovery_s <= 120.0);
        // Snapshot recovery restores the LC's VMs.
        let lc = &report.rows[2];
        assert!(
            lc.vms_after >= gm.vms_after,
            "rescheduling restored VMs: {lc:?}"
        );
    }
}
