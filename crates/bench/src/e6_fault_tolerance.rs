//! **E6 — fault tolerance vs application performance** (paper §II-F).
//!
//! "The results have shown that the fault tolerance features of the
//! framework do not impact application performance." Reproduced by
//! running a placed workload, then killing the GL, a GM, and an LC in
//! sequence while sampling the delivered/demanded performance ratio of
//! every VM-hosting node. Management-plane failures (GL, GM) must leave
//! application performance untouched; only the LC failure (a *data*-plane
//! failure) loses its VMs — and recovers them when snapshot rescheduling
//! is enabled. The whole sequence is a declarative scenario
//! (`scenarios/e6.toml`): fault phases with observe blocks.

use snooze::prelude::*;
use snooze_scenario::presets;
use snooze_simcore::prelude::*;

use crate::table::{f2, Table};

/// One injected failure's outcome.
#[derive(Clone, Debug)]
pub struct E6Row {
    /// What was killed.
    pub event: String,
    /// Injection time (s).
    pub at_s: u64,
    /// Mean application performance over the 60 s after injection
    /// (1.0 = no degradation).
    pub perf_after: f64,
    /// VMs alive 120 s after injection.
    pub vms_after: usize,
    /// Seconds until the control plane visibly healed (new GL elected /
    /// LCs re-assigned / VMs rescheduled), NaN if not within 180 s.
    pub recovery_s: f64,
}

/// Outcome of the full scenario.
#[derive(Clone, Debug)]
pub struct E6Report {
    /// Per-failure rows.
    pub rows: Vec<E6Row>,
    /// VMs placed before any failure.
    pub placed: usize,
}

/// Run the E6 scenario.
pub fn run(seed: u64, reschedule: bool) -> E6Report {
    let spec = presets::e6(seed, reschedule);
    let o = snooze_scenario::run(&spec)
        .expect("E6 preset compiles")
        .outcome;
    E6Report {
        rows: o
            .faults
            .iter()
            .map(|f| E6Row {
                event: f.label.clone(),
                at_s: f.at.as_micros() / 1_000_000,
                perf_after: f.perf_after,
                vms_after: f.vms_after,
                recovery_s: f.recovery_s,
            })
            .collect(),
        placed: o.settle_placed.unwrap_or(0),
    }
}

/// Default configuration used by `run_experiments e6`.
pub fn default_report() -> E6Report {
    run(0xE6, true)
}

/// Render the table.
pub fn render(report: &E6Report) -> Table {
    let mut t = Table::new(
        format!(
            "E6: fault tolerance — {} VMs placed; failures injected (paper: no impact on application performance)",
            report.placed
        ),
        &["event", "at s", "perf after", "VMs after", "recovery s"],
    );
    for r in &report.rows {
        t.row(vec![
            r.event.to_string(),
            r.at_s.to_string(),
            f2(r.perf_after),
            r.vms_after.to_string(),
            if r.recovery_s.is_nan() {
                // The observation window is 90 × 2 s: a NaN means the
                // recovery condition never held within it.
                "never (>180 s)".into()
            } else {
                f2(r.recovery_s)
            },
        ]);
    }
    t
}

/// Convenience used by the GM-mode check above (re-exported for tests).
pub fn gm_mode(sim: &Engine<SnoozeNode>, gm: ComponentId) -> Option<Mode> {
    sim.get(gm).and_then(|c| c.as_gm()).map(|g| g.mode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn management_failures_do_not_hurt_application_performance() {
        let report = run(17, true);
        assert!(
            report.placed >= 40,
            "most of the burst placed: {}",
            report.placed
        );
        let gl = &report.rows[0];
        let gm = &report.rows[1];
        assert!(
            gl.perf_after > 0.99,
            "GL crash must not degrade VMs: {gl:?}"
        );
        assert!(
            gm.perf_after > 0.99,
            "GM crash must not degrade VMs: {gm:?}"
        );
        assert!(gl.recovery_s <= 120.0);
        assert!(gm.recovery_s <= 120.0);
        // Snapshot recovery restores the LC's VMs.
        let lc = &report.rows[2];
        assert!(
            lc.vms_after >= gm.vms_after,
            "rescheduling restored VMs: {lc:?}"
        );
    }

    #[test]
    fn never_recovering_rows_render_explicitly() {
        let report = E6Report {
            rows: vec![E6Row {
                event: "LC crash".into(),
                at_s: 550,
                perf_after: 1.0,
                vms_after: 42,
                recovery_s: f64::NAN,
            }],
            placed: 48,
        };
        let rendered = render(&report).render();
        assert!(
            rendered.contains("never (>180 s)"),
            "NaN recovery must render explicitly, got:\n{rendered}"
        );
    }
}
