//! The `--obs-smoke` CI gate: run the E11 256-LC smoke shape three
//! times with full observability (windows, profiler, flight recorder,
//! SLO watchdogs and a forced incident trigger) and three times
//! without, interleaved, then check
//!
//! 1. observation is invisible to the simulation — the engine digest of
//!    the observed run equals the plain run's;
//! 2. every observability artifact is byte-deterministic — the two
//!    observed runs produce identical windows JSONL, folded-stack
//!    profile and incident-dump TOML;
//! 3. the forced incident dump round-trips through the `IncidentDoc`
//!    parser (so `--check-scenarios` can always re-read it);
//! 4. the overhead is bounded — observed throughput must stay within
//!    10% of the plain run measured in the same invocation (both
//!    advisory wall-clock, compared run-to-run so machine speed cancels
//!    out).

use snooze_scenario::incident::{is_incident, IncidentDoc};
use snooze_scenario::spec::ScenarioSpec;
use snooze_scenario::{presets, ScenarioRun};

use crate::e11_kilonode::{self, E11Row};
use crate::table::{f2, Table};

/// When the forced trigger fires: two minutes in, mid-arrival-wave, so
/// the ring is full of real placement traffic.
const FORCE_AT_MS: f64 = 120_000.0;

/// Everything the gate measured, for the binary to print and assert on.
pub struct ObsSmoke {
    /// The no-observability baseline row.
    pub baseline: E11Row,
    /// The fully-observed row (first observed run).
    pub observed: E11Row,
    /// Engine digest equality between baseline and observed runs.
    pub digest_match: bool,
    /// Byte-identity of windows JSONL / folded profile / incident TOML
    /// across the two observed runs.
    pub bytes_identical: bool,
    /// Windows the observed run closed.
    pub windows: u64,
    /// The observed run's windowed time-series, JSONL.
    pub windows_jsonl: String,
    /// The observed run's windowed time-series, CSV.
    pub windows_csv: String,
    /// The observed run's folded-stack profile.
    pub folded: String,
    /// The forced incident dump, canonical TOML.
    pub incident_toml: String,
    /// Observed / baseline throughput (events per wall-second) ratio.
    pub throughput_ratio: f64,
}

/// The smoke spec with the full observability surface switched on.
pub fn observed_spec() -> ScenarioSpec {
    let mut spec = presets::e11(256, false, 0xE11);
    let obs = spec.obs.as_mut().expect("e11 preset carries [obs]");
    obs.force_incident_at_ms = Some(FORCE_AT_MS);
    spec
}

/// The same simulation with every observer removed.
pub fn plain_spec() -> ScenarioSpec {
    let mut spec = observed_spec();
    spec.obs = None;
    spec.slos.clear();
    spec
}

fn observe_once() -> Result<(ScenarioRun, String, String, String), String> {
    let run = snooze_scenario::run(&observed_spec())?;
    let log = run
        .windows
        .as_ref()
        .ok_or("observed run produced no window log")?;
    let jsonl = log.to_jsonl();
    let csv = log.to_csv();
    let incident = run
        .incidents
        .iter()
        .find(|i| i.trigger == "forced")
        .ok_or("forced trigger produced no incident dump")?
        .to_toml();
    Ok((run, jsonl, csv, incident))
}

/// Run the gate. Returns the measurements; the binary decides pass/fail
/// so the failure output can enumerate every violated property.
///
/// Each variant runs three times, interleaved — the first two observed
/// runs double as the byte-identity check — and the throughput ratio
/// compares the *fastest* run of each triple: the advisory wall clock
/// swings ±20% under a noisy scheduler, and minima converge on the true
/// cost while means do not.
pub fn run() -> Result<ObsSmoke, String> {
    let plain = snooze_scenario::run(&plain_spec())?;
    let plain_digest = plain.live.sim.digest();
    let (mut run_a, jsonl_a, csv_a, incident_a) = observe_once()?;
    let mut plain_wall = plain.outcome.wall_ms;
    let mut baseline = e11_kilonode::row_from_run(plain, 256);
    let (mut run_b, jsonl_b, _, incident_b) = observe_once()?;
    plain_wall = plain_wall.min(snooze_scenario::run(&plain_spec())?.outcome.wall_ms);
    let mut obs_wall = run_b.outcome.wall_ms.min(observe_once()?.0.outcome.wall_ms);
    plain_wall = plain_wall.min(snooze_scenario::run(&plain_spec())?.outcome.wall_ms);
    baseline.wall_ms = plain_wall;

    let digest_match =
        run_a.live.sim.digest() == plain_digest && run_b.live.sim.digest() == plain_digest;
    let folded = run_a.live.sim.profile_folded();
    let folded_b = run_b.live.sim.profile_folded();
    let bytes_identical = jsonl_a == jsonl_b && folded == folded_b && incident_a == incident_b;
    let windows = run_a.outcome.windows;
    obs_wall = obs_wall.min(run_a.outcome.wall_ms);
    let mut observed = e11_kilonode::row_from_run(run_a, 256);
    observed.wall_ms = obs_wall;

    if !is_incident(&incident_a) {
        return Err("incident dump missed the `trigger = ` discriminator".into());
    }
    let reparsed = IncidentDoc::from_toml(&incident_a)
        .map_err(|e| format!("incident dump does not re-parse: {e}"))?;
    if reparsed.to_toml() != incident_a {
        return Err("incident dump is not in canonical form".into());
    }

    let throughput_ratio = observed.events_per_sec() / baseline.events_per_sec();
    Ok(ObsSmoke {
        baseline,
        observed,
        digest_match,
        bytes_identical,
        windows,
        windows_jsonl: jsonl_a,
        windows_csv: csv_a,
        folded,
        incident_toml: incident_a,
        throughput_ratio,
    })
}

/// The two-row overhead comparison behind the checked-in
/// `BENCH_E11_OBS.json`: the same simulation with and without the full
/// observability surface. Sim events and dead letters are exact; wall
/// and throughput columns are advisory (best-of-3 on the measuring
/// host).
pub fn comparison_table(s: &ObsSmoke) -> Table {
    let mut t = Table::new(
        "E11 obs overhead (256-LC smoke, best-of-3 interleaved runs; wall columns advisory)",
        &[
            "variant",
            "sim events",
            "dead letters",
            "windows",
            "digest match",
            "wall ms",
            "events/s",
            "vs plain",
        ],
    );
    t.row(vec![
        format!("{}-plain", s.baseline.name),
        s.baseline.sim_events.to_string(),
        s.baseline.dead_letters.to_string(),
        "-".into(),
        "-".into(),
        f2(s.baseline.wall_ms),
        format!("{:.0}", s.baseline.events_per_sec()),
        "100.0%".into(),
    ]);
    t.row(vec![
        format!("{}-obs", s.observed.name),
        s.observed.sim_events.to_string(),
        s.observed.dead_letters.to_string(),
        s.windows.to_string(),
        if s.digest_match { "yes" } else { "NO" }.into(),
        f2(s.observed.wall_ms),
        format!("{:.0}", s.observed.events_per_sec()),
        format!("{:.1}%", s.throughput_ratio * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_and_plain_specs_differ_only_in_observers() {
        let o = observed_spec();
        let p = plain_spec();
        assert!(o.obs.is_some() && !o.slos.is_empty());
        assert!(p.obs.is_none() && p.slos.is_empty());
        assert_eq!(o.seed, p.seed);
        assert_eq!(o.workload, p.workload);
        assert_eq!(o.phases, p.phases);
    }
}
