//! **E11 — kilonode scale** (beyond the paper's testbed).
//!
//! The paper evaluated Snooze on 144 nodes with up to 500 VMs (§II-F);
//! the typed message layer removes the per-delivery boxing that made
//! larger simulated fleets expensive, so E11 pushes the same submission
//! and self-healing measurements to 1024 LCs under 8 GMs + 1 GL with a
//! 5000-VM staggered fleet — ~7× the paper's scale. The table reports
//! placement success, submission→running latency, GL re-election time
//! with the full fleet in flight, and an *advisory* engine throughput
//! (simulated events per wall-clock second, via `simcore::wallclock`).
//! `BENCH_E11.json` at the workspace root is the checked-in baseline.
//!
//! The runs are declarative scenarios (`scenarios/e11.toml` is the
//! checked-in copy of the full shape); `run_experiments --e11-smoke`
//! runs the reduced 256-LC fault-free shape as a CI gate: the throughput
//! column must be present and the run must finish with zero dead
//! letters.

use std::collections::BTreeMap;

use snooze_scenario::presets;
use snooze_scenario::ScenarioRun;

use crate::table::{f2, Table};

/// One E11 run's outcome.
#[derive(Clone, Debug)]
pub struct E11Row {
    /// Scenario name (`e11-kilonode-1024`, `e11-smoke-256`, …).
    pub name: String,
    /// LCs in the cluster.
    pub lcs: usize,
    /// VMs submitted.
    pub vms: usize,
    /// VMs successfully placed.
    pub placed: usize,
    /// VMs rejected.
    pub rejected: usize,
    /// Mean submission→running latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_s: f64,
    /// Seconds from GL crash to re-election (NaN in the fault-free
    /// smoke shape).
    pub gl_recovery_s: f64,
    /// Simulator events executed.
    pub sim_events: u64,
    /// Deliveries that found no live receiver. Zero in the fault-free
    /// shape; after a GL crash, in-flight traffic to the dead manager
    /// legitimately counts here.
    pub dead_letters: u64,
    /// Advisory wall-clock of the whole run, ms.
    pub wall_ms: f64,
    /// Worst-offending `dead_letters{msg=..}` variant, rendered
    /// `variant x<count>` (`-` when nothing was dropped). Attributes
    /// the fault shape's dead letters to the protocol traffic that was
    /// in flight toward the dead manager.
    pub top_dead_letter: String,
    /// The profiler's three busiest `(component kind, message variant)`
    /// handlers by deterministic event count (`-` without a profiler).
    pub top_handlers: String,
}

impl E11Row {
    /// Advisory engine throughput: simulated events per wall-clock
    /// second (NaN when the clock read 0 ms).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.sim_events as f64 / (self.wall_ms / 1000.0)
        } else {
            f64::NAN
        }
    }
}

/// The `dead_letters{reason,msg}` counters summed per message variant,
/// worst first (ties broken alphabetically, so the string is stable).
pub fn dead_letter_breakdown(run: &ScenarioRun) -> Vec<(String, u64)> {
    let mut by_variant: BTreeMap<String, u64> = BTreeMap::new();
    for (name, labels, n) in run.live.sim.metrics().counters_iter() {
        if name == "dead_letters" {
            let variant = labels.get("msg").unwrap_or("unclassified").to_string();
            *by_variant.entry(variant).or_insert(0) += n;
        }
    }
    let mut rows: Vec<(String, u64)> = by_variant.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Fold a finished scenario run into an [`E11Row`], resolving the
/// dead-letter breakdown and the profiler's busiest handlers.
pub fn row_from_run(mut run: ScenarioRun, lcs: usize) -> E11Row {
    let top_dead_letter = dead_letter_breakdown(&run)
        .first()
        .map(|(v, n)| format!("{v} x{n}"))
        .unwrap_or_else(|| "-".into());
    let mut handlers = run.live.sim.profile_rows();
    handlers.sort_by(|a, b| {
        b.events
            .cmp(&a.events)
            .then_with(|| (&a.kind, &a.variant).cmp(&(&b.kind, &b.variant)))
    });
    let top_handlers = if handlers.is_empty() {
        "-".into()
    } else {
        handlers
            .iter()
            .take(3)
            .map(|r| format!("{}/{} x{}", r.kind, r.variant, r.events))
            .collect::<Vec<_>>()
            .join("; ")
    };
    let o = run.outcome;
    let gl_recovery_s = o.faults.first().map(|f| f.recovery_s).unwrap_or(f64::NAN);
    E11Row {
        name: o.name,
        lcs,
        vms: o.requested_vms,
        placed: o.placed,
        rejected: o.rejected,
        mean_latency_s: o.mean_latency_s,
        p95_latency_s: o.p95_latency_s,
        gl_recovery_s,
        sim_events: o.sim_events,
        dead_letters: o.dead_letters,
        wall_ms: o.wall_ms,
        top_dead_letter,
        top_handlers,
    }
}

/// Run one E11 shape: `lcs` nodes, the scaled fleet, optionally the GL
/// crash + re-election observation.
pub fn run(lcs: usize, with_fault: bool, seed: u64) -> E11Row {
    let spec = presets::e11(lcs, with_fault, seed);
    row_from_run(
        snooze_scenario::run(&spec).expect("E11 preset compiles"),
        lcs,
    )
}

/// The full E11 configuration used by `run_experiments e11`.
pub fn default_rows() -> Vec<E11Row> {
    vec![run(1024, true, 0xE11)]
}

/// The reduced fault-free shape behind `run_experiments --e11-smoke`.
pub fn smoke_row() -> E11Row {
    run(256, false, 0xE11)
}

/// Render the table.
pub fn render(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11: kilonode scale (1024 LCs, 5000 VMs; paper testbed was 144 nodes / 500 VMs)",
        &[
            "scenario",
            "LCs",
            "VMs",
            "placed",
            "rejected",
            "mean lat s",
            "p95 lat s",
            "GL reelect s",
            "sim events",
            "dead letters",
            "top dead letter",
            "top handlers",
            "wall ms",
            "events/s",
        ],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.lcs.to_string(),
            r.vms.to_string(),
            r.placed.to_string(),
            r.rejected.to_string(),
            f2(r.mean_latency_s),
            f2(r.p95_latency_s),
            if r.gl_recovery_s.is_nan() {
                "-".into()
            } else {
                f2(r.gl_recovery_s)
            },
            r.sim_events.to_string(),
            r.dead_letters.to_string(),
            r.top_dead_letter.clone(),
            r.top_handlers.clone(),
            f2(r.wall_ms),
            if r.events_per_sec().is_nan() {
                "-".into()
            } else {
                format!("{:.0}", r.events_per_sec())
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_down_smoke_shape_places_everything_cleanly() {
        // 32 LCs carry the same per-node pressure as the kilonode run
        // (the preset scales the fleet with the node count).
        let r = run(32, false, 0xE11);
        assert_eq!(r.vms, 32 * 5000 / 1024);
        assert_eq!(r.placed, r.vms, "full placement at ~61% load");
        assert_eq!(r.rejected, 0);
        assert_eq!(r.dead_letters, 0, "fault-free run must not drop messages");
        assert!(r.mean_latency_s.is_finite() && r.mean_latency_s > 0.0);
    }

    #[test]
    fn table_has_the_throughput_column() {
        let rows = vec![run(16, false, 3)];
        let rendered = render(&rows).render();
        assert!(rendered.contains("events/s"));
        assert!(rendered.contains("dead letters"));
        assert!(rendered.contains("top dead letter"));
        assert!(rendered.contains("top handlers"));
    }

    #[test]
    fn clean_run_attributes_handlers_but_no_dead_letters() {
        let r = run(16, false, 3);
        assert_eq!(r.top_dead_letter, "-", "fault-free run drops nothing");
        // The preset enables the profiler, so the busiest handlers are
        // attributed; LC heartbeat traffic dominates any settle phase.
        assert_ne!(r.top_handlers, "-");
        assert!(r.top_handlers.contains("lc/"), "got: {}", r.top_handlers);
    }
}
