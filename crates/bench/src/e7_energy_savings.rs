//! **E7 — energy savings from power management** (paper §III).
//!
//! Snooze's energy story has three stages: (1) idle nodes suspend after
//! the administrator's idle threshold; (2) underload relocation drains
//! lightly loaded nodes to create idle time; (3) periodic ACO
//! reconfiguration packs moderately loaded nodes. This experiment runs
//! the same staggered, partly-terminating workload under three
//! configurations — no power management, suspend-only, and suspend +
//! ACO reconfiguration — and reports cluster energy over the horizon.

use snooze::prelude::*;
use snooze::scheduling::placement::PlacementKind;
use snooze::scheduling::reconfiguration::ReconfigurationConfig;
use snooze_consolidation::aco::AcoParams;
use snooze_simcore::prelude::*;
use snooze_simcore::rng::SimRng;

use crate::simrun::{deploy, vm_item, Deployment};
use crate::table::{f2, pct, Table};

/// One configuration's outcome.
#[derive(Clone, Debug)]
pub struct E7Row {
    /// Configuration label.
    pub config: &'static str,
    /// Total cluster energy over the horizon, Wh.
    pub energy_wh: f64,
    /// Savings vs the no-power-management baseline.
    pub savings: f64,
    /// Live migrations performed.
    pub migrations: u64,
    /// Suspend transitions performed.
    pub suspends: u64,
    /// Mean powered-on node count (sampled every minute).
    pub mean_nodes_on: f64,
    /// VMs placed.
    pub placed: usize,
}

fn schedule(n: usize, seed: u64) -> Vec<ScheduledVm> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let cores = rng.uniform(1.0, 3.0);
            let mem = rng.uniform(2048.0, 8192.0);
            let util = rng.uniform(0.4, 0.9);
            let mut item = vm_item(i as u64, cores, mem, util);
            item.at = SimTime::from_secs(30) + SimSpan::from_secs(rng.range(0, 600) as u64);
            // Half the fleet terminates mid-run, creating the idle times
            // the energy manager exploits.
            if i % 2 == 0 {
                item.lifetime = Some(SimSpan::from_secs(rng.range(1200, 3600) as u64));
            }
            item
        })
        .collect()
}

fn run_one(
    label: &'static str,
    config: SnoozeConfig,
    lcs: usize,
    vms: usize,
    horizon: SimTime,
    seed: u64,
) -> E7Row {
    let dep = Deployment {
        managers: 3,
        lcs,
        eps: 1,
        seed,
    };
    let mut live = deploy(&dep, &config, schedule(vms, seed ^ 0xF1EE7));
    let mut on_samples = 0.0;
    let mut samples = 0u32;
    while live.sim.now() < horizon {
        let next = (live.sim.now() + SimSpan::from_secs(60)).min(horizon);
        live.sim.run_until(next);
        let (on, transitioning, _) = live.system.power_census(&live.sim);
        on_samples += (on + transitioning) as f64;
        samples += 1;
    }
    let energy = live.system.total_energy_wh(&live.sim, horizon);
    let (migrations, suspends) = live
        .system
        .lcs
        .iter()
        .filter_map(|&lc| live.sim.component_as::<LocalController>(lc))
        .fold((0u64, 0u64), |(m, s), l| {
            (m + l.stats.migrations_out, s + l.stats.suspensions)
        });
    E7Row {
        config: label,
        energy_wh: energy,
        savings: 0.0, // filled in by `run`
        migrations,
        suspends,
        mean_nodes_on: if samples > 0 {
            on_samples / samples as f64
        } else {
            0.0
        },
        placed: live.client().placed.len(),
    }
}

/// Run E7 with `lcs` nodes and `vms` VMs over `horizon_secs`.
pub fn run(lcs: usize, vms: usize, horizon_secs: u64, seed: u64) -> Vec<E7Row> {
    let horizon = SimTime::from_secs(horizon_secs);
    let base = SnoozeConfig {
        placement: PlacementKind::RoundRobin, // spread first; PM must earn its keep
        ..SnoozeConfig::default()
    };

    let no_pm = SnoozeConfig {
        idle_suspend_after: None,
        ..base.clone()
    };
    let pm = SnoozeConfig {
        idle_suspend_after: Some(SimSpan::from_secs(120)),
        ..base.clone()
    };
    let pm_reconf = SnoozeConfig {
        idle_suspend_after: Some(SimSpan::from_secs(120)),
        reconfiguration: Some(ReconfigurationConfig {
            period: SimSpan::from_secs(900),
            aco: AcoParams {
                n_cycles: 15,
                ..AcoParams::default()
            },
            max_migrations: 12,
        }),
        ..base
    };

    let mut rows = vec![
        run_one("no power mgmt", no_pm, lcs, vms, horizon, seed),
        run_one("suspend only", pm, lcs, vms, horizon, seed),
        run_one("suspend + ACO reconf", pm_reconf, lcs, vms, horizon, seed),
    ];
    let baseline = rows[0].energy_wh;
    for r in &mut rows {
        r.savings = 1.0 - r.energy_wh / baseline;
    }
    rows
}

/// Default configuration used by `run_experiments e7`.
pub fn default_rows() -> Vec<E7Row> {
    run(32, 48, 7200, 0xE7)
}

/// One idle-threshold setting's outcome (E7b).
#[derive(Clone, Debug)]
pub struct ThresholdRow {
    /// Idle time before suspend, seconds.
    pub threshold_s: u64,
    /// Total energy, Wh.
    pub energy_wh: f64,
    /// Suspend transitions.
    pub suspends: u64,
    /// Wake-ups commanded (each costs ~25 s of placement latency).
    pub wakeups: u64,
    /// VMs placed.
    pub placed: usize,
}

/// E7b: sweep the administrator's idle threshold. Aggressive thresholds
/// save more energy but churn nodes through suspend/resume (and make
/// placements wait on wake-ups); the sweep exposes the knee.
pub fn run_threshold_sweep(
    thresholds_s: &[u64],
    lcs: usize,
    vms: usize,
    horizon_secs: u64,
    seed: u64,
) -> Vec<ThresholdRow> {
    let horizon = SimTime::from_secs(horizon_secs);
    thresholds_s
        .iter()
        .map(|&th| {
            let config = SnoozeConfig {
                placement: PlacementKind::RoundRobin,
                idle_suspend_after: Some(SimSpan::from_secs(th)),
                ..SnoozeConfig::default()
            };
            let dep = Deployment {
                managers: 3,
                lcs,
                eps: 1,
                seed: seed ^ th,
            };
            let mut live = deploy(&dep, &config, schedule(vms, seed ^ 0xF1EE7));
            live.sim.run_until(horizon);
            let (suspends, wakeups) = live
                .system
                .lcs
                .iter()
                .filter_map(|&lc| {
                    live.sim
                        .component_as::<snooze::prelude::LocalController>(lc)
                })
                .fold((0u64, 0u64), |(s, w), l| {
                    (s + l.stats.suspensions, w + l.stats.wakeups)
                });
            ThresholdRow {
                threshold_s: th,
                energy_wh: live.system.total_energy_wh(&live.sim, horizon),
                suspends,
                wakeups,
                placed: live.client().placed.len(),
            }
        })
        .collect()
}

/// Default E7b sweep.
pub fn default_threshold_rows() -> Vec<ThresholdRow> {
    run_threshold_sweep(&[30, 120, 600, 1800], 24, 36, 7200, 0xE7B)
}

/// Render the E7b table.
pub fn render_thresholds(rows: &[ThresholdRow]) -> Table {
    let mut t = Table::new(
        "E7b: idle-threshold sweep — energy vs suspend churn",
        &["threshold s", "energy Wh", "suspends", "wakeups", "placed"],
    );
    for r in rows {
        t.row(vec![
            r.threshold_s.to_string(),
            f2(r.energy_wh),
            r.suspends.to_string(),
            r.wakeups.to_string(),
            r.placed.to_string(),
        ]);
    }
    t
}

/// Render the table.
pub fn render(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7: cluster energy under power management (paper §III: suspend idle nodes, drain underloaded ones, consolidate)",
        &["config", "energy Wh", "savings", "migrations", "suspends", "mean nodes on", "placed"],
    );
    for r in rows {
        t.row(vec![
            r.config.to_string(),
            f2(r.energy_wh),
            pct(r.savings),
            r.migrations.to_string(),
            r.suspends.to_string(),
            f2(r.mean_nodes_on),
            r.placed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_management_saves_energy_without_losing_placements() {
        // Small, fast variant of the default run.
        let rows = run(8, 12, 1800, 23);
        let no_pm = &rows[0];
        let pm = &rows[1];
        assert_eq!(no_pm.placed, 12);
        assert_eq!(pm.placed, 12);
        assert!(
            pm.energy_wh < no_pm.energy_wh,
            "suspend must save energy: {} vs {}",
            pm.energy_wh,
            no_pm.energy_wh
        );
        assert!(pm.suspends > 0);
        assert!(pm.mean_nodes_on < no_pm.mean_nodes_on);
    }
}
