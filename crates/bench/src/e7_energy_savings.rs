//! **E7 — energy savings from power management** (paper §III).
//!
//! Snooze's energy story has three stages: (1) idle nodes suspend after
//! the administrator's idle threshold; (2) underload relocation drains
//! lightly loaded nodes to create idle time; (3) periodic ACO
//! reconfiguration packs moderately loaded nodes. This experiment runs
//! the same staggered, partly-terminating workload under three
//! configurations — no power management, suspend-only, and suspend +
//! ACO reconfiguration — and reports cluster energy over the horizon.
//! The three configurations are scenario variants (`scenarios/e7.toml`);
//! the threshold sweep is `scenarios/e7b.toml`.

use snooze_scenario::presets;

use crate::table::{f2, pct, Table};

/// One configuration's outcome.
#[derive(Clone, Debug)]
pub struct E7Row {
    /// Configuration label.
    pub config: &'static str,
    /// Total cluster energy over the horizon, Wh.
    pub energy_wh: f64,
    /// Savings vs the no-power-management baseline.
    pub savings: f64,
    /// Live migrations performed.
    pub migrations: u64,
    /// Suspend transitions performed.
    pub suspends: u64,
    /// Mean powered-on node count (sampled every minute).
    pub mean_nodes_on: f64,
    /// VMs placed.
    pub placed: usize,
}

/// Run E7 with `lcs` nodes and `vms` VMs over `horizon_secs`.
pub fn run(lcs: usize, vms: usize, horizon_secs: u64, seed: u64) -> Vec<E7Row> {
    let mut rows: Vec<E7Row> = presets::e7(lcs, vms, horizon_secs, seed)
        .iter()
        .zip(presets::E7_LABELS)
        .map(|(spec, label)| {
            let o = snooze_scenario::run(spec)
                .expect("E7 preset compiles")
                .outcome;
            E7Row {
                config: label,
                energy_wh: o.energy_wh,
                savings: 0.0, // filled in below
                migrations: o.migrations,
                suspends: o.suspends,
                mean_nodes_on: o.mean_nodes_on,
                placed: o.placed,
            }
        })
        .collect();
    let baseline = rows[0].energy_wh;
    for r in &mut rows {
        r.savings = 1.0 - r.energy_wh / baseline;
    }
    rows
}

/// Default configuration used by `run_experiments e7`.
pub fn default_rows() -> Vec<E7Row> {
    run(32, 48, 7200, 0xE7)
}

/// One idle-threshold setting's outcome (E7b).
#[derive(Clone, Debug)]
pub struct ThresholdRow {
    /// Idle time before suspend, seconds.
    pub threshold_s: u64,
    /// Total energy, Wh.
    pub energy_wh: f64,
    /// Suspend transitions.
    pub suspends: u64,
    /// Wake-ups commanded (each costs ~25 s of placement latency).
    pub wakeups: u64,
    /// VMs placed.
    pub placed: usize,
}

/// E7b: sweep the administrator's idle threshold. Aggressive thresholds
/// save more energy but churn nodes through suspend/resume (and make
/// placements wait on wake-ups); the sweep exposes the knee.
pub fn run_threshold_sweep(
    thresholds_s: &[u64],
    lcs: usize,
    vms: usize,
    horizon_secs: u64,
    seed: u64,
) -> Vec<ThresholdRow> {
    thresholds_s
        .iter()
        .zip(presets::e7b(thresholds_s, lcs, vms, horizon_secs, seed).iter())
        .map(|(&th, spec)| {
            let o = snooze_scenario::run(spec)
                .expect("E7b preset compiles")
                .outcome;
            ThresholdRow {
                threshold_s: th,
                energy_wh: o.energy_wh,
                suspends: o.suspends,
                wakeups: o.wakeups,
                placed: o.placed,
            }
        })
        .collect()
}

/// Default E7b sweep.
pub fn default_threshold_rows() -> Vec<ThresholdRow> {
    run_threshold_sweep(&[30, 120, 600, 1800], 24, 36, 7200, 0xE7B)
}

/// Render the E7b table.
pub fn render_thresholds(rows: &[ThresholdRow]) -> Table {
    let mut t = Table::new(
        "E7b: idle-threshold sweep — energy vs suspend churn",
        &["threshold s", "energy Wh", "suspends", "wakeups", "placed"],
    );
    for r in rows {
        t.row(vec![
            r.threshold_s.to_string(),
            f2(r.energy_wh),
            r.suspends.to_string(),
            r.wakeups.to_string(),
            r.placed.to_string(),
        ]);
    }
    t
}

/// Render the table.
pub fn render(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7: cluster energy under power management (paper §III: suspend idle nodes, drain underloaded ones, consolidate)",
        &["config", "energy Wh", "savings", "migrations", "suspends", "mean nodes on", "placed"],
    );
    for r in rows {
        t.row(vec![
            r.config.to_string(),
            f2(r.energy_wh),
            pct(r.savings),
            r.migrations.to_string(),
            r.suspends.to_string(),
            f2(r.mean_nodes_on),
            r.placed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_management_saves_energy_without_losing_placements() {
        // Small, fast variant of the default run.
        let rows = run(8, 12, 1800, 23);
        let no_pm = &rows[0];
        let pm = &rows[1];
        assert_eq!(no_pm.placed, 12);
        assert_eq!(pm.placed, 12);
        assert!(
            pm.energy_wh < no_pm.energy_wh,
            "suspend must save energy: {} vs {}",
            pm.energy_wh,
            no_pm.energy_wh
        );
        assert!(pm.suspends > 0);
        assert!(pm.mean_nodes_on < no_pm.mean_nodes_on);
    }
}
