//! **E8 — ablations**: ACO parameter sensitivity and the FFD
//! sort-dimension criticism.
//!
//! Two design claims get stress-tested here:
//!
//! 1. §I's criticism that greedy heuristics "waste a lot of resources by
//!    presorting the VMs according to a single dimension (e.g. CPU)" —
//!    the FFD sweep compares all five sort keys.
//! 2. The ACO parameters (ants, cycles, evaporation ρ, exponents α/β)
//!    trade solution quality against compute; the sweep shows where the
//!    returns diminish, which justifies the defaults in
//!    [`AcoParams::default`].

use std::time::Instant;

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::ffd::{FirstFitDecreasing, SortKey};
use snooze_consolidation::problem::{Consolidator, Instance, InstanceGenerator};
use snooze_simcore::rng::SimRng;

use crate::table::{f2, pct, Table};

/// One parameter point of the ACO sweep.
#[derive(Clone, Debug)]
pub struct AcoAblationRow {
    /// Which parameter was varied and to what.
    pub setting: String,
    /// Mean hosts used.
    pub hosts: f64,
    /// Mean runtime, ms.
    pub runtime_ms: f64,
}

/// One FFD sort-key result.
#[derive(Clone, Debug)]
pub struct FfdAblationRow {
    /// Sort key label.
    pub key: &'static str,
    /// Mean hosts used.
    pub hosts: f64,
    /// Mean utilization of used hosts.
    pub util: f64,
}

fn instances(n: usize, repeats: u64, seed: u64) -> Vec<Instance> {
    let gen = InstanceGenerator::grid11();
    (0..repeats)
        .map(|rep| gen.generate(n, &mut SimRng::new(seed ^ rep)))
        .collect()
}

fn mean_hosts(aco: &AcoConsolidator, instances: &[Instance]) -> (f64, f64) {
    let mut hosts = 0.0;
    let mut ms = 0.0;
    for inst in instances {
        let start = Instant::now();
        let sol = aco.consolidate(inst).expect("solvable");
        ms += start.elapsed().as_secs_f64() * 1e3;
        hosts += sol.bins_used() as f64;
    }
    (hosts / instances.len() as f64, ms / instances.len() as f64)
}

/// Sweep ACO parameters on a fixed instance family.
pub fn run_aco(n: usize, repeats: u64, seed: u64) -> Vec<AcoAblationRow> {
    let insts = instances(n, repeats, seed);
    let base = AcoParams::default();
    let mut rows = Vec::new();

    let mut push = |setting: String, params: AcoParams| {
        let (hosts, runtime_ms) = mean_hosts(&AcoConsolidator::new(params), &insts);
        rows.push(AcoAblationRow {
            setting,
            hosts,
            runtime_ms,
        });
    };

    push("default".into(), base);
    for ants in [2, 5, 20] {
        push(
            format!("ants={ants}"),
            AcoParams {
                n_ants: ants,
                ..base
            },
        );
    }
    for cycles in [5, 15, 60] {
        push(
            format!("cycles={cycles}"),
            AcoParams {
                n_cycles: cycles,
                ..base
            },
        );
    }
    for rho in [0.05, 0.6, 0.9] {
        push(format!("rho={rho}"), AcoParams { rho, ..base });
    }
    push(
        "alpha=0 (no pheromone)".into(),
        AcoParams { alpha: 0.0, ..base },
    );
    push(
        "beta=0 (no heuristic)".into(),
        AcoParams { beta: 0.0, ..base },
    );
    push(
        "update=all-ants (AS)".into(),
        AcoParams {
            update_rule: snooze_consolidation::aco::UpdateRule::AllAnts,
            ..base
        },
    );
    push(
        "local search".into(),
        AcoParams {
            local_search: true,
            ..base
        },
    );
    rows
}

/// Sweep FFD sort keys.
pub fn run_ffd(n: usize, repeats: u64, seed: u64) -> Vec<FfdAblationRow> {
    let insts = instances(n, repeats, seed);
    SortKey::ALL
        .iter()
        .map(|&key| {
            let algo = FirstFitDecreasing { key };
            let mut hosts = 0.0;
            let mut util = 0.0;
            for inst in &insts {
                let sol = algo.consolidate(inst).expect("solvable");
                hosts += sol.bins_used() as f64;
                util += sol.avg_used_bin_utilization(inst);
            }
            FfdAblationRow {
                key: key.label(),
                hosts: hosts / insts.len() as f64,
                util: util / insts.len() as f64,
            }
        })
        .collect()
}

/// Default ACO ablation for `run_experiments e8`.
pub fn default_aco_rows() -> Vec<AcoAblationRow> {
    run_aco(60, 3, 0xE8)
}

/// Default FFD ablation for `run_experiments e8`.
pub fn default_ffd_rows() -> Vec<FfdAblationRow> {
    run_ffd(120, 5, 0xE8F)
}

/// Render the ACO sweep.
pub fn render_aco(rows: &[AcoAblationRow]) -> Table {
    let mut t = Table::new(
        "E8a: ACO parameter ablation (hosts lower = better)",
        &["setting", "hosts", "runtime ms"],
    );
    for r in rows {
        t.row(vec![r.setting.clone(), f2(r.hosts), f2(r.runtime_ms)]);
    }
    t
}

/// Render the FFD sweep.
pub fn render_ffd(rows: &[FfdAblationRow]) -> Table {
    let mut t = Table::new(
        "E8b: FFD presort-dimension ablation (§I: single-dimension presorts waste resources)",
        &["sort key", "hosts", "util"],
    );
    for r in rows {
        t.row(vec![r.key.to_string(), f2(r.hosts), pct(r.util)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_dimension_sorts_beat_or_match_single_dimension() {
        let rows = run_ffd(80, 4, 3);
        let hosts = |k: &str| rows.iter().find(|r| r.key == k).unwrap().hosts;
        let single_best = hosts("cpu").min(hosts("mem"));
        let multi_best = hosts("l1").min(hosts("l2")).min(hosts("linf"));
        assert!(
            multi_best <= single_best + 1e-9,
            "multi-dim {multi_best} vs single-dim {single_best}"
        );
    }

    #[test]
    fn more_search_does_not_hurt_quality() {
        let rows = run_aco(40, 2, 9);
        let hosts = |s: &str| rows.iter().find(|r| r.setting == s).unwrap().hosts;
        assert!(hosts("cycles=60") <= hosts("cycles=5") + 1e-9);
        assert!(hosts("ants=20") <= hosts("ants=2") + 1e-9);
    }
}
