//! CLI-side scenario plumbing for `run_experiments`: load scenario
//! documents from disk, run every expanded variant through the generic
//! compiler, render outcome tables, and keep the checked-in
//! `scenarios/*.toml` files in sync with the presets.

use std::path::{Path, PathBuf};

use snooze_scenario::incident::{is_incident, IncidentDoc};
use snooze_scenario::mc_trace::McTraceDoc;
use snooze_scenario::spec::ScenarioDoc;
use snooze_scenario::{compile, run_watch, ScenarioOutcome, WindowStatus};

use crate::table::{f2, Table};

/// Parse a scenario document from a file.
pub fn load(path: &Path) -> Result<ScenarioDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    ScenarioDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// True when the document is a model-checking counterexample trace
/// rather than a runnable scenario. Trace docs always carry a
/// top-level `harness` key, which `ScenarioSpec` does not know.
fn is_mc_trace(text: &str) -> bool {
    text.lines().any(|l| l.starts_with("harness = "))
}

/// Run every variant of a scenario file, in document order. With
/// `watch`, every closed metric window prints a status line as the run
/// progresses (`[obs]` scenarios only — others produce no windows).
pub fn run_file(path: &Path, watch: bool) -> Result<Vec<ScenarioOutcome>, String> {
    let doc = load(path)?;
    doc.expand()?
        .iter()
        .map(|spec| {
            eprintln!("[scenario] {} …", spec.name);
            let name = spec.name.clone();
            let mut print_status = move |s: &WindowStatus| {
                eprintln!(
                    "[watch] {name} w{:>3} t={:>6}s rows={:<3} alerts={} queue={} dead={}",
                    s.window,
                    s.at.as_micros() / 1_000_000,
                    s.rows,
                    s.alerts,
                    s.queue_depth,
                    s.dead_letters,
                );
            };
            let cb: Option<&mut dyn FnMut(&WindowStatus)> =
                if watch { Some(&mut print_status) } else { None };
            run_watch(spec, cb).map(|r| r.outcome)
        })
        .collect()
}

/// The generic per-run summary table for `--scenario`.
pub fn summary_table(title: &str, outcomes: &[ScenarioOutcome]) -> Table {
    let mut t = Table::new(
        format!("scenario outcomes: {title}"),
        &[
            "scenario",
            "seed",
            "requested",
            "placed",
            "rejected",
            "energy Wh",
            "migrations",
            "suspends",
            "nodes on",
            "VMs end",
            "sim events",
            "dead letters",
            "wall ms",
            "events/s",
        ],
    );
    for o in outcomes {
        let events_per_s = if o.wall_ms > 0.0 {
            o.sim_events as f64 / (o.wall_ms / 1000.0)
        } else {
            f64::NAN
        };
        t.row(vec![
            o.name.clone(),
            o.seed.to_string(),
            o.requested_vms.to_string(),
            o.placed.to_string(),
            o.rejected.to_string(),
            f2(o.energy_wh),
            o.migrations.to_string(),
            o.suspends.to_string(),
            o.nodes_on_end.to_string(),
            o.total_vms_end.to_string(),
            o.sim_events.to_string(),
            o.dead_letters.to_string(),
            f2(o.wall_ms),
            if events_per_s.is_nan() {
                "-".into()
            } else {
                format!("{events_per_s:.0}")
            },
        ]);
    }
    t
}

/// Fault outcomes of every run that injected any (empty table otherwise).
pub fn fault_table(outcomes: &[ScenarioOutcome]) -> Table {
    let mut t = Table::new(
        "fault outcomes",
        &[
            "scenario",
            "fault",
            "at s",
            "perf after",
            "VMs after",
            "recovery s",
        ],
    );
    for o in outcomes {
        for f in &o.faults {
            t.row(vec![
                o.name.clone(),
                f.label.clone(),
                (f.at.as_micros() / 1_000_000).to_string(),
                if f.perf_after.is_nan() {
                    "-".into()
                } else {
                    f2(f.perf_after)
                },
                f.vms_after.to_string(),
                if f.recovery_s.is_nan() {
                    "never".into()
                } else {
                    f2(f.recovery_s)
                },
            ]);
        }
    }
    t
}

/// Probe samples of every run that declared any (empty table otherwise).
pub fn probe_table(outcomes: &[ScenarioOutcome]) -> Table {
    let mut t = Table::new(
        "probe samples",
        &[
            "scenario", "probe", "at s", "placed", "VMs", "nodes on", "messages",
        ],
    );
    for o in outcomes {
        for p in &o.probes {
            t.row(vec![
                o.name.clone(),
                p.name.clone(),
                (p.at.as_micros() / 1_000_000).to_string(),
                p.placed.to_string(),
                p.total_vms.to_string(),
                p.nodes_on.to_string(),
                p.messages.to_string(),
            ]);
        }
    }
    t
}

/// SLO watchdog breaches of every run that raised any (empty table
/// otherwise).
pub fn slo_table(outcomes: &[ScenarioOutcome]) -> Table {
    let mut t = Table::new(
        "slo alerts",
        &[
            "scenario", "slo", "signal", "window", "at s", "value", "max",
        ],
    );
    for o in outcomes {
        for a in &o.slo_alerts {
            t.row(vec![
                o.name.clone(),
                a.name.clone(),
                a.signal.as_str().to_string(),
                a.window.to_string(),
                (a.at.as_micros() / 1_000_000).to_string(),
                f2(a.value),
                f2(a.max),
            ]);
        }
    }
    t
}

/// Every `*.toml` under `dir`, sorted by file name.
pub fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

/// The `--list-scenarios` table: one row per checked-in file.
pub fn list_table(dir: &Path) -> Result<Table, String> {
    let mut t = Table::new(
        format!("scenarios in {}", dir.display()),
        &["file", "name", "runs", "description"],
    );
    for path in scenario_files(dir)? {
        let file = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        if is_mc_trace(&text) {
            let doc =
                McTraceDoc::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            t.row(vec![
                file,
                doc.name,
                "-".to_string(),
                format!("mc counterexample ({} steps)", doc.steps.len()),
            ]);
            continue;
        }
        if is_incident(&text) {
            let doc =
                IncidentDoc::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            t.row(vec![
                file,
                doc.name,
                "-".to_string(),
                format!(
                    "incident dump (trigger `{}`, {} event(s))",
                    doc.trigger,
                    doc.events.len()
                ),
            ]);
            continue;
        }
        let doc = load(&path)?;
        t.row(vec![
            file,
            doc.name().unwrap_or("-").to_string(),
            doc.run_count().to_string(),
            doc.description().unwrap_or("-").to_string(),
        ]);
    }
    Ok(t)
}

/// The `--check-scenarios` gate: every file under `dir` must parse,
/// round-trip canonically, expand, and dry-run compile (deployment +
/// workload + fault schedule built, no simulation); and every preset
/// scenario must have an up-to-date checked-in copy.
pub fn check_dir(dir: &Path) -> Result<Vec<String>, String> {
    let mut report = Vec::new();
    for path in scenario_files(dir)? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        if is_mc_trace(&text) {
            // Counterexample traces share the directory; they must
            // parse and be canonical, but there is nothing to compile —
            // `snooze-mc --replay` is their executable form.
            let doc =
                McTraceDoc::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            if doc.to_toml() != text {
                return Err(format!(
                    "{}: mc trace not in canonical form (re-emit with snooze-mc --emit)",
                    path.display()
                ));
            }
            report.push(format!(
                "{}: mc counterexample trace ({} step(s)) parses canonically",
                path.display(),
                doc.steps.len()
            ));
            continue;
        }
        if is_incident(&text) {
            // Incident dumps are evidence, not programs: they must
            // parse and be canonical so tooling can always re-read
            // them, but there is nothing to compile.
            let doc =
                IncidentDoc::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            if doc.to_toml() != text {
                return Err(format!(
                    "{}: incident dump not in canonical form",
                    path.display()
                ));
            }
            report.push(format!(
                "{}: incident dump (trigger `{}`, {} event(s)) parses canonically",
                path.display(),
                doc.trigger,
                doc.events.len()
            ));
            continue;
        }
        let doc = ScenarioDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if doc.to_toml() != text {
            return Err(format!(
                "{}: not in canonical form (regenerate with --dump-scenarios or re-render)",
                path.display()
            ));
        }
        let specs = doc
            .expand()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        for spec in &specs {
            compile(spec).map_err(|e| format!("{}: {}: {e}", path.display(), spec.name))?;
        }
        report.push(format!(
            "{}: {} run(s) compile",
            path.display(),
            specs.len()
        ));
    }
    for (file, doc) in snooze_scenario::presets::checked_in() {
        let path = dir.join(file);
        let on_disk = std::fs::read_to_string(&path)
            .map_err(|_| format!("{}: missing (run --dump-scenarios)", path.display()))?;
        if on_disk != doc.to_toml() {
            return Err(format!(
                "{}: drifted from the preset (run --dump-scenarios)",
                path.display()
            ));
        }
    }
    report.push(format!(
        "{} preset file(s) match the in-tree presets",
        snooze_scenario::presets::checked_in().len()
    ));
    Ok(report)
}

/// The `--fmt-scenarios` writer: rewrite every file under `dir` into
/// canonical form (idempotent; hand-authored scenarios pass the
/// `--check-scenarios` canonical-form gate after this).
pub fn fmt_dir(dir: &Path) -> Result<Vec<String>, String> {
    let mut rewritten = Vec::new();
    for path in scenario_files(dir)? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let canon = if is_mc_trace(&text) {
            McTraceDoc::from_toml(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_toml()
        } else if is_incident(&text) {
            IncidentDoc::from_toml(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_toml()
        } else {
            ScenarioDoc::parse(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_toml()
        };
        if canon != text {
            std::fs::write(&path, canon).map_err(|e| format!("{}: {e}", path.display()))?;
            rewritten.push(path.display().to_string());
        }
    }
    Ok(rewritten)
}

/// The `--dump-scenarios` writer: (re)write every preset file into `dir`.
pub fn dump_dir(dir: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for (file, doc) in snooze_scenario::presets::checked_in() {
        let path = dir.join(file);
        std::fs::write(&path, doc.to_toml()).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_tables_render_fault_and_probe_rows() {
        let spec = snooze_scenario::presets::report_failover(7);
        let o = snooze_scenario::run(&spec).expect("compiles").outcome;
        let s = summary_table("report", std::slice::from_ref(&o)).render();
        assert!(s.contains("report-failover"));
        let f = fault_table(std::slice::from_ref(&o)).render();
        assert!(f.contains("GM crash"));
        assert!(
            f.contains("never"),
            "no-observe faults render a '-'/'never' pair"
        );
    }
}
