//! **E14 — the consolidation arena** (the registry tournament).
//!
//! E12 compared two hard-wired consolidators; E14 sweeps the whole
//! pluggable surface: every `ConsolidatorRegistry` algorithm crossed
//! with every power model in the `[power]` library, on the same 1000-LC
//! diurnal-trace shape (`scenarios/e14_arena.toml`). Each cell reports
//! energy, SLA violations and migration count; within each power model
//! the Pareto-optimal cells on (energy, SLA violations, migrations) are
//! starred, and [`winner`] picks the algorithm the live GM
//! reconfiguration loop adopts as its default
//! ([`ReconfigurationConfig::default`][snooze::scheduling::reconfiguration::ReconfigurationConfig]).
//! `BENCH_E14_ARENA.json` at the workspace root is the checked-in
//! baseline.
//!
//! `run_experiments --arena-smoke` is the CI gate: every registry key —
//! including `bnb`, which the full arena skips — replays the tiny
//! seed-42 trace twice on a reduced 128-LC shape under the billed-DVFS
//! model, and the gate fails unless both runs agree byte-for-byte on
//! the event digest and every deterministic table column.

use std::path::Path;

use snooze_scenario::presets;

use crate::table::{f2, Table};

/// One (algorithm, power model) cell's outcome.
#[derive(Clone, Debug)]
pub struct E14Row {
    /// Scenario name (`e14-{algo}-{power}`).
    pub name: String,
    /// Registry key of the consolidator.
    pub algo: String,
    /// Power-model name.
    pub power: String,
    /// LCs in the cluster.
    pub lcs: usize,
    /// VM requests the trace submitted.
    pub vms: usize,
    /// VMs placed.
    pub placed: usize,
    /// VMs rejected.
    pub rejected: usize,
    /// Total cluster energy over the horizon, Wh.
    pub energy_wh: f64,
    /// Live migrations performed.
    pub migrations: u64,
    /// Suspend transitions performed.
    pub suspends: u64,
    /// Mean powered-on node count (sampled every minute).
    pub mean_nodes_on: f64,
    /// Mean delivered application performance across samples.
    pub mean_performance: f64,
    /// Loaded LC-samples whose performance fell below the SLA floor.
    pub sla_violations: u64,
    /// Loaded LC-samples observed (the violation denominator).
    pub sla_samples: u64,
    /// Deliveries that found no live receiver (must be 0: no faults).
    pub dead_letters: u64,
    /// Advisory wall-clock of the run, ms.
    pub wall_ms: f64,
}

fn row_from_outcome(
    o: snooze_scenario::ScenarioOutcome,
    algo: &str,
    power: &str,
    lcs: usize,
) -> E14Row {
    E14Row {
        name: o.name,
        algo: algo.to_string(),
        power: power.to_string(),
        lcs,
        vms: o.requested_vms,
        placed: o.placed,
        rejected: o.rejected,
        energy_wh: o.energy_wh,
        migrations: o.migrations,
        suspends: o.suspends,
        mean_nodes_on: o.mean_nodes_on,
        mean_performance: o.mean_performance,
        sla_violations: o.sla_violations,
        sla_samples: o.sla_samples,
        dead_letters: o.dead_letters,
        wall_ms: o.wall_ms,
    }
}

/// Run the arena over the given algorithm and power-model axes.
pub fn run(
    lcs: usize,
    trace_path: &str,
    max_vms: usize,
    horizon_secs: u64,
    seed: u64,
    algos: &[&str],
    powers: &[&str],
) -> Vec<E14Row> {
    let specs = presets::e14_arena(lcs, trace_path, max_vms, horizon_secs, seed, algos, powers);
    let mut rows = Vec::new();
    let mut i = 0;
    for algo in algos {
        for power in powers {
            let o = snooze_scenario::run(&specs[i])
                .expect("E14 preset compiles")
                .outcome;
            rows.push(row_from_outcome(o, algo, power, lcs));
            i += 1;
        }
    }
    rows
}

/// The full configuration used by `run_experiments e14`: all
/// `E14_ALGOS` × `E14_POWER_MODELS` cells on 1000 LCs.
pub fn default_rows() -> Vec<E14Row> {
    run(
        1000,
        presets::REFERENCE_TRACE,
        0,
        10_800,
        0xE14,
        &presets::E14_ALGOS,
        &presets::E14_POWER_MODELS,
    )
}

/// `a` dominates `b` when it is no worse on every objective (energy,
/// SLA violations, migrations) and strictly better on at least one.
fn dominates(a: &E14Row, b: &E14Row) -> bool {
    let le = a.energy_wh <= b.energy_wh
        && a.sla_violations <= b.sla_violations
        && a.migrations <= b.migrations;
    let lt = a.energy_wh < b.energy_wh
        || a.sla_violations < b.sla_violations
        || a.migrations < b.migrations;
    le && lt
}

/// Pareto flags, one per row: `true` when no other row *under the same
/// power model* dominates it.
pub fn pareto_flags(rows: &[E14Row]) -> Vec<bool> {
    rows.iter()
        .map(|r| {
            !rows
                .iter()
                .any(|o| o.power == r.power && !std::ptr::eq(o, r) && dominates(o, r))
        })
        .collect()
}

/// The arena winner: the algorithm the live reconfiguration loop should
/// default to. Judged on the legacy `grid5000` rows (the environment
/// every pre-arena experiment runs in; falls back to all rows when that
/// column is absent): fewest SLA violations, then least energy, then
/// fewest migrations.
pub fn winner(rows: &[E14Row]) -> Option<String> {
    let pool: Vec<&E14Row> = {
        let legacy: Vec<&E14Row> = rows.iter().filter(|r| r.power == "grid5000").collect();
        if legacy.is_empty() {
            rows.iter().collect()
        } else {
            legacy
        }
    };
    pool.into_iter()
        .min_by(|a, b| {
            (a.sla_violations, a.energy_wh, a.migrations)
                .partial_cmp(&(b.sla_violations, b.energy_wh, b.migrations))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|r| r.algo.clone())
}

/// Render the Pareto table.
pub fn render(rows: &[E14Row]) -> Table {
    let flags = pareto_flags(rows);
    let mut t = Table::new(
        "E14: consolidation arena — algorithm × power model, Pareto on (energy, SLA, migrations)",
        &[
            "scenario",
            "algo",
            "power",
            "LCs",
            "VMs",
            "placed",
            "rejected",
            "energy Wh",
            "migrations",
            "suspends",
            "mean nodes on",
            "mean perf",
            "SLA viol",
            "SLA samples",
            "dead letters",
            "pareto",
            "wall ms",
        ],
    );
    for (r, pareto) in rows.iter().zip(flags) {
        t.row(vec![
            r.name.clone(),
            r.algo.clone(),
            r.power.clone(),
            r.lcs.to_string(),
            r.vms.to_string(),
            r.placed.to_string(),
            r.rejected.to_string(),
            f2(r.energy_wh),
            r.migrations.to_string(),
            r.suspends.to_string(),
            f2(r.mean_nodes_on),
            f2(r.mean_performance),
            r.sla_violations.to_string(),
            r.sla_samples.to_string(),
            r.dead_letters.to_string(),
            if pareto { "*" } else { "" }.to_string(),
            f2(r.wall_ms),
        ]);
    }
    t
}

/// Everything `--arena-smoke` measured.
#[derive(Debug)]
pub struct ArenaSmoke {
    /// The first run's rows (one per registry key), for rendering.
    pub rows: Vec<E14Row>,
    /// Both runs of every cell agreed on the event digest.
    pub digests_match: bool,
    /// Both runs rendered byte-identical tables.
    pub tables_identical: bool,
    /// Registry keys that ran (must be every key).
    pub keys_run: Vec<String>,
    /// Where the trace came from.
    pub trace_path: String,
}

/// The `--arena-smoke` gate: every registry key once, twice each,
/// digest + table identity (see the module docs).
pub fn smoke(trace: Option<&Path>) -> Result<ArenaSmoke, String> {
    let path = crate::e12_trace::smoke_trace_path(trace)?;
    let path_str = path
        .to_str()
        .ok_or_else(|| format!("non-UTF8 trace path {}", path.display()))?;

    let specs = presets::e14_arena_smoke(path_str);
    let keys = snooze_consolidation::registry::REGISTRY_KEYS;
    if specs.len() != keys.len() {
        return Err(format!(
            "arena smoke must cover every registry key: {} specs vs {} keys",
            specs.len(),
            keys.len()
        ));
    }
    let mut rows = Vec::new();
    let mut digests_match = true;
    let mut tables_identical = true;
    for (spec, key) in specs.iter().zip(keys) {
        let a = snooze_scenario::run(spec)?;
        let b = snooze_scenario::run(spec)?;
        digests_match &= a.live.sim.digest() == b.live.sim.digest();
        let row_a = row_from_outcome(a.outcome, key, "dvfs3_billed", 128);
        let row_b = row_from_outcome(b.outcome, key, "dvfs3_billed", 128);
        let strip = |r: &E14Row| {
            render(std::slice::from_ref(r))
                .without_columns(&["wall ms"])
                .to_json()
        };
        tables_identical &= strip(&row_a) == strip(&row_b);
        rows.push(row_a);
    }
    Ok(ArenaSmoke {
        rows,
        digests_match,
        tables_identical,
        keys_run: keys.iter().map(|k| k.to_string()).collect(),
        trace_path: path_str.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny, fast arena slice: 12 LCs, 40 trace VMs, two algorithms
    /// under two power models.
    fn small_rows() -> Vec<E14Row> {
        run(
            12,
            presets::REFERENCE_TRACE,
            40,
            2700,
            0x14,
            &["ffd", "mo-aco"],
            &["grid5000", "dvfs3_billed"],
        )
    }

    #[test]
    fn arena_cells_run_and_admission_is_uniform() {
        let rows = small_rows();
        assert_eq!(rows.len(), 4, "full cross product");
        for r in &rows {
            assert_eq!(r.vms, 40);
            assert!(r.placed > 0, "{}: trace VMs must place", r.name);
            assert_eq!(r.dead_letters, 0, "{}: fault-free run", r.name);
            assert!(r.energy_wh > 0.0);
        }
        // Placement is round-robin: admission cannot depend on the cell.
        assert!(rows.iter().all(|r| r.placed == rows[0].placed));
        // Same algorithm, same event history: the power model only
        // changes the billing, never the digest-bearing decisions —
        // so migrations agree across the power axis.
        assert_eq!(rows[0].migrations, rows[1].migrations);
        assert_eq!(rows[2].migrations, rows[3].migrations);
    }

    #[test]
    fn pareto_flags_mark_non_dominated_rows_per_power_model() {
        let mk = |algo: &str, power: &str, e: f64, v: u64, m: u64| E14Row {
            name: format!("e14-{algo}-{power}"),
            algo: algo.into(),
            power: power.into(),
            lcs: 1,
            vms: 0,
            placed: 0,
            rejected: 0,
            energy_wh: e,
            migrations: m,
            suspends: 0,
            mean_nodes_on: 0.0,
            mean_performance: 1.0,
            sla_violations: v,
            sla_samples: 0,
            dead_letters: 0,
            wall_ms: 0.0,
        };
        let rows = vec![
            mk("a", "p", 100.0, 0, 10), // dominated by c
            mk("b", "p", 120.0, 0, 5),  // pareto: fewest migrations
            mk("c", "p", 90.0, 0, 10),  // pareto: least energy
            mk("d", "q", 500.0, 9, 99), // alone under q: trivially pareto
        ];
        assert_eq!(pareto_flags(&rows), vec![false, true, true, true]);
    }

    #[test]
    fn winner_prefers_sla_then_energy_then_migrations_on_legacy_rows() {
        let mk = |algo: &str, power: &str, e: f64, v: u64, m: u64| E14Row {
            name: format!("e14-{algo}-{power}"),
            algo: algo.into(),
            power: power.into(),
            lcs: 1,
            vms: 0,
            placed: 0,
            rejected: 0,
            energy_wh: e,
            migrations: m,
            suspends: 0,
            mean_nodes_on: 0.0,
            mean_performance: 1.0,
            sla_violations: v,
            sla_samples: 0,
            dead_letters: 0,
            wall_ms: 0.0,
        };
        let rows = vec![
            mk("cheap-but-violating", "grid5000", 10.0, 3, 1),
            mk("best", "grid5000", 100.0, 0, 7),
            mk("same-energy-more-churn", "grid5000", 100.0, 0, 9),
            mk("cheaper-but-dvfs", "grid5000_dvfs3", 1.0, 0, 1), // wrong column
        ];
        assert_eq!(winner(&rows).as_deref(), Some("best"));
        assert!(winner(&[]).is_none());
    }

    #[test]
    fn table_has_the_arena_columns() {
        let rendered = render(&small_rows()).render();
        assert!(rendered.contains("pareto"));
        assert!(rendered.contains("power"));
        assert!(rendered.contains("energy Wh"));
    }
}
