#![warn(missing_docs)]

//! # snooze-bench
//!
//! The experiment harness: one module per experiment family from
//! DESIGN.md's per-experiment index (E1–E8), each reproducing a table or
//! figure-equivalent of the paper's evaluation (§II-F and §III-B).
//! The `run_experiments` binary prints the tables; the Criterion benches
//! under `benches/` measure the algorithmic kernels.
//!
//! Experiments return structured rows so tests can assert on the *shape*
//! of the results (who wins, by roughly what factor) without parsing
//! stdout.

pub mod e10_distributed_consolidation;
pub mod e11_kilonode;
pub mod e12_trace;
pub mod e13_shard;
pub mod e14_arena;
pub mod e1_aco_vs_ffd_vs_optimal;
pub mod e2_scaling;
pub mod e3_parallel;
pub mod e4_submission_scalability;
pub mod e5_distribution_overhead;
pub mod e6_fault_tolerance;
pub mod e7_energy_savings;
pub mod e8_ablations;
pub mod e9_failover_sensitivity;
pub mod obs_smoke;
pub mod report;
pub mod scenario_cli;
pub mod simrun;
pub mod table;

/// Power draw (watts) of the machine assumed to run the consolidation
/// algorithm itself — used to charge algorithms for their own compute
/// energy, as the paper does ("including energy spent into the
/// computation").
pub const SOLVER_MACHINE_WATTS: f64 = 250.0;

/// How long a computed placement is assumed to hold before the next
/// reconfiguration pass (the paper's consolidation is periodic; one hour
/// is a neutral choice that only scales the energy numbers, not the
/// ranking).
pub const PLACEMENT_HOLD_SECS: f64 = 3600.0;
