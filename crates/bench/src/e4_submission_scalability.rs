//! **E4 — submission scalability** (paper §II-F / \[7\]).
//!
//! "Snooze was evaluated on a 144 nodes cluster … Up to 500 VMs were
//! submitted. … the system remains highly scalable with increasing
//! amounts of VMs and hosts." Reproduced as: a 144-LC hierarchy receives
//! bursts of 50–500 VM submissions; the table reports placement success
//! and submission→running latency, which should grow only mildly with
//! the burst size. The runs themselves are declarative scenarios
//! (`scenarios/e4.toml` is the checked-in copy).

use snooze_scenario::presets;

use crate::table::{f2, Table};

/// One burst size's outcome.
#[derive(Clone, Debug)]
pub struct E4Row {
    /// VMs submitted.
    pub vms: usize,
    /// LCs in the cluster.
    pub lcs: usize,
    /// VMs successfully placed.
    pub placed: usize,
    /// VMs rejected.
    pub rejected: usize,
    /// Mean submission→running latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_s: f64,
    /// Simulator events executed (management work proxy).
    pub sim_events: u64,
    /// Wall-clock of the whole simulated run, ms.
    pub wall_ms: f64,
}

/// Run E4 with the given burst sizes on a `lcs`-node cluster.
pub fn run(vm_counts: &[usize], lcs: usize, managers: usize, seed: u64) -> Vec<E4Row> {
    presets::e4(vm_counts, lcs, managers, seed)
        .iter()
        .map(|spec| {
            let o = snooze_scenario::run(spec)
                .expect("E4 preset compiles")
                .outcome;
            E4Row {
                vms: o.requested_vms,
                lcs,
                placed: o.placed,
                rejected: o.rejected,
                mean_latency_s: o.mean_latency_s,
                p95_latency_s: o.p95_latency_s,
                sim_events: o.sim_events,
                wall_ms: o.wall_ms,
            }
        })
        .collect()
}

/// Default configuration used by `run_experiments e4`: the paper's
/// 144-node cluster, bursts up to 500 VMs, 4 managers (1 GL + 3 GMs).
pub fn default_rows() -> Vec<E4Row> {
    run(&[50, 100, 200, 300, 400, 500], 144, 4, 0xE4)
}

/// Render the table.
pub fn render(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4: submission scalability on a 144-LC hierarchy (paper: scalable up to 500 VMs)",
        &[
            "VMs",
            "LCs",
            "placed",
            "rejected",
            "mean lat s",
            "p95 lat s",
            "sim events",
            "wall ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.vms.to_string(),
            r.lcs.to_string(),
            r.placed.to_string(),
            r.rejected.to_string(),
            f2(r.mean_latency_s),
            f2(r.p95_latency_s),
            r.sim_events.to_string(),
            f2(r.wall_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_places_all_and_latency_grows_mildly() {
        let rows = run(&[10, 40], 16, 3, 21);
        assert_eq!(rows[0].placed, 10);
        assert_eq!(rows[1].placed, 40);
        // Latency should not blow up with 4× the submissions (scalability
        // claim): allow 3× headroom on the mean.
        assert!(
            rows[1].mean_latency_s < rows[0].mean_latency_s * 3.0 + 5.0,
            "{} vs {}",
            rows[1].mean_latency_s,
            rows[0].mean_latency_s
        );
    }
}
