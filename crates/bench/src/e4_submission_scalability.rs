//! **E4 — submission scalability** (paper §II-F / \[7\]).
//!
//! "Snooze was evaluated on a 144 nodes cluster … Up to 500 VMs were
//! submitted. … the system remains highly scalable with increasing
//! amounts of VMs and hosts." Reproduced as: a 144-LC hierarchy receives
//! bursts of 50–500 VM submissions; the table reports placement success
//! and submission→running latency, which should grow only mildly with
//! the burst size.

use snooze::prelude::SnoozeConfig;
use snooze_simcore::time::SimTime;

use crate::simrun::{burst, deploy, Deployment};
use crate::table::{f2, Table};

/// One burst size's outcome.
#[derive(Clone, Debug)]
pub struct E4Row {
    /// VMs submitted.
    pub vms: usize,
    /// LCs in the cluster.
    pub lcs: usize,
    /// VMs successfully placed.
    pub placed: usize,
    /// VMs rejected.
    pub rejected: usize,
    /// Mean submission→running latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_s: f64,
    /// Simulator events executed (management work proxy).
    pub sim_events: u64,
    /// Wall-clock of the whole simulated run, ms.
    pub wall_ms: f64,
}

/// Run E4 with the given burst sizes on a `lcs`-node cluster.
pub fn run(vm_counts: &[usize], lcs: usize, managers: usize, seed: u64) -> Vec<E4Row> {
    vm_counts
        .iter()
        .map(|&n| {
            let config = SnoozeConfig {
                // Power management off: the CCGrid scalability runs kept
                // nodes on; wake latency would otherwise dominate.
                idle_suspend_after: None,
                ..SnoozeConfig::default()
            };
            let dep = Deployment {
                managers,
                lcs,
                eps: 1,
                seed: seed ^ n as u64,
            };
            let schedule = burst(n, SimTime::from_secs(30), 2.0, 4096.0, 0.5);
            let mut live = deploy(&dep, &config, schedule);
            live.run_until_settled(SimTime::from_secs(1800));
            let c = live.client();
            E4Row {
                vms: n,
                lcs,
                placed: c.placed.len(),
                rejected: c.rejected.len(),
                mean_latency_s: c.mean_latency_secs(),
                p95_latency_s: c.p95_latency_secs(),
                sim_events: live.sim.events_executed(),
                wall_ms: live.wall_ms(),
            }
        })
        .collect()
}

/// Default configuration used by `run_experiments e4`: the paper's
/// 144-node cluster, bursts up to 500 VMs, 4 managers (1 GL + 3 GMs).
pub fn default_rows() -> Vec<E4Row> {
    run(&[50, 100, 200, 300, 400, 500], 144, 4, 0xE4)
}

/// Render the table.
pub fn render(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4: submission scalability on a 144-LC hierarchy (paper: scalable up to 500 VMs)",
        &[
            "VMs",
            "LCs",
            "placed",
            "rejected",
            "mean lat s",
            "p95 lat s",
            "sim events",
            "wall ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.vms.to_string(),
            r.lcs.to_string(),
            r.placed.to_string(),
            r.rejected.to_string(),
            f2(r.mean_latency_s),
            f2(r.p95_latency_s),
            r.sim_events.to_string(),
            f2(r.wall_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_places_all_and_latency_grows_mildly() {
        let rows = run(&[10, 40], 16, 3, 21);
        assert_eq!(rows[0].placed, 10);
        assert_eq!(rows[1].placed, 40);
        // Latency should not blow up with 4× the submissions (scalability
        // claim): allow 3× headroom on the mean.
        assert!(
            rows[1].mean_latency_s < rows[0].mean_latency_s * 3.0 + 5.0,
            "{} vs {}",
            rows[1].mean_latency_s,
            rows[0].mean_latency_s
        );
    }
}
