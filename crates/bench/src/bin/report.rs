//! The telemetry report CLI.
//!
//! ```text
//! report [--seed <n>] [--out <dir>]
//! ```
//!
//! Runs the E4-style observability scenario (1 GL / 4 GMs / 32 LCs, a
//! burst of 100 VMs, one GM crash mid-flight) and prints:
//!
//! * the scenario summary (placements, digests),
//! * the submission-latency decomposition by hop
//!   (client.submit → ep.forward → gl.dispatch → gm.place → lc.boot),
//! * the failover timeline (detected failures, promotions, campaigns),
//! * the ACO phase profile (construction / evaluation / evaporation).
//!
//! With `--out <dir>`, also writes the standard-format exports:
//! `trace.chrome.json` (open in Perfetto or `chrome://tracing`),
//! `spans.jsonl`, `metrics.prom`, `metrics.jsonl` — all byte-identical
//! across two runs with the same `--seed`.

use snooze_bench::report::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let seed: u64 = flag("--seed")
        .map(|s| s.parse().expect("--seed: u64"))
        .unwrap_or(42);
    let out = flag("--out").map(std::path::PathBuf::from);

    eprintln!("[report] running E4-style scenario (seed {seed}) …");
    let spec = report_failover(seed);
    let (live, crashed) = run_scenario(&spec);

    scenario_summary(&live, crashed).print();
    hop_decomposition(live.sim.spans()).print();
    failover_timeline(&live.sim).print();
    aco_phase_table(100, seed).print();

    if let Some(dir) = out {
        export_all(&live.sim, &dir).expect("write exports");
        println!(
            "\nexports written to {} (trace.chrome.json, spans.jsonl, metrics.prom, metrics.jsonl)",
            dir.display()
        );
    }
}
