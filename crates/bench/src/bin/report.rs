//! The telemetry report CLI.
//!
//! ```text
//! report [--seed <n>] [--out <dir>] [--watch]
//! ```
//!
//! Runs the E4-style observability scenario (1 GL / 4 GMs / 32 LCs, a
//! burst of 100 VMs, one GM crash mid-flight) and prints:
//!
//! * the scenario summary (placements, digests),
//! * the continuous-observability headline (windows, SLO alerts,
//!   incident dumps, profiled events) and the SLO alert table — the
//!   scenario's zero-tolerance heartbeat watchdog trips during the GM
//!   failover,
//! * the submission-latency decomposition by hop
//!   (client.submit → ep.forward → gl.dispatch → gm.place → lc.boot),
//! * the failover timeline (detected failures, promotions, campaigns),
//! * the ACO phase profile (construction / evaluation / evaporation).
//!
//! `--watch` streams one status line per closed metric window while the
//! run progresses. With `--out <dir>`, also writes the standard-format
//! exports: `trace.chrome.json` (open in Perfetto or
//! `chrome://tracing`), `spans.jsonl`, `metrics.prom`, `metrics.jsonl`,
//! plus the continuous exports `windows.jsonl`, `windows.csv`,
//! `profile.folded` and one `incident_<n>.toml` per captured incident —
//! all byte-identical across two runs with the same `--seed`.

use snooze_bench::report::*;
use snooze_bench::scenario_cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let seed: u64 = flag("--seed")
        .map(|s| s.parse().expect("--seed: u64"))
        .unwrap_or(42);
    let out = flag("--out").map(std::path::PathBuf::from);
    let watch = args.iter().any(|a| a == "--watch");

    eprintln!("[report] running E4-style scenario (seed {seed}) …");
    let spec = report_failover(seed);
    let mut run = run_scenario(&spec, watch);

    scenario_summary(&run.live, crashed_component(&run)).print();
    obs_summary(&mut run).print();
    let alerts = scenario_cli::slo_table(std::slice::from_ref(&run.outcome));
    if !alerts.is_empty() {
        alerts.print();
    }
    hop_decomposition(run.live.sim.spans()).print();
    failover_timeline(&run.live.sim).print();
    aco_phase_table(100, seed).print();

    if let Some(dir) = out {
        export_all(&run.live.sim, &dir).expect("write exports");
        export_obs(&mut run, &dir).expect("write observability exports");
        println!(
            "\nexports written to {} (trace.chrome.json, spans.jsonl, metrics.prom, \
             metrics.jsonl, windows.jsonl, windows.csv, profile.folded, incident_*.toml)",
            dir.display()
        );
    }
}
