//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! run_experiments [--csv <dir>] [--json <dir>] [e1|e2|...|e10|e11|e12|e13|e14|all]...
//! run_experiments --e11-smoke
//! run_experiments --shard-smoke
//! run_experiments --trace-smoke [trace.csv]
//! run_experiments --arena-smoke [trace.csv]
//! run_experiments --obs-smoke [artifact-dir]
//! run_experiments --scenario <file.toml> [--watch]
//! run_experiments --list-scenarios [dir]
//! run_experiments --check-scenarios [dir]
//! run_experiments --dump-scenarios [dir]
//! ```
//!
//! With no experiment arguments, runs everything *except* E11 and E12,
//! which are explicit-only (`run_experiments e11`, `run_experiments
//! e12`): their kilonode-scale runs are deliberately heavy. `--e11-smoke`
//! runs the reduced 256-LC fault-free shape and fails unless the
//! throughput column is present and the run finished with zero dead
//! letters — the CI gate behind `scripts/check.sh --e11-smoke`.
//! `--shard-smoke` runs the same reduced shape on the 4-shard engine at
//! 1 and 4 workers and fails unless both runs agree byte-for-byte on
//! the engine digest with zero dead letters — the gate behind
//! `scripts/check.sh --shard-smoke`. E13 itself (`run_experiments
//! e13`) sweeps queue implementation and worker count at kilonode
//! scale; `BENCH_E13_SHARD.json` is the checked-in measurement.
//! `--trace-smoke` generates a tiny trace from the fixed seed (or takes
//! a `snooze-tracegen`-written file), replays it twice on the reduced
//! 128-LC E12 shape, and fails unless the two runs agree byte-for-byte
//! on event digest and table — the gate behind `scripts/check.sh
//! --trace-smoke`. `--arena-smoke` replays the same tiny trace once per
//! `ConsolidatorRegistry` key on the reduced 128-LC arena shape under
//! the billed-DVFS power model, twice each, and fails unless every cell
//! agrees byte-for-byte on digest and table — the gate behind
//! `scripts/check.sh --arena-smoke`. E14 itself (`run_experiments e14`)
//! sweeps algorithm × power model at kilonode scale;
//! `BENCH_E14_ARENA.json` is the checked-in measurement.
//!
//! Each experiment prints
//! the table documented in DESIGN.md's per-experiment index (and, with
//! `--csv` / `--json`, writes machine-readable copies); EXPERIMENTS.md
//! records paper-vs-measured.
//!
//! `--json <dir>` writes one `<slug>.json` per table (`e1.json`,
//! `e7b.json`, …) with the schema documented on
//! [`Table::to_json`]: `{"title", "columns", "rows": [{column: cell}]}`,
//! cells verbatim as printed.
//!
//! The scenario flags drive the declarative layer (`snooze-scenario`):
//! `--scenario` runs every variant of one TOML file and prints generic
//! outcome/fault/probe tables; `--list-scenarios` inventories a
//! directory (default `scenarios/`); `--check-scenarios` is the CI gate
//! (parse, canonical-form, dry-run compile, preset drift);
//! `--dump-scenarios` (re)writes the preset files.

use snooze_bench::table::Table;
use snooze_bench::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Scenario-layer modes: handle and exit before the experiment sweep.
    let dir_arg = |args: &[String], i: usize| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "scenarios".into())
    };
    if let Some(i) = args.iter().position(|a| a == "--dump-scenarios") {
        let dir = std::path::PathBuf::from(dir_arg(&args, i));
        match scenario_cli::dump_dir(&dir) {
            Ok(written) => {
                for w in written {
                    println!("wrote {w}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--fmt-scenarios") {
        let dir = std::path::PathBuf::from(dir_arg(&args, i));
        match scenario_cli::fmt_dir(&dir) {
            Ok(rewritten) => {
                for r in rewritten {
                    println!("canonicalized {r}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--list-scenarios") {
        let dir = std::path::PathBuf::from(dir_arg(&args, i));
        match scenario_cli::list_table(&dir) {
            Ok(t) => t.print(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--check-scenarios") {
        let dir = std::path::PathBuf::from(dir_arg(&args, i));
        match scenario_cli::check_dir(&dir) {
            Ok(report) => {
                for line in report {
                    println!("{line}");
                }
                println!("scenario check: OK");
            }
            Err(e) => {
                eprintln!("scenario check FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--e11-smoke") {
        eprintln!("[e11-smoke] 256 LCs, fault-free, scaled fleet …");
        let row = e11_kilonode::smoke_row();
        let table = e11_kilonode::render(std::slice::from_ref(&row));
        table.print();
        let mut failures = Vec::new();
        if row.events_per_sec().is_nan() {
            failures.push("throughput column is empty (wall clock read 0 ms)".to_string());
        }
        if row.dead_letters != 0 {
            failures.push(format!(
                "{} dead letter(s) in a fault-free run",
                row.dead_letters
            ));
        }
        if row.placed != row.vms {
            failures.push(format!("placed {}/{} VMs", row.placed, row.vms));
        }
        if failures.is_empty() {
            println!("e11 smoke: OK ({:.0} events/s)", row.events_per_sec());
        } else {
            for f in &failures {
                eprintln!("e11 smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--shard-smoke") {
        eprintln!("[shard-smoke] 256 LCs, 4 shards at 1 and 4 workers, digest identity …");
        let (rows, failures) = e13_shard::smoke();
        e13_shard::render(&rows).print();
        if failures.is_empty() {
            println!(
                "shard smoke: OK (digest {:016x} at every worker count)",
                rows[0].digest
            );
        } else {
            for f in &failures {
                eprintln!("shard smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--trace-smoke") {
        let trace = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(std::path::PathBuf::from);
        eprintln!("[trace-smoke] seeded trace, 128-LC replay x2 per variant, identity check …");
        let smoke = match e12_trace::smoke(trace.as_deref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace smoke FAILED: {e}");
                std::process::exit(1);
            }
        };
        e12_trace::render(&smoke.rows).print();
        let mut failures = Vec::new();
        if !smoke.digests_match {
            failures.push("two same-seed runs disagree on the event digest".to_string());
        }
        if !smoke.tables_identical {
            failures
                .push("two same-seed runs disagree on a deterministic table column".to_string());
        }
        for r in &smoke.rows {
            if r.placed == 0 {
                failures.push(format!("{}: no trace VM was placed", r.name));
            }
            if r.dead_letters != 0 {
                failures.push(format!(
                    "{}: {} dead letter(s) in a fault-free run",
                    r.name, r.dead_letters
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "trace smoke: OK ({} variant(s), trace {})",
                smoke.rows.len(),
                smoke.trace_path
            );
        } else {
            for f in &failures {
                eprintln!("trace smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--arena-smoke") {
        let trace = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(std::path::PathBuf::from);
        eprintln!("[arena-smoke] seeded trace, every registry key on 128 LCs x2, identity check …");
        let smoke = match e14_arena::smoke(trace.as_deref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("arena smoke FAILED: {e}");
                std::process::exit(1);
            }
        };
        e14_arena::render(&smoke.rows).print();
        let mut failures = Vec::new();
        if !smoke.digests_match {
            failures.push("two same-seed runs disagree on the event digest".to_string());
        }
        if !smoke.tables_identical {
            failures
                .push("two same-seed runs disagree on a deterministic table column".to_string());
        }
        for r in &smoke.rows {
            if r.placed == 0 {
                failures.push(format!("{}: no trace VM was placed", r.name));
            }
            if r.dead_letters != 0 {
                failures.push(format!(
                    "{}: {} dead letter(s) in a fault-free run",
                    r.name, r.dead_letters
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "arena smoke: OK ({} registry key(s): {}, trace {})",
                smoke.keys_run.len(),
                smoke.keys_run.join(" "),
                smoke.trace_path
            );
        } else {
            for f in &failures {
                eprintln!("arena smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--obs-smoke") {
        let artifact_dir = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(std::path::PathBuf::from);
        eprintln!("[obs-smoke] 256 LCs, windows + profiler + SLOs + forced incident, 3x2 runs …");
        let smoke = match obs_smoke::run() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("obs smoke FAILED: {e}");
                std::process::exit(1);
            }
        };
        let rows = vec![smoke.baseline.clone(), smoke.observed.clone()];
        e11_kilonode::render(&rows).print();
        if let Some(dir) = &artifact_dir {
            std::fs::create_dir_all(dir).expect("create artifact dir");
            std::fs::write(dir.join("windows.jsonl"), &smoke.windows_jsonl).expect("write jsonl");
            std::fs::write(dir.join("windows.csv"), &smoke.windows_csv).expect("write csv");
            std::fs::write(dir.join("profile.folded"), &smoke.folded).expect("write folded");
            std::fs::write(dir.join("incident_forced.toml"), &smoke.incident_toml)
                .expect("write incident");
            obs_smoke::comparison_table(&smoke)
                .write_json(dir, "e11_obs")
                .expect("write comparison json");
            eprintln!("[obs-smoke] artifacts in {}", dir.display());
        }
        let mut failures = Vec::new();
        if !smoke.digest_match {
            failures.push("observability changed the engine digest".to_string());
        }
        if !smoke.bytes_identical {
            failures
                .push("two observed runs disagree on windows/profile/incident bytes".to_string());
        }
        if smoke.windows == 0 {
            failures.push("observed run closed no metric windows".to_string());
        }
        if smoke.observed.placed != smoke.observed.vms {
            failures.push(format!(
                "placed {}/{} VMs",
                smoke.observed.placed, smoke.observed.vms
            ));
        }
        if smoke.throughput_ratio < 0.9 || smoke.throughput_ratio.is_nan() {
            failures.push(format!(
                "observability overhead too high: {:.1}% of baseline throughput (floor 90%)",
                smoke.throughput_ratio * 100.0
            ));
        }
        if failures.is_empty() {
            println!(
                "obs smoke: OK ({} windows, {} profiled handler rows, {:.1}% of baseline throughput)",
                smoke.windows,
                smoke.folded.lines().count(),
                smoke.throughput_ratio * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("obs smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let Some(file) = args.get(i + 1).cloned() else {
            eprintln!("--scenario needs a file argument");
            std::process::exit(2);
        };
        let watch = args.iter().any(|a| a == "--watch");
        let path = std::path::PathBuf::from(file);
        match scenario_cli::run_file(&path, watch) {
            Ok(outcomes) => {
                let title = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                scenario_cli::summary_table(&title, &outcomes).print();
                let faults = scenario_cli::fault_table(&outcomes);
                if !faults.is_empty() {
                    faults.print();
                }
                let probes = scenario_cli::probe_table(&outcomes);
                if !probes.is_empty() {
                    probes.print();
                }
                let slos = scenario_cli::slo_table(&outcomes);
                if !slos.is_empty() {
                    slos.print();
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let csv_dir: Option<std::path::PathBuf> = args.iter().position(|a| a == "--csv").map(|i| {
        let dir = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "experiment_csv".into());
        args.drain(i..=(i + 1).min(args.len() - 1));
        std::path::PathBuf::from(dir)
    });
    let json_dir: Option<std::path::PathBuf> = args.iter().position(|a| a == "--json").map(|i| {
        let dir = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "experiment_json".into());
        args.drain(i..=(i + 1).min(args.len() - 1));
        std::path::PathBuf::from(dir)
    });
    let emit = |table: &Table, slug: &str| {
        table.print();
        if let Some(dir) = &csv_dir {
            table.write_csv(dir, slug).expect("write csv");
        }
        if let Some(dir) = &json_dir {
            table.write_json(dir, slug).expect("write json");
        }
    };
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k || a == "all");

    if want("e1") {
        eprintln!("[e1] ACO vs FFD vs optimal …");
        emit(
            &e1_aco_vs_ffd_vs_optimal::render(&e1_aco_vs_ffd_vs_optimal::default_rows()),
            "e1",
        );
    }
    if want("e2") {
        eprintln!("[e2] scaling …");
        emit(&e2_scaling::render(&e2_scaling::default_rows()), "e2");
    }
    if want("e3") {
        eprintln!("[e3] parallel ants …");
        emit(&e3_parallel::render(&e3_parallel::default_rows()), "e3");
    }
    if want("e4") {
        eprintln!("[e4] submission scalability (144 LCs, up to 500 VMs) …");
        emit(
            &e4_submission_scalability::render(&e4_submission_scalability::default_rows()),
            "e4",
        );
    }
    if want("e5") {
        eprintln!("[e5] distributed-management overhead …");
        emit(
            &e5_distribution_overhead::render(&e5_distribution_overhead::default_rows()),
            "e5",
        );
    }
    if want("e6") {
        eprintln!("[e6] fault tolerance …");
        emit(
            &e6_fault_tolerance::render(&e6_fault_tolerance::default_report()),
            "e6",
        );
    }
    if want("e7") {
        eprintln!("[e7] energy savings …");
        emit(
            &e7_energy_savings::render(&e7_energy_savings::default_rows()),
            "e7",
        );
    }
    if want("e7") {
        eprintln!("[e7b] idle-threshold sweep …");
        emit(
            &e7_energy_savings::render_thresholds(&e7_energy_savings::default_threshold_rows()),
            "e7b",
        );
    }
    if want("e8") {
        eprintln!("[e8] ablations …");
        emit(
            &e8_ablations::render_aco(&e8_ablations::default_aco_rows()),
            "e8a",
        );
        emit(
            &e8_ablations::render_ffd(&e8_ablations::default_ffd_rows()),
            "e8b",
        );
    }
    if want("e9") {
        eprintln!("[e9] failover sensitivity …");
        emit(
            &e9_failover_sensitivity::render(&e9_failover_sensitivity::default_rows()),
            "e9",
        );
    }
    if want("e10") {
        eprintln!("[e10] distributed consolidation …");
        emit(
            &e10_distributed_consolidation::render_offline(
                &e10_distributed_consolidation::default_offline_rows(),
            ),
            "e10a",
        );
        emit(
            &e10_distributed_consolidation::render_system(
                &e10_distributed_consolidation::default_system_rows(),
            ),
            "e10b",
        );
    }
    // E11–E14 are explicit-only: their kilonode-scale runs are
    // deliberately heavy, so neither bare `run_experiments` nor `all`
    // includes them.
    if args.iter().any(|a| a == "e11") {
        eprintln!("[e11] kilonode scale (1024 LCs, 5000 VMs) …");
        emit(&e11_kilonode::render(&e11_kilonode::default_rows()), "e11");
    }
    if args.iter().any(|a| a == "e12") {
        eprintln!(
            "[e12] trace-driven consolidation (1000 LCs, full reference trace, ACO vs FFD) …"
        );
        emit(&e12_trace::render(&e12_trace::default_rows()), "e12_trace");
    }
    if args.iter().any(|a| a == "e13") {
        eprintln!("[e13] sharded execution (1024 LCs, queue-impl x worker-count sweep) …");
        let rows = e13_shard::default_rows();
        for f in e13_shard::digest_failures(&rows) {
            eprintln!("e13 DETERMINISM FAILURE: {f}");
        }
        emit(&e13_shard::render(&rows), "e13_shard");
    }
    if args.iter().any(|a| a == "e14") {
        eprintln!("[e14] consolidation arena (1000 LCs, algorithm x power-model sweep) …");
        emit(&e14_arena::render(&e14_arena::default_rows()), "e14_arena");
    }
}
