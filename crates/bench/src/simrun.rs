//! Shared harness for the full-system experiments (E4–E7): deploy a
//! Snooze hierarchy, drive it with a scripted client, and collect the
//! metrics the tables report.

use std::time::Instant;

use snooze::prelude::*;
use snooze_cluster::node::NodeSpec;
use snooze_cluster::resources::ResourceVector;
use snooze_cluster::vm::{VmId, VmSpec};
use snooze_cluster::workload::{UsageShape, VmWorkload};
use snooze_simcore::prelude::*;

/// Deployment shape for a system experiment.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Manager components (one becomes GL; the rest serve as GMs).
    pub managers: usize,
    /// Physical nodes / LCs.
    pub lcs: usize,
    /// Entry points.
    pub eps: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A deployed system plus its driver client.
pub struct LiveSystem {
    /// The engine.
    pub sim: Engine,
    /// Component handles.
    pub system: SnoozeSystem,
    /// The scripted client.
    pub client: ComponentId,
    wall_start: Instant,
}

/// Build a flat-utilization VM spec of `cores` cores.
pub fn vm_item(id: u64, cores: f64, mem_mb: f64, util: f64) -> ScheduledVm {
    let mut spec = VmSpec::new(VmId(id), ResourceVector::new(cores, mem_mb, 100.0, 100.0));
    spec.image_mb = 1024.0; // small OS image: migrations stay fast
    ScheduledVm {
        at: SimTime::ZERO,
        spec,
        workload: VmWorkload {
            cpu: UsageShape::Constant(util),
            memory: UsageShape::Constant(util),
            network: UsageShape::Constant(util),
            seed: id,
        },
        lifetime: None,
    }
}

/// A burst of `n` identical VMs at `at`.
pub fn burst(n: usize, at: SimTime, cores: f64, mem_mb: f64, util: f64) -> Vec<ScheduledVm> {
    (0..n)
        .map(|i| ScheduledVm {
            at,
            ..vm_item(i as u64, cores, mem_mb, util)
        })
        .collect()
}

/// Deploy a system with the given config and client schedule.
pub fn deploy(
    deployment: &Deployment,
    config: &SnoozeConfig,
    schedule: Vec<ScheduledVm>,
) -> LiveSystem {
    let mut sim = SimBuilder::new(deployment.seed)
        .network(NetworkConfig::lan())
        .build();
    let nodes = NodeSpec::standard_cluster(deployment.lcs);
    let system = SnoozeSystem::deploy(
        &mut sim,
        config,
        deployment.managers,
        &nodes,
        deployment.eps,
    );
    let ep = system.eps[0];
    let client = sim.add_component(
        "client",
        ClientDriver::new(ep, schedule, SimSpan::from_secs(15)),
    );
    LiveSystem {
        sim,
        system,
        client,
        wall_start: Instant::now(),
    }
}

impl LiveSystem {
    /// Run until `deadline` or until the client has an answer for every
    /// scheduled VM (whichever is first), stepping so the check stays
    /// cheap.
    pub fn run_until_settled(&mut self, deadline: SimTime) {
        let step = SimSpan::from_secs(5);
        while self.sim.now() < deadline {
            let next = (self.sim.now() + step).min(deadline);
            self.sim.run_until(next);
            if self.client().done() {
                break;
            }
        }
    }

    /// The driver client.
    pub fn client(&self) -> &ClientDriver {
        self.sim
            .component_as::<ClientDriver>(self.client)
            .expect("client exists")
    }

    /// Wall-clock milliseconds since deployment.
    pub fn wall_ms(&self) -> f64 {
        self.wall_start.elapsed().as_secs_f64() * 1e3
    }

    /// Management messages sent so far (the distributed-management cost
    /// E5 reports).
    pub fn messages_sent(&self) -> u64 {
        self.sim.metrics().counter("net.sent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_places_a_small_burst() {
        let dep = Deployment {
            managers: 2,
            lcs: 4,
            eps: 1,
            seed: 1,
        };
        let schedule = burst(4, SimTime::from_secs(10), 2.0, 4096.0, 0.5);
        let mut live = deploy(&dep, &SnoozeConfig::fast_test(), schedule);
        live.run_until_settled(SimTime::from_secs(300));
        assert_eq!(live.client().placed.len(), 4);
        assert!(live.messages_sent() > 0);
        assert!(live.wall_ms() >= 0.0);
    }
}
