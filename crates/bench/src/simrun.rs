//! Compatibility shim over the scenario layer's live harness.
//!
//! The deploy/burst/settle machinery that used to live here moved into
//! `snooze-scenario::live`, where the scenario compiler consumes it; the
//! experiment modules now drive it through declarative
//! [`snooze_scenario::ScenarioSpec`]s. The Criterion benches (and any
//! out-of-tree user of the old API) keep these re-exports.
//!
//! One behavioural fix rode along with the move: [`burst`] now threads a
//! [`VmIdAlloc`] instead of restarting VM ids at 0 on every call, so two
//! bursts in one schedule can no longer collide on `VmId`s (or on the
//! per-VM RNG streams seeded from them).

pub use snooze_scenario::live::{
    burst, deploy, deploy_hierarchy, deploy_unified, vm_item, Deployment, LiveSystem, Stack,
    VmIdAlloc,
};

#[cfg(test)]
mod tests {
    use super::*;
    use snooze::prelude::SnoozeConfig;
    use snooze_simcore::prelude::*;

    #[test]
    fn harness_places_a_small_burst() {
        let dep = Deployment {
            managers: 2,
            lcs: 4,
            eps: 1,
            seed: 1,
        };
        let schedule = burst(
            &mut VmIdAlloc::new(),
            4,
            SimTime::from_secs(10),
            2.0,
            4096.0,
            0.5,
        );
        let mut live = deploy(&dep, &SnoozeConfig::fast_test(), schedule);
        live.run_until_settled(SimTime::from_secs(300));
        assert_eq!(live.client().placed.len(), 4);
        assert!(live.messages_sent() > 0);
        assert!(live.wall_ms() >= 0.0);
    }

    /// Regression for the id-collision bug: scheduling two bursts used
    /// to hand both the ids 0..n, so the client saw duplicate VmIds and
    /// identical workload RNG streams. One allocator per schedule keeps
    /// them disjoint — and the whole two-burst schedule places.
    #[test]
    fn two_bursts_in_one_schedule_all_place() {
        let dep = Deployment {
            managers: 2,
            lcs: 6,
            eps: 1,
            seed: 3,
        };
        let mut alloc = VmIdAlloc::new();
        let mut schedule = burst(&mut alloc, 4, SimTime::from_secs(10), 2.0, 4096.0, 0.5);
        schedule.extend(burst(
            &mut alloc,
            4,
            SimTime::from_secs(40),
            2.0,
            4096.0,
            0.5,
        ));
        let ids: std::collections::BTreeSet<u64> = schedule.iter().map(|v| v.spec.id.0).collect();
        assert_eq!(ids.len(), 8, "all VmIds distinct across bursts");
        let mut live = deploy(&dep, &SnoozeConfig::fast_test(), schedule);
        live.run_until_settled(SimTime::from_secs(300));
        assert_eq!(
            live.client().placed.len(),
            8,
            "every VM of both bursts placed"
        );
    }
}
