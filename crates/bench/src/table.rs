//! Minimal fixed-width table printing for experiment output.

/// A printable table: header plus rows of equally many cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as CSV (header + rows; cells containing commas or quotes
    /// are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to stdout output: `<dir>/<slug>.csv`, where the
    /// slug is derived from the title's leading experiment id.
    pub fn write_csv(&self, dir: &std::path::Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }

    /// Render as machine-readable JSON.
    ///
    /// Schema: `{"title": string, "columns": [string, ...],
    /// "rows": [{"<column>": string, ...}, ...]}` — every cell is kept as
    /// the exact string that the text renderer prints (units and rounding
    /// included), so a JSON consumer sees precisely the published table.
    /// Duplicate column names keep the last value (none of the E1–E10
    /// tables have duplicates).
    pub fn to_json(&self) -> String {
        let q = |s: &str| format!("\"{}\"", snooze_telemetry::json::escape(s));
        let mut out = String::from("{\n  \"title\": ");
        out.push_str(&q(&self.title));
        out.push_str(",\n  \"columns\": [");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&q(h));
        }
        out.push_str("],\n  \"rows\": [");
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(if r > 0 { ",\n    {" } else { "\n    {" });
            for (i, (h, cell)) in self.header.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&q(h));
                out.push_str(": ");
                out.push_str(&q(cell));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the JSON rendering to `<dir>/<slug>.json`.
    pub fn write_json(&self, dir: &std::path::Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.json")), self.to_json())
    }

    /// A copy of the table with the named columns removed (unknown names
    /// are ignored). Used by the release-table identity gate to drop
    /// wall-clock columns before comparing against the checked-in
    /// goldens.
    pub fn without_columns(&self, drop: &[&str]) -> Table {
        let keep: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .filter(|(_, h)| !drop.contains(&h.as_str()))
            .map(|(i, _)| i)
            .collect();
        Table {
            title: self.title.clone(),
            header: keep.iter().map(|&i| self.header[i].clone()).collect(),
            rows: self
                .rows
                .iter()
                .map(|row| keep.iter().map(|&i| row[i].clone()).collect())
                .collect(),
        }
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["1".into(), "10.00".into()]);
        t.row(vec!["100".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  n  value"));
        assert!(s.contains("  1  10.00"));
        assert!(s.contains("100   2.50"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_delimiters() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn json_matches_documented_schema() {
        let mut t = Table::new("E0 demo", &["n", "note"]);
        t.row(vec!["1".into(), "plain".into()]);
        t.row(vec!["2".into(), "with \"quotes\"".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\n  \"title\": \"E0 demo\",\n  \"columns\": [\"n\", \"note\"],\n  \"rows\": [\n    {\"n\": \"1\", \"note\": \"plain\"},\n    {\"n\": \"2\", \"note\": \"with \\\"quotes\\\"\"}\n  ]\n}\n"
        );
    }

    #[test]
    fn empty_table_still_renders_valid_json() {
        let t = Table::new("empty", &["a"]);
        assert_eq!(
            t.to_json(),
            "{\n  \"title\": \"empty\",\n  \"columns\": [\"a\"],\n  \"rows\": [\n  ]\n}\n"
        );
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(2.34), "2.3");
        assert_eq!(pct(0.047), "4.7%");
    }
}
