//! **E10 — distributed consolidation** (paper §V, evaluated):
//!
//! > "a distributed version of the algorithm will be developed and
//! > evaluated along with the energy-saving features of Snooze under
//! > realistic workloads."
//!
//! Two complementary views:
//!
//! 1. **Offline**: the partitioned `DistributedAco` versus the
//!    centralized colony on the same instances — the quality cost and
//!    runtime benefit of partitioning (each colony only sees `n/k`
//!    items).
//! 2. **In the hierarchy**: Snooze's per-GM reconfiguration *is* the
//!    distributed deployment — each GM consolidates only its own LCs.
//!    Sweeping the GM count on a fixed cluster measures how partitioning
//!    the consolidation scope affects the nodes the system manages to
//!    power down. The sweep is a declarative scenario
//!    (`scenarios/e10b.toml`).

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::distributed::{DistributedAco, DistributedParams};
use snooze_consolidation::problem::{Consolidator, InstanceGenerator};
use snooze_scenario::presets;
use snooze_simcore::rng::SimRng;
use snooze_simcore::wallclock::WallClock;

use crate::table::{f2, Table};

/// One offline comparison row.
#[derive(Clone, Debug)]
pub struct E10OfflineRow {
    /// Instance size.
    pub n: usize,
    /// Partitions.
    pub partitions: usize,
    /// Mean hosts, centralized colony.
    pub central_hosts: f64,
    /// Mean hosts, distributed colonies + ring exchange.
    pub distributed_hosts: f64,
    /// Mean runtime of the centralized colony, ms (advisory).
    pub central_ms: f64,
    /// Mean runtime of the distributed scheme, ms (advisory).
    pub distributed_ms: f64,
}

/// Offline sweep.
pub fn run_offline(
    sizes: &[usize],
    partitions: usize,
    repeats: u64,
    seed: u64,
) -> Vec<E10OfflineRow> {
    let gen = InstanceGenerator::grid11();
    sizes
        .iter()
        .map(|&n| {
            let mut row = E10OfflineRow {
                n,
                partitions,
                central_hosts: 0.0,
                distributed_hosts: 0.0,
                central_ms: 0.0,
                distributed_ms: 0.0,
            };
            let mut solved = 0u64;
            for rep in 0..repeats {
                let inst = gen.generate(n, &mut SimRng::new(seed ^ ((n as u64) << 8) ^ rep));
                let central = AcoConsolidator::new(AcoParams::default());
                let distributed = DistributedAco::new(DistributedParams {
                    partitions,
                    exchange_rounds: 2,
                    aco: AcoParams::default(),
                });
                let t0 = WallClock::start();
                let c = central.consolidate(&inst);
                let c_ms = t0.elapsed_ms();
                let t1 = WallClock::start();
                let d = distributed.consolidate(&inst);
                let d_ms = t1.elapsed_ms();
                if let (Some(c), Some(d)) = (c, d) {
                    solved += 1;
                    row.central_hosts += c.bins_used() as f64;
                    row.distributed_hosts += d.bins_used() as f64;
                    row.central_ms += c_ms;
                    row.distributed_ms += d_ms;
                }
            }
            if solved > 0 {
                let k = solved as f64;
                row.central_hosts /= k;
                row.distributed_hosts /= k;
                row.central_ms /= k;
                row.distributed_ms /= k;
            }
            row
        })
        .collect()
}

/// One in-hierarchy row.
#[derive(Clone, Debug)]
pub struct E10SystemRow {
    /// Group managers sharing the cluster.
    pub gms: usize,
    /// Nodes still powered on at the end (fewer = better packing).
    pub nodes_on: usize,
    /// Cluster energy over the horizon, Wh.
    pub energy_wh: f64,
    /// Migrations the reconfigurations commanded.
    pub migrations: u64,
    /// VMs placed.
    pub placed: usize,
}

/// In-hierarchy sweep: same cluster and fleet, varying how many GMs the
/// consolidation scope is partitioned across.
pub fn run_in_hierarchy(
    gm_counts: &[usize],
    lcs: usize,
    vms: usize,
    seed: u64,
) -> Vec<E10SystemRow> {
    gm_counts
        .iter()
        .zip(presets::e10b(gm_counts, lcs, vms, seed).iter())
        .map(|(&gms, spec)| {
            let o = snooze_scenario::run(spec)
                .expect("E10b preset compiles")
                .outcome;
            E10SystemRow {
                gms,
                nodes_on: o.nodes_on_end,
                energy_wh: o.energy_wh,
                migrations: o.migrations,
                placed: o.placed,
            }
        })
        .collect()
}

/// Default offline rows for `run_experiments e10`.
pub fn default_offline_rows() -> Vec<E10OfflineRow> {
    run_offline(&[60, 120, 240], 4, 3, 0x10)
}

/// Default in-hierarchy rows for `run_experiments e10`.
pub fn default_system_rows() -> Vec<E10SystemRow> {
    run_in_hierarchy(&[1, 2, 4], 24, 36, 0x10)
}

/// Render the offline table.
pub fn render_offline(rows: &[E10OfflineRow]) -> Table {
    let mut t = Table::new(
        "E10a: distributed vs centralized ACO (offline) — partitioning cost",
        &[
            "n",
            "parts",
            "central hosts",
            "dist hosts",
            "central ms",
            "dist ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.partitions.to_string(),
            f2(r.central_hosts),
            f2(r.distributed_hosts),
            f2(r.central_ms),
            f2(r.distributed_ms),
        ]);
    }
    t
}

/// Render the in-hierarchy table.
pub fn render_system(rows: &[E10SystemRow]) -> Table {
    let mut t = Table::new(
        "E10b: per-GM reconfiguration in the hierarchy — consolidation scope vs GM count",
        &["GMs", "nodes on", "energy Wh", "migrations", "placed"],
    );
    for r in rows {
        t.row(vec![
            r.gms.to_string(),
            r.nodes_on.to_string(),
            f2(r.energy_wh),
            r.migrations.to_string(),
            r.placed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_costs_a_bounded_amount_of_quality() {
        let rows = run_offline(&[60], 3, 2, 5);
        let r = &rows[0];
        assert!(r.central_hosts > 0.0 && r.distributed_hosts > 0.0);
        assert!(
            r.distributed_hosts <= r.central_hosts * 1.3,
            "distributed within 30%: {} vs {}",
            r.distributed_hosts,
            r.central_hosts
        );
    }

    #[test]
    fn in_hierarchy_consolidation_powers_down_nodes_at_any_gm_count() {
        let rows = run_in_hierarchy(&[1, 2], 10, 10, 9);
        for r in &rows {
            assert_eq!(r.placed, 10, "gms={}", r.gms);
            assert!(
                r.nodes_on < 10,
                "gms={}: consolidation should empty some nodes, on={}",
                r.gms,
                r.nodes_on
            );
        }
    }
}
