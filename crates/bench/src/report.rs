//! The telemetry report: a full-stack observability scenario plus the
//! breakdown tables the `report` binary prints.
//!
//! The scenario is E4-shaped: one GL, four GMs, 32 LCs, a burst of 100
//! VMs, and one GM crash mid-burst. Every client submission becomes a
//! causal span tree (client.submit → ep.forward → gl.dispatch →
//! gm.place → lc.boot); the tables decompose placement latency by hop,
//! list the failover timeline, and profile the ACO consolidator's
//! phases. [`export_all`] writes the standard-format exports (Chrome
//! trace-event JSON, Prometheus text exposition, JSONL dumps) — all
//! byte-identical across two same-seed runs.

use snooze_consolidation::{AcoConsolidator, AcoParams, InstanceGenerator};
use snooze_simcore::metrics::Histogram;
use snooze_simcore::prelude::*;
use snooze_simcore::telemetry::{self, SpanId, SpanLog, SpanRecord};

use crate::simrun::LiveSystem;
use crate::table::{f2, Table};

pub use snooze_scenario::presets::report_failover;
pub use snooze_scenario::{ScenarioRun, ScenarioSpec, WindowStatus};

/// Run the scenario to completion and return the finished run (live
/// system with its span log and metrics, windowed time-series, SLO
/// alerts, incident dumps). The acceptance scenario itself is
/// [`report_failover`] (`scenarios/report.toml`): a 100-VM burst with
/// one GM crash while placements are in flight — its zero-tolerance
/// heartbeat watchdog trips during the failover, so the run arrives
/// with alerts and at least one incident dump. With `watch`, every
/// closed metric window prints a live status line.
pub fn run_scenario(spec: &ScenarioSpec, watch: bool) -> ScenarioRun {
    let name = spec.name.clone();
    let mut print_status = move |s: &WindowStatus| {
        eprintln!(
            "[watch] {name} w{:>3} t={:>5}s rows={:<3} alerts={} queue={} dead={}",
            s.window,
            s.at.as_micros() / 1_000_000,
            s.rows,
            s.alerts,
            s.queue_depth,
            s.dead_letters,
        );
    };
    let cb: Option<&mut dyn FnMut(&WindowStatus)> =
        if watch { Some(&mut print_status) } else { None };
    snooze_scenario::run_watch(spec, cb).expect("report scenario compiles")
}

/// The first crashed component of a finished run, if any.
pub fn crashed_component(run: &ScenarioRun) -> Option<ComponentId> {
    run.outcome.faults.first().map(|f| f.target)
}

/// Continuous-observability headline for a finished run: windows,
/// alerts, incidents, profiled events.
pub fn obs_summary(run: &mut ScenarioRun) -> Table {
    let mut t = Table::new("continuous observability", &["metric", "value"]);
    t.row(vec![
        "windows closed".into(),
        run.outcome.windows.to_string(),
    ]);
    t.row(vec![
        "window rows".into(),
        run.windows
            .as_ref()
            .map(|w| w.len())
            .unwrap_or(0)
            .to_string(),
    ]);
    t.row(vec![
        "slo alerts".into(),
        run.outcome.slo_alerts.len().to_string(),
    ]);
    t.row(vec![
        "incident dumps".into(),
        run.incidents.len().to_string(),
    ]);
    t.row(vec![
        "profiled events".into(),
        run.live
            .sim
            .profile_rows()
            .iter()
            .map(|r| r.events)
            .sum::<u64>()
            .to_string(),
    ]);
    t
}

/// Write the continuous-observability exports into `dir`:
///
/// * `windows.jsonl` / `windows.csv` — the windowed time-series
/// * `profile.folded` — folded-stack profile (event counts; feed into
///   `inferno` / `flamegraph.pl`)
/// * `incident_<n>.toml` — one canonical dump per captured incident
///
/// All deterministic: byte-identical across same-seed runs.
pub fn export_obs(run: &mut ScenarioRun, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Some(log) = &run.windows {
        std::fs::write(dir.join("windows.jsonl"), log.to_jsonl())?;
        std::fs::write(dir.join("windows.csv"), log.to_csv())?;
    }
    std::fs::write(dir.join("profile.folded"), run.live.sim.profile_folded())?;
    for (i, incident) in run.incidents.iter().enumerate() {
        std::fs::write(dir.join(format!("incident_{i}.toml")), incident.to_toml())?;
    }
    Ok(())
}

/// Track-naming function for the Chrome exporter: component name + id.
pub fn track_name<C: Component>(sim: &Engine<C>) -> impl Fn(u64) -> String + '_ {
    |t| format!("{} #{t}", sim.name_of(ComponentId(t as usize)))
}

/// Write every standard-format export into `dir`:
///
/// * `trace.chrome.json` — Chrome trace-event JSON (load in Perfetto / `chrome://tracing`)
/// * `spans.jsonl` — one JSON object per span
/// * `metrics.prom` — Prometheus text exposition
/// * `metrics.jsonl` — one JSON object per metric
///
/// All four are deterministic: byte-identical across same-seed runs.
pub fn export_all<C: Component>(sim: &Engine<C>, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("trace.chrome.json"),
        telemetry::chrome::render(sim.spans(), &track_name(sim)),
    )?;
    std::fs::write(
        dir.join("spans.jsonl"),
        telemetry::jsonl::render(sim.spans()),
    )?;
    std::fs::write(dir.join("metrics.prom"), sim.metrics().to_prometheus())?;
    std::fs::write(dir.join("metrics.jsonl"), sim.metrics().to_jsonl())
}

/// Depth-first search for the first descendant of `root` named `name`.
pub fn find_descendant<'a>(log: &'a SpanLog, root: SpanId, name: &str) -> Option<&'a SpanRecord> {
    let mut stack: Vec<SpanId> = log.children_of(root).map(|s| s.id).collect();
    while let Some(id) = stack.pop() {
        let rec = log.get(id)?;
        if rec.name == name {
            return Some(rec);
        }
        stack.extend(log.children_of(id).map(|s| s.id));
    }
    None
}

/// The hop chain a placement travels, inner to outer.
pub const HOPS: [&str; 4] = ["ep.forward", "gl.dispatch", "gm.place", "lc.boot"];

/// Submission-latency decomposition: for every *placed* submission span
/// tree, the per-hop span durations plus the end-to-end latency.
pub fn hop_decomposition(log: &SpanLog) -> Table {
    let mut hists: Vec<(&str, Histogram)> =
        std::iter::once(("client.submit (end-to-end)", Histogram::default()))
            .chain(HOPS.iter().map(|&h| (h, Histogram::default())))
            .collect();
    for root in log.roots().filter(|s| s.name == "client.submit") {
        if root.label("outcome") != Some("placed") {
            continue;
        }
        if let Some(d) = root.duration_us() {
            hists[0].1.record(d as f64 / 1e6);
        }
        for (i, &hop) in HOPS.iter().enumerate() {
            if let Some(d) = find_descendant(log, root.id, hop).and_then(|s| s.duration_us()) {
                hists[i + 1].1.record(d as f64 / 1e6);
            }
        }
    }
    let mut t = Table::new(
        "submission latency by hop (seconds)",
        &["hop", "count", "mean", "p50", "p95", "max"],
    );
    for (name, h) in &hists {
        let s = h.summary();
        t.row(vec![
            name.to_string(),
            s.count.to_string(),
            f2(s.mean),
            f2(s.p50),
            f2(s.p95),
            f2(s.max),
        ]);
    }
    t
}

/// Failure/recovery events in time order: detected failures, leader
/// promotions, and the election campaigns they triggered.
pub fn failover_timeline<C: Component>(sim: &Engine<C>) -> Table {
    const EVENTS: [&str; 4] = [
        "gl.gm-failover",
        "gm.lc-failover",
        "gl.promoted",
        "election.campaign",
    ];
    let mut t = Table::new(
        "failover timeline",
        &["t (s)", "component", "event", "detail"],
    );
    let names = track_name(sim);
    for span in sim.spans().iter() {
        if !EVENTS.contains(&span.name) {
            continue;
        }
        let detail = span
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            f2(span.start_us as f64 / 1e6),
            names(span.track),
            span.name.to_string(),
            detail,
        ]);
    }
    t
}

/// ACO phase profile on a representative GRID'11 instance, via the
/// profiling hooks in `aco.rs`. Work units are deterministic; the
/// wall-clock milliseconds are advisory (host-dependent) and marked so.
pub fn aco_phase_table(n_items: usize, seed: u64) -> Table {
    let inst = InstanceGenerator::grid11().generate(n_items, &mut SimRng::new(seed));
    let run = AcoConsolidator::new(AcoParams::default()).run(&inst);
    let p = run.profile;
    let total_work =
        (p.construction_steps + p.evaluation_comparisons + p.evaporation_updates).max(1) as f64;
    let mut t = Table::new(
        format!(
            "ACO phase profile ({n_items} VMs, {} cycles, best {} bins)",
            p.cycles,
            run.solution.as_ref().map(|s| s.bins_used()).unwrap_or(0)
        ),
        &["phase", "work units", "share", "wall ms (advisory)"],
    );
    let rows: [(&str, u64, u64); 3] = [
        ("construction", p.construction_steps, p.construction_nanos),
        ("evaluation", p.evaluation_comparisons, p.evaluation_nanos),
        ("evaporation", p.evaporation_updates, p.evaporation_nanos),
    ];
    for (phase, work, nanos) in rows {
        t.row(vec![
            phase.to_string(),
            work.to_string(),
            format!("{:.1}%", work as f64 / total_work * 100.0),
            f2(nanos as f64 / 1e6),
        ]);
    }
    t
}

/// Scenario headline: what happened, and the determinism fingerprints.
pub fn scenario_summary(live: &LiveSystem, crashed: Option<ComponentId>) -> Table {
    let mut t = Table::new("scenario summary", &["metric", "value"]);
    let client = live.client();
    t.row(vec!["vms placed".into(), client.placed.len().to_string()]);
    t.row(vec![
        "vms rejected".into(),
        client.rejected.len().to_string(),
    ]);
    t.row(vec![
        "vms abandoned".into(),
        client.abandoned.len().to_string(),
    ]);
    t.row(vec![
        "crashed gm".into(),
        crashed
            .map(|c| format!("{c:?}"))
            .unwrap_or_else(|| "-".into()),
    ]);
    t.row(vec![
        "spans recorded".into(),
        live.sim.spans().len().to_string(),
    ]);
    t.row(vec![
        "span digest".into(),
        format!("{:016x}", live.sim.span_digest()),
    ]);
    t.row(vec![
        "event digest".into(),
        format!("{:016x}", live.sim.digest()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_decomposition_reads_span_trees() {
        let mut log = SpanLog::default();
        let root = log.open("client.submit", 0, None, 0);
        log.label(root, "outcome", "placed");
        let hop = log.open("ep.forward", 1, Some(root), 100);
        log.close(hop, 150);
        let dispatch = log.open("gl.dispatch", 2, Some(hop), 200);
        log.close(dispatch, 1_200_000);
        log.close(root, 2_000_000);
        let t = hop_decomposition(&log);
        let rendered = t.render();
        assert!(rendered.contains("client.submit"));
        assert!(rendered.contains("gl.dispatch"));
        // 1 sample for the hops present, 0 for the missing ones.
        assert!(t.len() == 1 + HOPS.len());
    }

    #[test]
    fn aco_phase_table_shows_three_phases() {
        let t = aco_phase_table(20, 7);
        let s = t.render();
        assert!(s.contains("construction"));
        assert!(s.contains("evaluation"));
        assert!(s.contains("evaporation"));
    }
}
