//! **E13 — sharded execution** (engine throughput under shards).
//!
//! The sharded engine partitions the event queue by GM subtree and runs
//! the shards on worker threads, committing events through a
//! timestamp-ordered merge inside a conservative lookahead window (see
//! DESIGN.md row 36). Two properties are on trial here, on the same
//! fault-free kilonode shape as E11:
//!
//! 1. **Determinism**: the audited engine digest must not depend on the
//!    worker count — every 4-shard row reports one digest, whatever the
//!    thread pool width. (Shard *count* is semantic: it reorders
//!    same-timestamp events across subtrees, so S=1 and S=4 digests
//!    legitimately differ. The S=1 rows are byte-identical to E11.)
//! 2. **Throughput**: events per wall-clock second across the queue
//!    implementation (binary heap vs bucket/calendar) and worker-count
//!    axes. `BENCH_E13_SHARD.json` at the workspace root is the
//!    checked-in measurement.
//!
//! `run_experiments --shard-smoke` runs the reduced 256-LC shape at
//! S=4/W=1 and S=4/W=4 and fails on any digest disagreement, dead
//! letter, or placement shortfall — the CI gate behind
//! `scripts/check.sh --shard-smoke`.

use snooze_scenario::presets;

use crate::table::{f2, Table};

/// One E13 run's outcome.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Scenario name (`e13-shard-1024-s4w4-bucket`, …).
    pub name: String,
    /// Event-queue shards.
    pub shards: usize,
    /// Worker threads.
    pub workers: usize,
    /// Queue implementation (`heap` / `bucket`).
    pub queue: String,
    /// VMs submitted.
    pub vms: usize,
    /// VMs successfully placed.
    pub placed: usize,
    /// Simulator events executed.
    pub sim_events: u64,
    /// Deliveries that found no live receiver (must be 0: fault-free).
    pub dead_letters: u64,
    /// The audited FNV engine digest of the run's executed history.
    pub digest: u64,
    /// Advisory wall-clock of the whole run, ms.
    pub wall_ms: f64,
}

impl E13Row {
    /// Advisory engine throughput: simulated events per wall-clock
    /// second (NaN when the clock read 0 ms).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.sim_events as f64 / (self.wall_ms / 1000.0)
        } else {
            f64::NAN
        }
    }
}

/// Run one E13 shape and fold it into a row.
pub fn run_shape(lcs: usize, shards: usize, workers: usize, queue: &str, seed: u64) -> E13Row {
    let spec = presets::e13(lcs, shards, workers, queue, seed);
    let run = snooze_scenario::run(&spec).expect("E13 preset compiles");
    let o = &run.outcome;
    E13Row {
        name: o.name.clone(),
        shards,
        workers,
        queue: queue.into(),
        vms: o.requested_vms,
        placed: o.placed,
        sim_events: o.sim_events,
        dead_letters: o.dead_letters,
        digest: run.live.sim.digest(),
        wall_ms: o.wall_ms,
    }
}

/// The full E13 sweep used by `run_experiments e13` (1024 LCs, the
/// `presets::e13_default` geometry grid).
pub fn default_rows() -> Vec<E13Row> {
    sweep_rows(1024, 0xE11)
}

/// The sweep at an arbitrary scale (tests run it at a few dozen LCs).
pub fn sweep_rows(lcs: usize, seed: u64) -> Vec<E13Row> {
    let mut rows = vec![
        run_shape(lcs, 1, 1, "heap", seed),
        run_shape(lcs, 1, 1, "bucket", seed),
    ];
    for &workers in &[1usize, 2, 4, 8] {
        rows.push(run_shape(lcs, 4, workers, "bucket", seed));
    }
    rows.push(run_shape(lcs, 4, 4, "heap", seed));
    rows
}

/// Cross-row determinism violations: rows with the same shard count
/// must agree on the digest regardless of worker count or queue
/// implementation. Empty = clean.
pub fn digest_failures(rows: &[E13Row]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in rows {
        if let Some(first) = rows.iter().find(|o| o.shards == r.shards) {
            if first.digest != r.digest {
                failures.push(format!(
                    "{}: digest {:016x} != {:016x} ({}) at the same shard count",
                    r.name, r.digest, first.digest, first.name
                ));
            }
        }
    }
    failures
}

/// The `--shard-smoke` gate: the reduced 256-LC shape at S=4/W=1 and
/// S=4/W=4. Returns the rows and every failure found (digest drift
/// across worker counts, dead letters, placement shortfall).
pub fn smoke() -> (Vec<E13Row>, Vec<String>) {
    let rows = vec![
        run_shape(256, 4, 1, "bucket", 0xE11),
        run_shape(256, 4, 4, "bucket", 0xE11),
    ];
    let mut failures = digest_failures(&rows);
    for r in &rows {
        if r.dead_letters != 0 {
            failures.push(format!(
                "{}: {} dead letter(s) in a fault-free run",
                r.name, r.dead_letters
            ));
        }
        if r.placed != r.vms {
            failures.push(format!("{}: placed {}/{} VMs", r.name, r.placed, r.vms));
        }
        if r.events_per_sec().is_nan() {
            failures.push(format!("{}: throughput column is empty", r.name));
        }
    }
    (rows, failures)
}

/// Render the table.
pub fn render(rows: &[E13Row]) -> Table {
    let baseline = rows
        .iter()
        .find(|r| r.shards == 1 && r.queue == "heap")
        .map(|r| r.events_per_sec());
    let mut t = Table::new(
        "E13: sharded execution (fault-free E11 shape; same-shard rows must agree on digest)",
        &[
            "scenario",
            "shards",
            "workers",
            "queue",
            "VMs",
            "placed",
            "sim events",
            "dead letters",
            "digest",
            "wall ms",
            "events/s",
            "vs s1-heap",
        ],
    );
    for r in rows {
        let eps = r.events_per_sec();
        t.row(vec![
            r.name.clone(),
            r.shards.to_string(),
            r.workers.to_string(),
            r.queue.clone(),
            r.vms.to_string(),
            r.placed.to_string(),
            r.sim_events.to_string(),
            r.dead_letters.to_string(),
            format!("{:016x}", r.digest),
            f2(r.wall_ms),
            if eps.is_nan() {
                "-".into()
            } else {
                format!("{eps:.0}")
            },
            match baseline {
                Some(b) if b > 0.0 && eps.is_finite() => format!("{:.2}x", eps / b),
                _ => "-".into(),
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_row_matches_plain_e11_history() {
        // The S=1 heap shape is the plain E11 smoke run plus an inert
        // `[engine]`-table default — digests must be byte-identical.
        let e13 = run_shape(16, 1, 1, "heap", 3);
        let e11 = snooze_scenario::run(&presets::e11(16, false, 3)).unwrap();
        assert_eq!(e13.digest, e11.live.sim.digest());
        assert_eq!(e13.sim_events, e11.outcome.sim_events);
        assert_eq!(e13.dead_letters, 0);
        assert_eq!(e13.placed, e13.vms);
    }

    #[test]
    fn worker_count_never_changes_the_digest() {
        let rows: Vec<E13Row> = [1usize, 2, 4]
            .iter()
            .map(|&w| run_shape(16, 4, w, "bucket", 3))
            .collect();
        assert!(digest_failures(&rows).is_empty(), "{:?}", rows);
        assert!(rows.iter().all(|r| r.dead_letters == 0));
        assert!(rows.iter().all(|r| r.placed == r.vms));
    }

    #[test]
    fn queue_impl_never_changes_the_digest() {
        let heap = run_shape(16, 4, 1, "heap", 3);
        let bucket = run_shape(16, 4, 1, "bucket", 3);
        assert_eq!(heap.digest, bucket.digest);
        assert_eq!(heap.sim_events, bucket.sim_events);
    }

    #[test]
    fn table_has_the_digest_and_speedup_columns() {
        let rows = vec![run_shape(16, 1, 1, "heap", 3)];
        let rendered = render(&rows).render();
        assert!(rendered.contains("digest"));
        assert!(rendered.contains("vs s1-heap"));
        assert!(rendered.contains("1.00x"));
    }
}
