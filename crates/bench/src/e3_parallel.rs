//! **E3 — ACO parallelization** (paper §III-A: "the algorithm is well
//! suited for parallelization").
//!
//! Measures colony wall-time with sequential ant construction versus
//! Rayon-parallel ants over varying thread counts, and verifies the
//! parallel run produces the identical solution (determinism is part of
//! the contract, see `crates/consolidation/src/aco.rs`).

use std::time::Instant;

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::problem::InstanceGenerator;
use snooze_simcore::rng::SimRng;

use crate::table::{f2, Table};

/// One measurement.
#[derive(Clone, Debug)]
pub struct E3Row {
    /// Number of VMs.
    pub n: usize,
    /// Threads in the Rayon pool (1 = sequential path).
    pub threads: usize,
    /// Colony wall time, milliseconds.
    pub runtime_ms: f64,
    /// Speedup vs the 1-thread row of the same size.
    pub speedup: f64,
    /// Hosts used (must be identical across thread counts).
    pub hosts: usize,
}

/// Run E3 for the given sizes and thread counts.
pub fn run(sizes: &[usize], threads: &[usize], seed: u64) -> Vec<E3Row> {
    let gen = InstanceGenerator::grid11();
    let mut rows = Vec::new();
    for &n in sizes {
        let instance = gen.generate(n, &mut SimRng::new(seed ^ (n as u64)));
        let mut base_ms = 0.0;
        for &t in threads {
            let params = AcoParams {
                n_ants: 16,
                parallel_ants: t > 1,
                seed: 0xE3,
                ..AcoParams::default()
            };
            let aco = AcoConsolidator::new(params);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool");
            let start = Instant::now();
            let run = pool.install(|| aco.run(&instance));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if t == threads[0] {
                base_ms = ms;
            }
            rows.push(E3Row {
                n,
                threads: t,
                runtime_ms: ms,
                speedup: if ms > 0.0 { base_ms / ms } else { 0.0 },
                hosts: run.solution.map(|s| s.bins_used()).unwrap_or(0),
            });
        }
    }
    rows
}

/// Default configuration used by `run_experiments e3`.
pub fn default_rows() -> Vec<E3Row> {
    let max = num_threads_available();
    let mut threads = vec![1, 2, 4, 8];
    threads.retain(|&t| t <= max);
    run(&[100, 200, 400], &threads, 0xE3)
}

fn num_threads_available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Render the table.
pub fn render(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3: ACO parallel ants — runtime and speedup vs sequential",
        &["n", "threads", "runtime ms", "speedup", "hosts"],
    );
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.threads.to_string(),
            f2(r.runtime_ms),
            f2(r.speedup),
            r.hosts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_quality_is_thread_invariant() {
        let rows = run(&[60], &[1, 2], 5);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].hosts, rows[1].hosts,
            "parallelism must not change the answer"
        );
        assert!(rows[0].hosts > 0);
    }
}
