//! **E1 — ACO vs FFD vs optimal** (paper §III-B).
//!
//! The paper's headline table: "compared to FFD, the ACO-based approach
//! utilizes lower amounts of hosts and thus yields to superior average
//! host utilization and energy gains. Thereby, on average 4.7% of hosts
//! and 4.1% of energy were conserved (including energy spent into the
//! computation). Moreover, the proposed algorithm achieves nearly optimal
//! solutions (i.e. 1.1% deviation)."
//!
//! Instance sizes stay small enough (n ≤ 40) for the branch-and-bound
//! solver to certify optima, exactly as the paper limited its CPLEX runs.

use std::time::Instant;

use snooze_cluster::power::LinearPower;
use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::energy::{compute_energy_j, placement_energy_wh, EnergyParams};
use snooze_consolidation::exact::BranchAndBound;
use snooze_consolidation::ffd::{FirstFitDecreasing, SortKey};
use snooze_consolidation::problem::{Consolidator, InstanceGenerator};
use snooze_simcore::rng::SimRng;

use crate::table::{f2, pct, Table};
use crate::{PLACEMENT_HOLD_SECS, SOLVER_MACHINE_WATTS};

/// Per-size aggregate results.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Number of VMs in the instance.
    pub n: usize,
    /// Mean hosts used by FFD (CPU presort — the paper's baseline).
    pub ffd_hosts: f64,
    /// Mean hosts used by ACO.
    pub aco_hosts: f64,
    /// Mean optimal host count.
    pub opt_hosts: f64,
    /// Mean utilization of used hosts, FFD.
    pub ffd_util: f64,
    /// Mean utilization of used hosts, ACO.
    pub aco_util: f64,
    /// Mean energy (Wh) of the FFD placement incl. compute.
    pub ffd_energy_wh: f64,
    /// Mean energy (Wh) of the ACO placement incl. compute.
    pub aco_energy_wh: f64,
    /// Fraction of hosts ACO saves vs FFD.
    pub hosts_saved: f64,
    /// Fraction of energy ACO saves vs FFD.
    pub energy_saved: f64,
    /// ACO's mean deviation from the optimum (fraction of hosts).
    pub deviation_from_opt: f64,
}

/// Run E1 over the given sizes with `repeats` random instances per size.
pub fn run(sizes: &[usize], repeats: u64, base_seed: u64) -> Vec<E1Row> {
    let gen = InstanceGenerator::grid11();
    let power = LinearPower::grid5000();
    let mut rows = Vec::new();

    for &n in sizes {
        let mut acc = E1Row {
            n,
            ffd_hosts: 0.0,
            aco_hosts: 0.0,
            opt_hosts: 0.0,
            ffd_util: 0.0,
            aco_util: 0.0,
            ffd_energy_wh: 0.0,
            aco_energy_wh: 0.0,
            hosts_saved: 0.0,
            energy_saved: 0.0,
            deviation_from_opt: 0.0,
        };
        for rep in 0..repeats {
            let mut rng = SimRng::new(base_seed ^ (n as u64) << 16 ^ rep);
            let instance = gen.generate(n, &mut rng);

            let measure = |algo: &dyn Consolidator| {
                let start = Instant::now();
                let sol = algo.consolidate(&instance).expect("solvable instance");
                let elapsed = start.elapsed().as_secs_f64();
                let energy = placement_energy_wh(
                    &instance,
                    &sol,
                    &EnergyParams {
                        power: &power,
                        duration_secs: PLACEMENT_HOLD_SECS,
                        compute_overhead_j: compute_energy_j(elapsed, SOLVER_MACHINE_WATTS),
                    },
                );
                (sol, energy)
            };

            let (ffd_sol, ffd_wh) = measure(&FirstFitDecreasing { key: SortKey::Cpu });
            let aco = AcoConsolidator::new(AcoParams {
                seed: rep ^ 0xE1,
                ..AcoParams::default()
            });
            let (aco_sol, aco_wh) = measure(&aco);
            let opt = BranchAndBound::default()
                .solve(&instance)
                .solution
                .expect("instance is solvable");

            acc.ffd_hosts += ffd_sol.bins_used() as f64;
            acc.aco_hosts += aco_sol.bins_used() as f64;
            acc.opt_hosts += opt.bins_used() as f64;
            acc.ffd_util += ffd_sol.avg_used_bin_utilization(&instance);
            acc.aco_util += aco_sol.avg_used_bin_utilization(&instance);
            acc.ffd_energy_wh += ffd_wh;
            acc.aco_energy_wh += aco_wh;
        }
        let k = repeats as f64;
        acc.ffd_hosts /= k;
        acc.aco_hosts /= k;
        acc.opt_hosts /= k;
        acc.ffd_util /= k;
        acc.aco_util /= k;
        acc.ffd_energy_wh /= k;
        acc.aco_energy_wh /= k;
        acc.hosts_saved = 1.0 - acc.aco_hosts / acc.ffd_hosts;
        acc.energy_saved = 1.0 - acc.aco_energy_wh / acc.ffd_energy_wh;
        acc.deviation_from_opt = acc.aco_hosts / acc.opt_hosts - 1.0;
        rows.push(acc);
    }
    rows
}

/// Default configuration used by `run_experiments e1`.
pub fn default_rows() -> Vec<E1Row> {
    run(&[10, 15, 20, 25, 30, 35, 40], 5, 0xE1)
}

/// Render rows as the experiment table.
pub fn render(rows: &[E1Row]) -> Table {
    let mut t = Table::new(
        "E1: ACO vs FFD(cpu) vs optimal — hosts / utilization / energy (paper: 4.7% hosts, 4.1% energy saved; 1.1% from optimal)",
        &[
            "n", "FFD hosts", "ACO hosts", "OPT hosts", "FFD util", "ACO util",
            "FFD Wh", "ACO Wh", "hosts saved", "energy saved", "dev. vs opt",
        ],
    );
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            f2(r.ffd_hosts),
            f2(r.aco_hosts),
            f2(r.opt_hosts),
            pct(r.ffd_util),
            pct(r.aco_util),
            f2(r.ffd_energy_wh),
            f2(r.aco_energy_wh),
            pct(r.hosts_saved),
            pct(r.energy_saved),
            pct(r.deviation_from_opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_claims() {
        // Small but real run: ACO ≥ as good as FFD, near-optimal.
        let rows = run(&[12, 18, 24], 3, 7);
        let mean_hosts_saved: f64 =
            rows.iter().map(|r| r.hosts_saved).sum::<f64>() / rows.len() as f64;
        let mean_dev: f64 =
            rows.iter().map(|r| r.deviation_from_opt).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_hosts_saved >= 0.0,
            "ACO must not lose to FFD: {mean_hosts_saved}"
        );
        assert!(
            mean_dev <= 0.10,
            "ACO should be within 10% of optimal, got {mean_dev}"
        );
        for r in &rows {
            assert!(
                r.aco_hosts + 1e-9 >= r.opt_hosts,
                "nothing beats the optimum"
            );
            assert!(
                r.aco_util >= r.ffd_util - 1e-9,
                "fewer hosts ⇒ higher utilization"
            );
        }
    }

    #[test]
    fn render_has_row_per_size() {
        let rows = run(&[10, 14], 2, 3);
        assert_eq!(render(&rows).len(), 2);
    }
}
