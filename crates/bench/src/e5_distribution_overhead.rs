//! **E5 — cost of distributed management** (paper §II-F).
//!
//! "negligible cost is involved in performing distributed VM management".
//! Reproduced by placing the same workload on the same cluster while
//! varying only the number of Group Managers: 1 GM (all LCs under one
//! manager — the centralized extreme) up to 8 GMs. If distribution is
//! cheap, placement latency stays flat while the management hierarchy
//! spreads the monitoring load. Runs are declarative scenarios
//! (`scenarios/e5.toml`).

use snooze_scenario::presets;

use crate::table::{f2, Table};

/// One hierarchy width's outcome.
#[derive(Clone, Debug)]
pub struct E5Row {
    /// Group managers (managers minus the GL).
    pub gms: usize,
    /// VMs placed (of the fixed burst).
    pub placed: usize,
    /// Mean submission→running latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_s: f64,
    /// Management messages sent during the run.
    pub messages: u64,
    /// Messages per placed VM (the per-VM management cost).
    pub messages_per_vm: f64,
}

/// Run E5: fixed burst & cluster, varying GM count.
pub fn run(gm_counts: &[usize], lcs: usize, vms: usize, seed: u64) -> Vec<E5Row> {
    gm_counts
        .iter()
        .zip(presets::e5(gm_counts, lcs, vms, seed).iter())
        .map(|(&gms, spec)| {
            let o = snooze_scenario::run(spec)
                .expect("E5 preset compiles")
                .outcome;
            E5Row {
                gms,
                placed: o.placed,
                mean_latency_s: o.mean_latency_s,
                p95_latency_s: o.p95_latency_s,
                messages: o.messages,
                messages_per_vm: if o.placed > 0 {
                    o.messages as f64 / o.placed as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Default configuration used by `run_experiments e5`.
pub fn default_rows() -> Vec<E5Row> {
    run(&[1, 2, 4, 8], 64, 200, 0xE5)
}

/// Render the table.
pub fn render(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5: distributed-management overhead — 1 GM (centralized) vs many (paper: negligible cost)",
        &[
            "GMs",
            "placed",
            "mean lat s",
            "p95 lat s",
            "messages",
            "msgs/VM",
        ],
    );
    for r in rows {
        t.row(vec![
            r.gms.to_string(),
            r.placed.to_string(),
            f2(r.mean_latency_s),
            f2(r.p95_latency_s),
            r.messages.to_string(),
            f2(r.messages_per_vm),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_does_not_degrade_latency() {
        let rows = run(&[1, 4], 16, 24, 31);
        assert_eq!(rows[0].placed, 24);
        assert_eq!(rows[1].placed, 24);
        // The distributed hierarchy must be within 2× of centralized
        // latency (the paper claims "negligible" — shape, not exactness).
        assert!(
            rows[1].mean_latency_s <= rows[0].mean_latency_s * 2.0 + 2.0,
            "1 GM: {:.2}s, 4 GMs: {:.2}s",
            rows[0].mean_latency_s,
            rows[1].mean_latency_s
        );
    }
}
