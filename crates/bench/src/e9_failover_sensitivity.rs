//! **E9 — failover-time sensitivity** (ablation on §II-D/§II-E).
//!
//! The self-healing latencies the paper describes are governed by two
//! administrator knobs: the coordination session timeout (GL failover)
//! and the heartbeat/timeout pair (GM failure detection, LC rejoin).
//! This sweep measures, for each setting, how long the hierarchy is
//! headless after a GL crash and how long orphaned LCs take to rejoin
//! after a GM crash — the figure that tells an operator what the
//! heartbeat knobs buy. Each measurement is one declarative scenario
//! (`scenarios/e9.toml`): two fault phases with polling observe blocks.

use snooze_scenario::presets;
use snooze_simcore::prelude::*;

use crate::table::{f1, Table};

/// One timeout configuration's measured healing latencies.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// ZK session timeout (drives GL failover), seconds.
    pub session_timeout_s: f64,
    /// Heartbeat period at all levels, seconds.
    pub heartbeat_s: f64,
    /// Time from GL crash to a new GL being elected, seconds.
    pub gl_failover_s: f64,
    /// Time from GM crash until all its LCs re-assigned, seconds.
    pub lc_rejoin_s: f64,
}

fn measure(session_timeout: SimSpan, heartbeat: SimSpan, seed: u64) -> E9Row {
    let spec = presets::e9_single(
        session_timeout.as_micros() / 1000,
        heartbeat.as_micros() / 1000,
        seed,
    );
    let o = snooze_scenario::run(&spec)
        .expect("E9 preset compiles")
        .outcome;
    let recovery = |label: &str| {
        o.faults
            .iter()
            .find(|f| f.label == label)
            .map(|f| f.recovery_s)
            .unwrap_or(f64::NAN)
    };
    E9Row {
        session_timeout_s: session_timeout.as_secs_f64(),
        heartbeat_s: heartbeat.as_secs_f64(),
        gl_failover_s: recovery("GL failover"),
        lc_rejoin_s: recovery("LC rejoin"),
    }
}

/// Run the sweep.
pub fn run(seed: u64) -> Vec<E9Row> {
    let mut rows = Vec::new();
    for (session_s, hb_ms) in [(4u64, 1000u64), (8, 2000), (16, 4000), (30, 8000)] {
        rows.push(measure(
            SimSpan::from_secs(session_s),
            SimSpan::from_millis(hb_ms),
            seed ^ session_s,
        ));
    }
    rows
}

/// Default configuration used by `run_experiments e9`.
pub fn default_rows() -> Vec<E9Row> {
    run(0xE9)
}

/// Render the table.
pub fn render(rows: &[E9Row]) -> Table {
    let mut t = Table::new(
        "E9: self-healing latency vs heartbeat/session knobs (§II-D/E ablation)",
        &["session s", "heartbeat s", "GL failover s", "LC rejoin s"],
    );
    for r in rows {
        t.row(vec![
            f1(r.session_timeout_s),
            f1(r.heartbeat_s),
            f1(r.gl_failover_s),
            f1(r.lc_rejoin_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healing_latency_scales_with_timeouts() {
        let fast = measure(SimSpan::from_secs(3), SimSpan::from_millis(500), 5);
        let slow = measure(SimSpan::from_secs(20), SimSpan::from_secs(5), 5);
        assert!(fast.gl_failover_s.is_finite() && slow.gl_failover_s.is_finite());
        assert!(fast.lc_rejoin_s.is_finite() && slow.lc_rejoin_s.is_finite());
        assert!(
            fast.gl_failover_s < slow.gl_failover_s,
            "shorter sessions heal faster: {} vs {}",
            fast.gl_failover_s,
            slow.gl_failover_s
        );
        assert!(
            fast.lc_rejoin_s < slow.lc_rejoin_s,
            "shorter heartbeats rejoin faster: {} vs {}",
            fast.lc_rejoin_s,
            slow.lc_rejoin_s
        );
        // Failover is bounded by a small multiple of the session timeout.
        assert!(fast.gl_failover_s <= 4.0 * 3.0 + 5.0);
    }
}
