//! **E9 — failover-time sensitivity** (ablation on §II-D/§II-E).
//!
//! The self-healing latencies the paper describes are governed by two
//! administrator knobs: the coordination session timeout (GL failover)
//! and the heartbeat/timeout pair (GM failure detection, LC rejoin).
//! This sweep measures, for each setting, how long the hierarchy is
//! headless after a GL crash and how long orphaned LCs take to rejoin
//! after a GM crash — the figure that tells an operator what the
//! heartbeat knobs buy.

use snooze::prelude::*;
use snooze_cluster::node::NodeSpec;
use snooze_simcore::prelude::*;

use crate::table::{f1, Table};

/// One timeout configuration's measured healing latencies.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// ZK session timeout (drives GL failover), seconds.
    pub session_timeout_s: f64,
    /// Heartbeat period at all levels, seconds.
    pub heartbeat_s: f64,
    /// Time from GL crash to a new GL being elected, seconds.
    pub gl_failover_s: f64,
    /// Time from GM crash until all its LCs re-assigned, seconds.
    pub lc_rejoin_s: f64,
}

fn measure(session_timeout: SimSpan, heartbeat: SimSpan, seed: u64) -> E9Row {
    let config = SnoozeConfig {
        gl_heartbeat_period: heartbeat,
        gm_heartbeat_period: heartbeat,
        gm_lc_heartbeat_period: heartbeat,
        lc_monitoring_period: heartbeat,
        gm_timeout: heartbeat * 4,
        lc_timeout: heartbeat * 4,
        gm_silence_for_lc: heartbeat * 4,
        zk_session_timeout: session_timeout,
        election_ping_period: session_timeout / 3,
        idle_suspend_after: None,
        ..SnoozeConfig::default()
    };
    let mut sim = SimBuilder::new(seed).network(NetworkConfig::lan()).build();
    let nodes = NodeSpec::standard_cluster(8);
    let system = SnoozeSystem::deploy(&mut sim, &config, 4, &nodes, 1);
    sim.run_until(SimTime::from_secs(60));

    // --- GL failover time ---
    let gl = system.current_gl(&sim).expect("converged");
    let t_crash = sim.now();
    sim.schedule_crash(t_crash, gl);
    let mut gl_failover_s = f64::NAN;
    for step in 1..600 {
        sim.run_until(t_crash + SimSpan::from_millis(step * 500));
        if system.current_gl(&sim).is_some() {
            gl_failover_s = (step as f64) * 0.5;
            break;
        }
    }

    // --- LC rejoin time after GM crash ---
    sim.run_until(sim.now() + SimSpan::from_secs(60));
    let gm = system.active_gms(&sim)[0];
    let t_crash = sim.now();
    sim.schedule_crash(t_crash, gm);
    let mut lc_rejoin_s = f64::NAN;
    for step in 1..600 {
        sim.run_until(t_crash + SimSpan::from_millis(step * 500));
        let live = system.active_gms(&sim);
        let all_ok = system.lcs.iter().all(|&lc| {
            sim.component_as::<LocalController>(lc)
                .and_then(|l| l.assigned_gm())
                .map(|g| live.contains(&g))
                .unwrap_or(false)
        });
        if all_ok {
            lc_rejoin_s = (step as f64) * 0.5;
            break;
        }
    }

    E9Row {
        session_timeout_s: session_timeout.as_secs_f64(),
        heartbeat_s: heartbeat.as_secs_f64(),
        gl_failover_s,
        lc_rejoin_s,
    }
}

/// Run the sweep.
pub fn run(seed: u64) -> Vec<E9Row> {
    let mut rows = Vec::new();
    for (session_s, hb_ms) in [(4u64, 1000u64), (8, 2000), (16, 4000), (30, 8000)] {
        rows.push(measure(
            SimSpan::from_secs(session_s),
            SimSpan::from_millis(hb_ms),
            seed ^ session_s,
        ));
    }
    rows
}

/// Default configuration used by `run_experiments e9`.
pub fn default_rows() -> Vec<E9Row> {
    run(0xE9)
}

/// Render the table.
pub fn render(rows: &[E9Row]) -> Table {
    let mut t = Table::new(
        "E9: self-healing latency vs heartbeat/session knobs (§II-D/E ablation)",
        &["session s", "heartbeat s", "GL failover s", "LC rejoin s"],
    );
    for r in rows {
        t.row(vec![
            f1(r.session_timeout_s),
            f1(r.heartbeat_s),
            f1(r.gl_failover_s),
            f1(r.lc_rejoin_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healing_latency_scales_with_timeouts() {
        let fast = measure(SimSpan::from_secs(3), SimSpan::from_millis(500), 5);
        let slow = measure(SimSpan::from_secs(20), SimSpan::from_secs(5), 5);
        assert!(fast.gl_failover_s.is_finite() && slow.gl_failover_s.is_finite());
        assert!(fast.lc_rejoin_s.is_finite() && slow.lc_rejoin_s.is_finite());
        assert!(
            fast.gl_failover_s < slow.gl_failover_s,
            "shorter sessions heal faster: {} vs {}",
            fast.gl_failover_s,
            slow.gl_failover_s
        );
        assert!(
            fast.lc_rejoin_s < slow.lc_rejoin_s,
            "shorter heartbeats rejoin faster: {} vs {}",
            fast.lc_rejoin_s,
            slow.lc_rejoin_s
        );
        // Failover is bounded by a small multiple of the session timeout.
        assert!(fast.gl_failover_s <= 4.0 * 3.0 + 5.0);
    }
}
