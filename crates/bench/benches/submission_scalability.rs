//! Criterion bench for **E4/E5**: end-to-end submission handling — a
//! full simulated hierarchy placing a burst, at two hierarchy widths.
//! Wall-time here measures the *simulator's* cost of the management
//! work, a proxy for protocol complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snooze::prelude::SnoozeConfig;
use snooze_bench::simrun::{burst, deploy, Deployment, VmIdAlloc};
use snooze_simcore::time::SimTime;

fn place_burst(managers: usize, vms: usize, seed: u64) -> usize {
    let config = SnoozeConfig {
        idle_suspend_after: None,
        ..SnoozeConfig::default()
    };
    let dep = Deployment {
        managers,
        lcs: 16,
        eps: 1,
        seed,
    };
    let mut live = deploy(
        &dep,
        &config,
        burst(
            &mut VmIdAlloc::new(),
            vms,
            SimTime::from_secs(30),
            2.0,
            4096.0,
            0.5,
        ),
    );
    live.run_until_settled(SimTime::from_secs(600));
    live.client().placed.len()
}

fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("submission_burst");
    group.sample_size(10);
    for &(managers, vms) in &[(2usize, 20usize), (4, 20), (4, 40)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{managers}mgr_{vms}vms")),
            &(managers, vms),
            |b, &(m, v)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(place_burst(m, v, seed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_burst);
criterion_main!(benches);
