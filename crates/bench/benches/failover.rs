//! Criterion bench for **E6**: control-plane healing — the cost of
//! electing a GL from scratch and of recovering from a GL crash.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snooze::prelude::*;
use snooze_cluster::node::NodeSpec;
use snooze_simcore::prelude::*;

fn converge(seed: u64) -> bool {
    let mut sim: Engine<SnoozeNode> = SimBuilder::new(seed).network(NetworkConfig::lan()).build();
    let config = SnoozeConfig::fast_test();
    let nodes = NodeSpec::standard_cluster(8);
    let system = SnoozeSystem::deploy(&mut sim, &config, 3, &nodes, 1);
    sim.run_until(SimTime::from_secs(15));
    system.current_gl(&sim).is_some()
}

fn heal_after_gl_crash(seed: u64) -> bool {
    let mut sim: Engine<SnoozeNode> = SimBuilder::new(seed).network(NetworkConfig::lan()).build();
    let config = SnoozeConfig::fast_test();
    let nodes = NodeSpec::standard_cluster(8);
    let system = SnoozeSystem::deploy(&mut sim, &config, 3, &nodes, 1);
    sim.run_until(SimTime::from_secs(15));
    let gl = system.current_gl(&sim).expect("converged");
    sim.schedule_crash(SimTime::from_secs(16), gl);
    sim.run_until(SimTime::from_secs(40));
    system.current_gl(&sim).is_some()
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("failover");
    group.sample_size(10);
    group.bench_function("initial_convergence", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            assert!(black_box(converge(seed)));
        })
    });
    group.bench_function("gl_crash_heal", |b| {
        let mut seed = 1000u64;
        b.iter(|| {
            seed += 1;
            assert!(black_box(heal_after_gl_crash(seed)));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_failover);
criterion_main!(benches);
