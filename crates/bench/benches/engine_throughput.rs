//! Criterion bench for the simulation substrate itself: raw event
//! throughput of the discrete-event engine (timer storms, message
//! ping-pong, and the deliver path at fleet sizes), which bounds how
//! large a cluster the experiments can simulate — plus the
//! `consolidators` group, which times every `ConsolidatorRegistry`
//! algorithm on one fixed 512-VM GRID'11 instance (the reconfiguration
//! kernel the GM runs live).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use snooze_consolidation::problem::InstanceGenerator;
use snooze_consolidation::registry::{ConsolidatorRegistry, ParamValue, Params, REGISTRY_KEYS};
use snooze_simcore::prelude::*;
use snooze_simcore::rng::SimRng;

struct TimerStorm {
    remaining: u64,
}

impl Component for TimerStorm {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(SimSpan::from_micros(1), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: ComponentId, _: u64) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
    }
}

struct PingPong {
    peer: Option<ComponentId>,
    remaining: u64,
}

impl Component for PingPong {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if let Some(peer) = self.peer {
            ctx.send(peer, 0u64);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: ComponentId, _msg: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(src, 0u64);
        }
    }
}

/// One of `n` peers in a deliver-path ring: each message is forwarded to
/// the next component, exercising the full typed deliver path (network
/// latency draw, queue, dispatch, match) across a large component table.
struct RingNode {
    next: ComponentId,
    remaining: u64,
    kick_off: bool,
}

impl Component for RingNode {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.kick_off {
            let next = self.next;
            ctx.send(next, 0u64);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: ComponentId, hop: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let next = self.next;
            ctx.send(next, hop + 1);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_with_input(BenchmarkId::new("timer_storm", EVENTS), &EVENTS, |b, &n| {
        b.iter(|| {
            let mut sim: Engine<TimerStorm> = SimBuilder::new(1).build();
            sim.add_component("storm", TimerStorm { remaining: n });
            sim.run();
            black_box(sim.events_executed())
        })
    });
    group.bench_with_input(BenchmarkId::new("ping_pong", EVENTS), &EVENTS, |b, &n| {
        b.iter(|| {
            let mut sim: Engine<PingPong> =
                SimBuilder::new(1).network(NetworkConfig::lan()).build();
            let a = sim.add_component(
                "a",
                PingPong {
                    peer: None,
                    remaining: n / 2,
                },
            );
            let _b = sim.add_component(
                "b",
                PingPong {
                    peer: Some(a),
                    remaining: n / 2,
                },
            );
            sim.run();
            black_box(sim.events_executed())
        })
    });
    group.finish();

    // Queue-implementation axis at one shard: the same 1024-component
    // ring on the classic binary heap vs the bucket (calendar) queue.
    // Digests are identical either way; only the pop/push cost moves.
    let mut group = c.benchmark_group("queue_impl");
    group.throughput(Throughput::Elements(EVENTS));
    for &(queue, label) in &[(QueueKind::Heap, "heap"), (QueueKind::Bucket, "bucket")] {
        group.bench_function(BenchmarkId::new("ring1024", label), |b| {
            b.iter(|| {
                let mut sim: Engine<RingNode> = SimBuilder::new(1)
                    .network(NetworkConfig::lan())
                    .queue(queue)
                    .build();
                let n_components = 1024usize;
                let per_node = EVENTS / n_components as u64 + 1;
                for i in 0..n_components {
                    sim.add_component(
                        format!("ring{i}"),
                        RingNode {
                            next: ComponentId((i + 1) % n_components),
                            remaining: per_node,
                            kick_off: i == 0,
                        },
                    );
                }
                sim.run_until(SimTime::from_secs(3600));
                black_box(sim.events_executed())
            })
        });
    }
    group.finish();

    // Worker-count axis on the 4-shard engine: four shard-local rings
    // (the GM-subtree traffic shape), swept across the thread-pool
    // width on both queue implementations. The digest is identical for
    // every row at the same shard count — only wall clock may move.
    let mut group = c.benchmark_group("sharded");
    group.throughput(Throughput::Elements(EVENTS));
    for &(queue, qlabel) in &[(QueueKind::Heap, "heap"), (QueueKind::Bucket, "bucket")] {
        for &workers in &[1usize, 2, 4, 8] {
            group.bench_function(
                BenchmarkId::new("rings4", format!("{qlabel}_w{workers}")),
                |b| {
                    b.iter(|| {
                        const SHARDS: usize = 4;
                        let mut sim: Engine<RingNode> = SimBuilder::new(1)
                            .network(NetworkConfig::lan())
                            .shards(SHARDS)
                            .workers(workers)
                            .queue(queue)
                            .build();
                        let per_shard = 256usize;
                        let per_node = EVENTS / (SHARDS * per_shard) as u64 + 1;
                        for s in 0..SHARDS {
                            let base = s * per_shard;
                            for i in 0..per_shard {
                                sim.add_component_in_shard(
                                    format!("ring{s}_{i}"),
                                    RingNode {
                                        next: ComponentId(base + (i + 1) % per_shard),
                                        remaining: per_node,
                                        kick_off: i == 0,
                                    },
                                    s,
                                );
                            }
                        }
                        sim.run_until(SimTime::from_secs(3600));
                        black_box(sim.events_executed())
                    })
                },
            );
        }
    }
    group.finish();

    // Deliver-path throughput at fleet sizes: the component-count axis
    // E11 lives on. Each size forwards the same total number of
    // messages around a ring of that many components.
    let mut group = c.benchmark_group("deliver_path");
    group.throughput(Throughput::Elements(EVENTS));
    for &components in &[128usize, 512, 1024] {
        group.bench_with_input(
            BenchmarkId::new("ring", components),
            &components,
            |b, &n_components| {
                b.iter(|| {
                    let mut sim: Engine<RingNode> =
                        SimBuilder::new(1).network(NetworkConfig::lan()).build();
                    let per_node = EVENTS / n_components as u64 + 1;
                    for i in 0..n_components {
                        sim.add_component(
                            format!("ring{i}"),
                            RingNode {
                                next: ComponentId((i + 1) % n_components),
                                remaining: per_node,
                                kick_off: i == 0,
                            },
                        );
                    }
                    sim.run_until(SimTime::from_secs(3600));
                    black_box(sim.events_executed())
                })
            },
        );
    }
    group.finish();
}

/// Every registry algorithm on one fixed 512-VM GRID'11 instance: the
/// cost of a single reconfiguration pass at the E12/E14 fleet scale.
/// `bnb` runs under a small node budget (it is exact search; unbounded
/// it would not return at this size) — the same way the arena smoke
/// configures it.
fn bench_consolidators(c: &mut Criterion) {
    let inst = InstanceGenerator::grid11().generate(512, &mut SimRng::new(0xE14));
    let registry = ConsolidatorRegistry::standard();
    let mut group = c.benchmark_group("consolidators");
    group.sample_size(10);
    group.throughput(Throughput::Elements(512));
    for key in REGISTRY_KEYS {
        let mut params = Params::new();
        if key == "bnb" {
            params.insert("node_budget".into(), ParamValue::Int(200_000));
        }
        let algo = registry
            .build(key, &params)
            .expect("every registry key builds");
        group.bench_function(BenchmarkId::new("grid11_512", key), |b| {
            b.iter(|| black_box(algo.consolidate(black_box(&inst))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_consolidators);
criterion_main!(benches);
