//! Criterion bench for the simulation substrate itself: raw event
//! throughput of the discrete-event engine (timer storms and message
//! ping-pong), which bounds how large a cluster the experiments can
//! simulate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use snooze_simcore::prelude::*;

struct TimerStorm {
    remaining: u64,
}

impl Component for TimerStorm {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimSpan::from_micros(1), 0);
    }
    fn on_message(&mut self, _: &mut Ctx, _: ComponentId, _: AnyMsg) {}
    fn on_timer(&mut self, ctx: &mut Ctx, _tag: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimSpan::from_micros(1), 0);
        }
    }
}

struct PingPong {
    peer: Option<ComponentId>,
    remaining: u64,
}

impl Component for PingPong {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if let Some(peer) = self.peer {
            ctx.send(peer, Box::new(0u64));
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, src: ComponentId, _msg: AnyMsg) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(src, Box::new(0u64));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_with_input(BenchmarkId::new("timer_storm", EVENTS), &EVENTS, |b, &n| {
        b.iter(|| {
            let mut sim = SimBuilder::new(1).build();
            sim.add_component("storm", TimerStorm { remaining: n });
            sim.run();
            black_box(sim.events_executed())
        })
    });
    group.bench_with_input(BenchmarkId::new("ping_pong", EVENTS), &EVENTS, |b, &n| {
        b.iter(|| {
            let mut sim = SimBuilder::new(1).network(NetworkConfig::lan()).build();
            let a = sim.add_component(
                "a",
                PingPong {
                    peer: None,
                    remaining: n / 2,
                },
            );
            let _b = sim.add_component(
                "b",
                PingPong {
                    peer: Some(a),
                    remaining: n / 2,
                },
            );
            sim.run();
            black_box(sim.events_executed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
