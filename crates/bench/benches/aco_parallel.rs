//! Criterion bench for **E3**: sequential vs Rayon-parallel ant
//! construction ("the algorithm is well suited for parallelization").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::problem::InstanceGenerator;
use snooze_simcore::rng::SimRng;

fn bench_parallel_ants(c: &mut Criterion) {
    let inst = InstanceGenerator::grid11().generate(200, &mut SimRng::new(3));
    let mut group = c.benchmark_group("aco_ants");
    group.sample_size(10);
    for (label, parallel) in [("sequential", false), ("rayon", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &inst, |b, inst| {
            let algo = AcoConsolidator::new(AcoParams {
                n_ants: 16,
                n_cycles: 8,
                parallel_ants: parallel,
                ..AcoParams::default()
            });
            b.iter(|| black_box(algo.run(black_box(inst))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_ants);
criterion_main!(benches);
