//! Criterion bench for **E8a**: ACO cost scaling with colony size —
//! cycles and ants are the levers that trade quality for compute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::problem::{Consolidator, InstanceGenerator};
use snooze_simcore::rng::SimRng;

fn bench_cycles(c: &mut Criterion) {
    let inst = InstanceGenerator::grid11().generate(80, &mut SimRng::new(5));
    let mut group = c.benchmark_group("aco_cycles");
    group.sample_size(10);
    for &cycles in &[5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(cycles), &inst, |b, inst| {
            let algo = AcoConsolidator::new(AcoParams {
                n_cycles: cycles,
                ..AcoParams::default()
            });
            b.iter(|| black_box(algo.consolidate(black_box(inst))))
        });
    }
    group.finish();
}

fn bench_ants(c: &mut Criterion) {
    let inst = InstanceGenerator::grid11().generate(80, &mut SimRng::new(5));
    let mut group = c.benchmark_group("aco_ants_count");
    group.sample_size(10);
    for &ants in &[4usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(ants), &inst, |b, inst| {
            let algo = AcoConsolidator::new(AcoParams {
                n_ants: ants,
                n_cycles: 10,
                ..AcoParams::default()
            });
            b.iter(|| black_box(algo.consolidate(black_box(inst))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycles, bench_ants);
criterion_main!(benches);
