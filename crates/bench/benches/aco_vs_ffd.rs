//! Criterion bench for **E1/E2**: consolidation-algorithm kernels on
//! GRID'11 instances — the FFD family, ACO, and the exact solver at the
//! sizes the paper solved optimally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snooze_consolidation::aco::{AcoConsolidator, AcoParams};
use snooze_consolidation::exact::BranchAndBound;
use snooze_consolidation::ffd::{BestFit, FirstFitDecreasing, SortKey};
use snooze_consolidation::problem::{Consolidator, Instance, InstanceGenerator};
use snooze_simcore::rng::SimRng;

fn instance(n: usize, seed: u64) -> Instance {
    InstanceGenerator::grid11().generate(n, &mut SimRng::new(seed))
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("consolidate");
    for &n in &[50usize, 100, 200] {
        let inst = instance(n, 42);
        group.bench_with_input(BenchmarkId::new("FFD-cpu", n), &inst, |b, inst| {
            let algo = FirstFitDecreasing { key: SortKey::Cpu };
            b.iter(|| black_box(algo.consolidate(black_box(inst))))
        });
        group.bench_with_input(BenchmarkId::new("BFD-l2", n), &inst, |b, inst| {
            let algo = BestFit { key: SortKey::L2 };
            b.iter(|| black_box(algo.consolidate(black_box(inst))))
        });
        group.bench_with_input(BenchmarkId::new("ACO", n), &inst, |b, inst| {
            let algo = AcoConsolidator::new(AcoParams {
                n_cycles: 10,
                ..AcoParams::default()
            });
            b.iter(|| black_box(algo.consolidate(black_box(inst))))
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_optimal");
    group.sample_size(10);
    for &n in &[10usize, 14, 18] {
        let inst = instance(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let solver = BranchAndBound::default();
            b.iter(|| black_box(solver.solve(black_box(inst))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics, bench_exact);
criterion_main!(benches);
