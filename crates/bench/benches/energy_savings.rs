//! Criterion bench for **E7**: a short power-managed cluster run —
//! measures the simulation cost of the energy-management machinery
//! (suspend sweeps, wake-on-demand, watchdogs) against the same run with
//! power management off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use snooze::prelude::SnoozeConfig;
use snooze_bench::simrun::{burst, deploy, Deployment, VmIdAlloc};
use snooze_simcore::time::{SimSpan, SimTime};

fn run(pm: bool, seed: u64) -> f64 {
    let config = SnoozeConfig {
        idle_suspend_after: pm.then(|| SimSpan::from_secs(60)),
        ..SnoozeConfig::default()
    };
    let dep = Deployment {
        managers: 2,
        lcs: 8,
        eps: 1,
        seed,
    };
    let mut live = deploy(
        &dep,
        &config,
        burst(
            &mut VmIdAlloc::new(),
            6,
            SimTime::from_secs(30),
            2.0,
            4096.0,
            0.5,
        ),
    );
    let horizon = SimTime::from_secs(900);
    live.sim.run_until(horizon);
    live.system().total_energy_wh(&live.sim, horizon)
}

fn bench_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_run");
    group.sample_size(10);
    for (label, pm) in [("no_pm", false), ("suspend", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &pm, |b, &pm| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run(pm, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
