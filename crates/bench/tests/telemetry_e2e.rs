//! Acceptance test for the telemetry subsystem (ISSUE 2).
//!
//! Runs the full-stack E4-style scenario — 1 GL / 4 GMs / 32 LCs, a
//! burst of 100 VMs, one GM crash mid-flight — and checks that:
//!
//! * every placed submission is a causal span tree with correct parent
//!   links across EP → GL → GM → LC, and
//! * two same-seed runs produce byte-identical span and metric exports
//!   in every standard format.

use snooze_bench::report::{
    crashed_component, export_all, find_descendant, report_failover, run_scenario,
};
use snooze_simcore::prelude::*;
use snooze_simcore::telemetry;

const SEED: u64 = 42;

/// Render every export in memory for digest-style comparison.
fn render_exports<C: Component>(sim: &Engine<C>) -> [String; 4] {
    let names = snooze_bench::report::track_name(sim);
    [
        telemetry::chrome::render(sim.spans(), &names),
        telemetry::jsonl::render(sim.spans()),
        sim.metrics().to_prometheus(),
        sim.metrics().to_jsonl(),
    ]
}

#[test]
fn e4_failover_scenario_produces_linked_span_trees_and_identical_exports() {
    let spec = report_failover(SEED);
    let run_a = run_scenario(&spec, false);
    assert!(
        crashed_component(&run_a).is_some(),
        "scenario must crash a GM"
    );
    let live_a = run_a.live;

    // --- every submission placed, each a well-linked span tree ---------
    let client = live_a.client();
    assert_eq!(client.placed.len(), 100, "all 100 VMs place");
    let log = live_a.sim.spans();
    for ack in &client.placed {
        let vm_label = ack.vm.0.to_string();
        let root = log
            .roots()
            .find(|s| s.name == "client.submit" && s.label("vm") == Some(&vm_label))
            .unwrap_or_else(|| panic!("no client.submit root for vm {vm_label}"));
        assert_eq!(root.label("outcome"), Some("placed"));
        assert!(root.parent.is_none(), "submission spans are roots");
        assert!(
            root.duration_us().is_some(),
            "placed submissions are closed"
        );

        // The boot leaf must see the full EP → GL → GM chain above it.
        let boot = find_descendant(log, root.id, "lc.boot")
            .unwrap_or_else(|| panic!("vm {vm_label}: no lc.boot in tree"));
        let ancestor_names: Vec<&str> = log.ancestors(boot.id).iter().map(|s| s.name).collect();
        for hop in ["gm.place", "gl.dispatch", "ep.forward", "client.submit"] {
            assert!(
                ancestor_names.contains(&hop),
                "vm {vm_label}: lc.boot ancestors {ancestor_names:?} missing {hop}"
            );
        }
        // And in causal order: outermost last.
        let pos = |n: &str| ancestor_names.iter().position(|&a| a == n).unwrap();
        assert!(pos("gm.place") < pos("gl.dispatch"));
        assert!(pos("gl.dispatch") < pos("ep.forward"));
        assert!(pos("ep.forward") < pos("client.submit"));
        assert_eq!(*ancestor_names.last().unwrap(), "client.submit");
    }

    // --- the crash shows up in the observability surface ----------------
    assert!(
        log.iter().any(|s| s.name == "gl.gm-failover"),
        "GM failure must be marked"
    );
    assert!(
        live_a
            .sim
            .metrics()
            .counter_with("heartbeat_missed", &telemetry::label::label("role", "gm"))
            >= 1,
        "missed-heartbeat metric must be labelled"
    );

    // --- two same-seed runs: byte-identical exports ---------------------
    let live_b = run_scenario(&spec, false).live;
    assert_eq!(live_a.sim.span_digest(), live_b.sim.span_digest());
    assert_eq!(live_a.sim.digest(), live_b.sim.digest());
    let a = render_exports(&live_a.sim);
    let b = render_exports(&live_b.sim);
    for (i, kind) in ["chrome", "spans.jsonl", "prometheus", "metrics.jsonl"]
        .iter()
        .enumerate()
    {
        assert_eq!(a[i], b[i], "{kind} export differs between same-seed runs");
    }

    // --- export_all writes the same bytes to disk -----------------------
    let dir = std::env::temp_dir().join(format!("snooze-telemetry-e2e-{SEED}"));
    export_all(&live_a.sim, &dir).expect("exports write");
    assert_eq!(
        std::fs::read_to_string(dir.join("trace.chrome.json")).unwrap(),
        a[0]
    );
    let chrome = &a[0];
    assert!(chrome.contains("\"ph\":\"X\""), "complete events present");
    assert!(chrome.contains("client.submit"));
    std::fs::remove_dir_all(&dir).ok();
}
