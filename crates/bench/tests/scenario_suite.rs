//! Acceptance tests for the declarative scenario layer (ISSUE 4).
//!
//! * the checked-in `scenarios/*.toml` preset files match the in-tree
//!   presets byte-for-byte (drift gate), and
//! * compiling the checked-in E4 document reproduces the experiment
//!   table deterministically: two runs of the same expanded spec agree
//!   on the event digest and on every table column, and match the
//!   hand-parameterized `e4_submission_scalability::run` row.

use std::path::PathBuf;

use snooze_bench::e4_submission_scalability;
use snooze_scenario::presets;
use snooze_scenario::spec::ScenarioDoc;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn checked_in_scenario_files_match_the_presets() {
    for (file, doc) in presets::checked_in() {
        let path = scenarios_dir().join(file);
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run --dump-scenarios)", path.display()));
        assert_eq!(
            on_disk,
            doc.to_toml(),
            "{file} drifted from the preset — regenerate with `run_experiments --dump-scenarios`"
        );
    }
}

#[test]
fn hand_authored_scenarios_parse_canonically_and_compile() {
    for file in ["hetero_burst.toml", "fault_storm.toml"] {
        let path = scenarios_dir().join(file);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        let doc = ScenarioDoc::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(doc.to_toml(), text, "{file}: canonical form");
        for spec in doc.expand().unwrap_or_else(|e| panic!("{file}: {e}")) {
            snooze_scenario::compile(&spec)
                .unwrap_or_else(|e| panic!("{file}: {}: {e}", spec.name));
        }
    }
}

#[test]
fn checked_in_e4_spec_reproduces_the_table_byte_for_byte() {
    let path = scenarios_dir().join("e4.toml");
    let text = std::fs::read_to_string(&path).expect("e4.toml checked in");
    let doc = ScenarioDoc::parse(&text).expect("parses");
    let specs = doc.expand().expect("expands");
    let spec = &specs[0]; // e4-50
    assert_eq!(spec.name, "e4-50");

    let a = snooze_scenario::run(spec).expect("compiles");
    let b = snooze_scenario::run(spec).expect("compiles");
    assert_eq!(
        a.live.sim.digest(),
        b.live.sim.digest(),
        "same spec, same seed: identical event history"
    );
    assert_eq!(a.outcome.placed, b.outcome.placed);
    assert_eq!(a.outcome.sim_events, b.outcome.sim_events);

    // The scenario route and the experiment-module route are the same
    // run: every deterministic table column agrees.
    let row = &e4_submission_scalability::run(&[50], 144, 4, 0xE4)[0];
    assert_eq!(row.vms, a.outcome.requested_vms);
    assert_eq!(row.placed, a.outcome.placed);
    assert_eq!(row.rejected, a.outcome.rejected);
    assert_eq!(row.sim_events, a.outcome.sim_events);
    assert_eq!(row.mean_latency_s, a.outcome.mean_latency_s);
    assert_eq!(row.p95_latency_s, a.outcome.p95_latency_s);
}
