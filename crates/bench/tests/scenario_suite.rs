//! Acceptance tests for the declarative scenario layer (ISSUE 4).
//!
//! * the checked-in `scenarios/*.toml` preset files match the in-tree
//!   presets byte-for-byte (drift gate), and
//! * compiling the checked-in E4 document reproduces the experiment
//!   table deterministically: two runs of the same expanded spec agree
//!   on the event digest and on every table column, and match the
//!   hand-parameterized `e4_submission_scalability::run` row.

use std::path::PathBuf;

use snooze_bench::e4_submission_scalability;
use snooze_scenario::presets;
use snooze_scenario::spec::ScenarioDoc;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn checked_in_scenario_files_match_the_presets() {
    for (file, doc) in presets::checked_in() {
        let path = scenarios_dir().join(file);
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run --dump-scenarios)", path.display()));
        assert_eq!(
            on_disk,
            doc.to_toml(),
            "{file} drifted from the preset — regenerate with `run_experiments --dump-scenarios`"
        );
    }
}

#[test]
fn hand_authored_scenarios_parse_canonically_and_compile() {
    for file in ["hetero_burst.toml", "fault_storm.toml"] {
        let path = scenarios_dir().join(file);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        let doc = ScenarioDoc::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(doc.to_toml(), text, "{file}: canonical form");
        for spec in doc.expand().unwrap_or_else(|e| panic!("{file}: {e}")) {
            snooze_scenario::compile(&spec)
                .unwrap_or_else(|e| panic!("{file}: {}: {e}", spec.name));
        }
    }
}

#[test]
fn checked_in_e4_spec_reproduces_the_table_byte_for_byte() {
    let path = scenarios_dir().join("e4.toml");
    let text = std::fs::read_to_string(&path).expect("e4.toml checked in");
    let doc = ScenarioDoc::parse(&text).expect("parses");
    let specs = doc.expand().expect("expands");
    let spec = &specs[0]; // e4-50
    assert_eq!(spec.name, "e4-50");

    let a = snooze_scenario::run(spec).expect("compiles");
    let b = snooze_scenario::run(spec).expect("compiles");
    assert_eq!(
        a.live.sim.digest(),
        b.live.sim.digest(),
        "same spec, same seed: identical event history"
    );
    assert_eq!(a.outcome.placed, b.outcome.placed);
    assert_eq!(a.outcome.sim_events, b.outcome.sim_events);

    // The scenario route and the experiment-module route are the same
    // run: every deterministic table column agrees.
    let row = &e4_submission_scalability::run(&[50], 144, 4, 0xE4)[0];
    assert_eq!(row.vms, a.outcome.requested_vms);
    assert_eq!(row.placed, a.outcome.placed);
    assert_eq!(row.rejected, a.outcome.rejected);
    assert_eq!(row.sim_events, a.outcome.sim_events);
    assert_eq!(row.mean_latency_s, a.outcome.mean_latency_s);
    assert_eq!(row.p95_latency_s, a.outcome.p95_latency_s);
}

/// The wall-clock columns excluded from the release-table identity gate
/// (they are advisory timings, different on every run and machine).
const WALL_COLUMNS: &[&str] = &["wall ms", "central ms", "dist ms", "runtime ms"];

#[test]
fn release_tables_match_the_checked_in_goldens() {
    // The identity gate for the typed-message refactor (and any future
    // engine change): the E4–E10 release tables must stay byte-identical
    // to `tests/golden/*.json` in every deterministic column. Debug
    // builds skip it — the full suite is a release-scale workload.
    if cfg!(debug_assertions) {
        eprintln!("skipping release-table identity gate in a debug build");
        return;
    }
    use snooze_bench::*;
    let tables: Vec<(&str, snooze_bench::table::Table)> = vec![
        (
            "e4",
            e4_submission_scalability::render(&e4_submission_scalability::default_rows()),
        ),
        (
            "e5",
            e5_distribution_overhead::render(&e5_distribution_overhead::default_rows()),
        ),
        (
            "e6",
            e6_fault_tolerance::render(&e6_fault_tolerance::default_report()),
        ),
        (
            "e7",
            e7_energy_savings::render(&e7_energy_savings::default_rows()),
        ),
        (
            "e7b",
            e7_energy_savings::render_thresholds(&e7_energy_savings::default_threshold_rows()),
        ),
        (
            "e8a",
            e8_ablations::render_aco(&e8_ablations::default_aco_rows()),
        ),
        (
            "e8b",
            e8_ablations::render_ffd(&e8_ablations::default_ffd_rows()),
        ),
        (
            "e9",
            e9_failover_sensitivity::render(&e9_failover_sensitivity::default_rows()),
        ),
        (
            "e10a",
            e10_distributed_consolidation::render_offline(
                &e10_distributed_consolidation::default_offline_rows(),
            ),
        ),
        (
            "e10b",
            e10_distributed_consolidation::render_system(
                &e10_distributed_consolidation::default_system_rows(),
            ),
        ),
        ("e12_trace", e12_trace::render(&e12_trace::default_rows())),
        ("e14_arena", e14_arena::render(&e14_arena::default_rows())),
    ];
    for (slug, table) in tables {
        let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{slug}.json"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
        let current = table.without_columns(WALL_COLUMNS).to_json();
        assert_eq!(
            current, golden,
            "{slug}: deterministic table columns drifted from tests/golden/{slug}.json"
        );
        eprintln!("[golden] {slug}: identical");
    }
}

#[test]
fn e11_smoke_shape_is_deterministic_at_256_lcs() {
    // Two runs of the kilonode smoke shape must agree on the event
    // digest and report zero dead letters (fault-free closed loop).
    // Debug builds run a smaller slice of the same shape.
    let lcs = if cfg!(debug_assertions) { 64 } else { 256 };
    let spec = presets::e11(lcs, false, 0xE11);
    let a = snooze_scenario::run(&spec).expect("compiles");
    let b = snooze_scenario::run(&spec).expect("compiles");
    assert_eq!(
        a.live.sim.digest(),
        b.live.sim.digest(),
        "same spec, same seed: identical event history at {lcs} LCs"
    );
    assert_eq!(a.outcome.sim_events, b.outcome.sim_events);
    assert_eq!(a.outcome.placed, a.outcome.requested_vms);
    assert_eq!(a.outcome.dead_letters, 0, "fault-free run drops nothing");
    assert_eq!(b.outcome.dead_letters, 0);
}
