//! Acceptance test for continuous observability (ISSUE 7).
//!
//! Runs the E4-style failover scenario — whose preset carries a 30 s
//! metric window, a profiler, a 128-event flight ring and a
//! zero-tolerance heartbeat SLO — and checks the headline properties:
//!
//! * conservation: per-window counter deltas sum to the whole-run
//!   counter totals, for every counter in the registry;
//! * the heartbeat watchdog trips during the GM failover, producing an
//!   alert, an `slo.alert` span, and an incident dump that re-parses
//!   canonically;
//! * two same-seed runs are byte-identical in every continuous export
//!   (windows JSONL + CSV, folded-stack profile, incident TOML);
//! * observation is invisible: stripping every observer from the spec
//!   leaves the engine digest unchanged.

use std::collections::BTreeSet;

use snooze_bench::report::{report_failover, run_scenario};
use snooze_scenario::incident::{is_incident, IncidentDoc};

const SEED: u64 = 42;

#[test]
fn window_counter_deltas_conserve_every_run_total() {
    let spec = report_failover(SEED);
    let run = run_scenario(&spec, false);
    let log = run.windows.as_ref().expect("report preset enables windows");
    assert!(run.outcome.windows >= 2, "the run spans several windows");

    let names: BTreeSet<&str> = run
        .live
        .sim
        .metrics()
        .counters_iter()
        .map(|(name, _, _)| name)
        .collect();
    assert!(!names.is_empty(), "the run records counters");
    for name in names {
        let total: u64 = run
            .live
            .sim
            .metrics()
            .counters_iter()
            .filter(|(n, _, _)| *n == name)
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(
            log.counter_sum(name),
            total,
            "windowed deltas of `{name}` must sum to the run total"
        );
    }
}

#[test]
fn heartbeat_watchdog_trips_and_the_incident_reparses() {
    let spec = report_failover(SEED);
    let run = run_scenario(&spec, false);

    // The GM crash makes the zero-tolerance heartbeat SLO breach.
    assert!(
        run.outcome
            .slo_alerts
            .iter()
            .any(|a| a.name == "heartbeat-misses"),
        "the heartbeat watchdog must trip during failover"
    );
    assert!(
        run.live.sim.spans().iter().any(|s| s.name == "slo.alert"),
        "each breach opens an slo.alert span"
    );
    let incident = run
        .incidents
        .iter()
        .find(|i| i.trigger == "slo:heartbeat-misses")
        .expect("the breach captures an incident dump");
    assert!(!incident.events.is_empty(), "the flight ring was non-empty");

    // The dump is canonical TOML, discriminated, and round-trips.
    let toml = incident.to_toml();
    assert!(is_incident(&toml));
    let reparsed = IncidentDoc::from_toml(&toml).expect("incident dump re-parses");
    assert_eq!(reparsed.to_toml(), toml, "canonical form");
    assert_eq!(reparsed.trigger, "slo:heartbeat-misses");
}

#[test]
fn continuous_exports_are_byte_identical_across_same_seed_runs() {
    let spec = report_failover(SEED);
    let mut a = run_scenario(&spec, false);
    let mut b = run_scenario(&spec, false);

    let log_a = a.windows.take().expect("windows enabled");
    let log_b = b.windows.take().expect("windows enabled");
    assert_eq!(log_a.to_jsonl(), log_b.to_jsonl(), "windows JSONL differs");
    assert_eq!(log_a.to_csv(), log_b.to_csv(), "windows CSV differs");
    assert!(!log_a.is_empty());

    assert_eq!(
        a.live.sim.profile_folded(),
        b.live.sim.profile_folded(),
        "folded-stack profile differs"
    );
    assert!(a.live.sim.profile_folded().contains(';'));

    assert_eq!(a.incidents.len(), b.incidents.len());
    assert!(!a.incidents.is_empty(), "the failover captures incidents");
    for (ia, ib) in a.incidents.iter().zip(&b.incidents) {
        assert_eq!(ia.to_toml(), ib.to_toml(), "incident dump differs");
    }
}

#[test]
fn stripping_every_observer_leaves_the_digest_unchanged() {
    let spec = report_failover(SEED);
    let observed = run_scenario(&spec, false);

    let mut plain_spec = spec.clone();
    plain_spec.obs = None;
    plain_spec.slos.clear();
    let plain = run_scenario(&plain_spec, false);

    assert_eq!(
        observed.live.sim.digest(),
        plain.live.sim.digest(),
        "windows/profiler/flight/SLOs must not perturb the event stream"
    );
    // Alert spans are *additional* telemetry (the span digest may grow);
    // the plain run must simply have none of them.
    assert!(!plain.live.sim.spans().iter().any(|s| s.name == "slo.alert"));
    assert!(plain.windows.is_none() && plain.incidents.is_empty());
}
