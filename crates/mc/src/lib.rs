#![warn(missing_docs)]

//! # snooze-mc — exhaustive model checking of the Snooze protocols
//!
//! The simulation engine already replays one schedule deterministically;
//! this crate drives it through **every** schedule of a small topology.
//! An explorer ([`explorer::explore`]) snapshots the engine
//! ([`snooze_simcore::engine::Engine::mc_snapshot`]), enumerates the
//! checker actions available in that state — execute any pending event
//! out of queue order, drop an in-flight message, crash or restart a
//! component — applies one to a restored copy, and recurses (DFS or
//! BFS), deduplicating on the engine's canonical state fingerprint.
//!
//! Invariants come in two kinds:
//!
//! * **safety** — checked in every distinct state (at most one live
//!   leader, no lost VMs);
//! * **bounded liveness** — checked at the depth frontier by running a
//!   *fair suffix* (normal scheduled execution for a bounded span) and
//!   requiring the goal at its end (a leader is elected, every orphaned
//!   LC is re-covered).
//!
//! Two harnesses are checked in: [`election`] (the ZooKeeper election
//! recipe in isolation, including a deliberately wrong variant the
//! checker must catch) and [`failover`] (a full Snooze deployment under
//! manager crashes). Violations export as replayable scenario TOML
//! documents ([`snooze_scenario::mc_trace::McTraceDoc`]) that the
//! `snooze-mc` binary can re-run: a counterexample found once is a
//! regression test forever.

pub mod election;
pub mod explorer;
pub mod failover;

pub use explorer::{
    explore, replay, Action, McConfig, McReport, McViolation, Predicate, PredicateKind, Strategy,
    TraceStep,
};
