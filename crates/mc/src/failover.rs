//! Failover harness: a full Snooze deployment (coordination service,
//! managers, Local Controllers, Entry Point, scripted client) under
//! exhaustive exploration.
//!
//! The default topology is the issue's "1 GL / 2 GM / 2 LC" system:
//! three managers (one elected GL, two serving LCs), two LCs hosting
//! one client VM each, one Entry Point. Invariants:
//!
//! * **single-live-gl** (safety): at most one manager acts as GL with a
//!   live coordination session.
//! * **no-lost-vms** (safety): every VM the client placed is still
//!   resident on some alive LC — GM crashes and failovers must never
//!   destroy guests.
//! * **orphaned-lc-recovered** (bounded liveness): from every frontier
//!   state, a fair suffix ends with every alive LC assigned to an alive
//!   manager in GM mode — an LC orphaned by its manager's crash rejoins
//!   through the Entry Point and is re-covered.
//!
//! Exploration targets manager crashes ([`FailoverHarness::crashable`]):
//! LC and client faults are covered by the scenario suite; the GL/GM
//! failover interleavings are where election, heartbeat and rejoin
//! logic cross.

use snooze::prelude::*;
use snooze_cluster::node::NodeSpec;
use snooze_cluster::resources::ResourceVector;
use snooze_cluster::vm::{VmId, VmSpec};
use snooze_cluster::workload::VmWorkload;
use snooze_scenario::mc_trace::McTraceDoc;
use snooze_simcore::prelude::*;

use crate::explorer::{self, McViolation, Predicate, PredicateKind};

/// Fair-suffix horizon for the failover liveness predicate: GL failover
/// (session expiry 2 s + election) plus LC silence detection (2 s) and
/// an EP-mediated rejoin, with slack.
pub const LIVENESS_WITHIN: SimSpan = SimSpan::from_secs(15);

/// A bootstrapped failover topology ready for exploration.
pub struct FailoverHarness {
    /// The engine, converged to a steady placed state.
    pub sim: Engine<SnoozeNode>,
    /// Component handles of the deployed system.
    pub system: SnoozeSystem,
    /// The scripted client.
    pub client: ComponentId,
    /// VMs the client had successfully placed at bootstrap end.
    pub placed_vms: usize,
    /// Managers deployed (`gms` in trace documents).
    pub n_gms: usize,
    /// LCs deployed.
    pub n_lcs: usize,
    /// Virtual seconds of normal execution run before exploration.
    pub bootstrap_secs: u64,
}

impl FailoverHarness {
    /// Build and bootstrap: `n_gms` managers, `n_lcs` LC nodes, one EP
    /// and a client placing one VM per LC, on the instant network with a
    /// fixed seed. `fast_test` timers with power management disabled
    /// (suspend/resume cycles would multiply the explored state space
    /// without touching the failover logic under test). Runs
    /// `bootstrap_secs` of normal execution and asserts the hierarchy
    /// converged and every VM was placed.
    pub fn new(n_gms: usize, n_lcs: usize, bootstrap_secs: u64) -> FailoverHarness {
        let mut config = SnoozeConfig::fast_test();
        config.idle_suspend_after = None;
        let mut sim: Engine<SnoozeNode> =
            SimBuilder::new(1).network(NetworkConfig::instant()).build();
        let nodes = NodeSpec::standard_cluster(n_lcs);
        let system = SnoozeSystem::deploy(&mut sim, &config, n_gms, &nodes, 1);
        let schedule: Vec<ScheduledVm> = (0..n_lcs as u64)
            .map(|i| ScheduledVm {
                at: SimTime::from_secs(2),
                spec: VmSpec::new(VmId(i), ResourceVector::new(2.0, 4096.0, 100.0, 100.0)),
                workload: VmWorkload::flat_full(i),
                lifetime: None,
            })
            .collect();
        let client = sim.add_component(
            "client",
            ClientDriver::new(system.eps[0], schedule, SimSpan::from_secs(5)),
        );
        sim.run_until(SimTime::from_secs(bootstrap_secs));
        let placed_vms = sim
            .get(client)
            .and_then(|n| n.as_client())
            .map(|c| c.placed.len())
            .unwrap_or(0);
        assert_eq!(placed_vms, n_lcs, "bootstrap must place every VM");
        assert!(
            system.current_gl(&sim).is_some(),
            "bootstrap must elect a GL"
        );
        FailoverHarness {
            sim,
            system,
            client,
            placed_vms,
            n_gms,
            n_lcs,
            bootstrap_secs,
        }
    }

    /// The fault surface: the managers. Crashing a GL exercises
    /// election failover; crashing a serving GM exercises LC rejoin.
    pub fn crashable(&self) -> Vec<ComponentId> {
        self.system.gms.clone()
    }

    /// Managers currently acting as GL with a live session.
    pub fn live_gls(&self) -> Vec<ComponentId> {
        live_gls(&self.sim, self.system.zk, &self.system.gms)
    }

    /// The standard invariants for this topology.
    pub fn predicates(&self) -> Vec<Predicate<SnoozeNode>> {
        let (zk, gms) = (self.system.zk, self.system.gms.clone());
        let single = Predicate::safety("single-live-gl", move |sim| {
            let ls = live_gls(sim, zk, &gms);
            (ls.len() > 1).then(|| format!("{} live GLs: {ls:?}", ls.len()))
        });

        let lcs = self.system.lcs.clone();
        let expected = self.placed_vms;
        let no_lost = Predicate::safety("no-lost-vms", move |sim: &Engine<SnoozeNode>| {
            let resident: usize = lcs
                .iter()
                .filter(|&&lc| sim.is_alive(lc))
                .filter_map(|&lc| sim.get(lc).and_then(|n| n.lc()))
                .map(|l| l.hypervisor().guest_count())
                .sum();
            (resident < expected).then(|| format!("{resident} of {expected} placed VMs resident"))
        });

        let (gms, lcs) = (self.system.gms.clone(), self.system.lcs.clone());
        let recovered = Predicate::liveness(
            "orphaned-lc-recovered",
            LIVENESS_WITHIN,
            move |sim: &Engine<SnoozeNode>| {
                for &lc in &lcs {
                    if !sim.is_alive(lc) {
                        continue;
                    }
                    let assigned = sim
                        .get(lc)
                        .and_then(|n| n.lc())
                        .and_then(|l| l.assigned_gm());
                    let covered = assigned.is_some_and(|gm| {
                        gms.contains(&gm)
                            && sim.is_alive(gm)
                            && sim
                                .get(gm)
                                .and_then(|n| n.gm())
                                .is_some_and(|g| matches!(g.mode(), Mode::Gm(_)))
                    });
                    if !covered {
                        return Some(format!(
                            "LC {lc:?} not re-covered: assigned to {assigned:?} after fair suffix"
                        ));
                    }
                }
                None
            },
        );
        vec![single, no_lost, recovered]
    }

    /// Package a violation as a replayable scenario document.
    pub fn to_doc(&self, v: &McViolation, name: &str) -> McTraceDoc {
        McTraceDoc {
            name: name.to_string(),
            harness: "failover".to_string(),
            contenders: 0,
            gms: self.n_gms as u64,
            lcs: self.n_lcs as u64,
            seeded_bug: false,
            bootstrap_secs: self.bootstrap_secs,
            predicate: v.predicate.clone(),
            detail: v.detail.clone(),
            steps: explorer::trace_to_steps(&v.trace),
        }
    }
}

fn live_gls(sim: &Engine<SnoozeNode>, zk: ComponentId, gms: &[ComponentId]) -> Vec<ComponentId> {
    let Some(svc) = sim.get(zk).and_then(|n| n.as_zk()) else {
        return Vec::new();
    };
    gms.iter()
        .copied()
        .filter(|&gm| {
            sim.is_alive(gm)
                && sim
                    .get(gm)
                    .and_then(|n| n.gm())
                    .map(|g| g.is_gl() && svc.session_epoch(gm) == Some(g.election_epoch()))
                    .unwrap_or(false)
        })
        .collect()
}

/// Rebuild the harness a trace document describes and replay its steps;
/// same contract as [`crate::election::replay_doc`].
pub fn replay_doc(doc: &McTraceDoc) -> Result<Option<String>, String> {
    if doc.harness != "failover" {
        return Err(format!("not a failover trace: harness={}", doc.harness));
    }
    let mut h = FailoverHarness::new(doc.gms as usize, doc.lcs as usize, doc.bootstrap_secs);
    let steps = explorer::steps_from_doc(&doc.steps)?;
    explorer::replay(&mut h.sim, &steps)?;
    let predicates = h.predicates();
    let p = predicates
        .iter()
        .find(|p| p.name == doc.predicate)
        .ok_or_else(|| format!("unknown predicate `{}`", doc.predicate))?;
    if let PredicateKind::Liveness { within } = p.kind {
        h.sim.run_for(within);
    }
    Ok((p.check)(&h.sim))
}
