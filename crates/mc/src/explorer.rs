//! The exhaustive explorer: systematic interleaving search over engine
//! snapshots.
//!
//! From one bootstrapped engine state the explorer enumerates every
//! checker action — execute one pending event (chosen out of queue
//! order), drop an in-flight message, crash or restart a component from
//! the configured fault surface — applies each to a restored snapshot,
//! and recurses, deduplicating on the engine's canonical state
//! fingerprint. Safety predicates are evaluated at every distinct
//! state; liveness predicates are evaluated at the depth frontier by
//! running a *fair suffix* (normal scheduled execution for a bounded
//! span) and requiring the goal to hold at its end — "liveness by
//! bounded depth plus fair closure".
//!
//! Determinism: action enumeration follows the engine's sorted pending
//! list and the configured `crashable` order, the visited set folds
//! fingerprints in insertion order, and the harnesses use the instant
//! (draw-free) network — so two explorations of the same harness
//! produce identical state counts, fingerprints and violations.
//!
//! Remaining fault budgets are mixed into the visited-set key: a state
//! reached with budget left can reach strictly more behaviors than the
//! same engine state with none, so the two must not deduplicate.

use std::collections::{BTreeSet, VecDeque};

use snooze_scenario::mc_trace::McTraceStep;
use snooze_simcore::engine::{Component, ComponentId, Engine};
use snooze_simcore::mc::{McEventDesc, McPending, McState, SystemState};
use snooze_simcore::time::SimSpan;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Worklist discipline: depth-first dives to counterexamples fast;
/// breadth-first finds *shortest* counterexamples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Depth-first search (stack worklist).
    Dfs,
    /// Breadth-first search (queue worklist).
    Bfs,
}

impl Strategy {
    /// Parse `"dfs"` / `"bfs"`.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "dfs" => Some(Strategy::Dfs),
            "bfs" => Some(Strategy::Bfs),
            _ => None,
        }
    }
}

/// Exploration limits and the fault-action surface.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Worklist discipline.
    pub strategy: Strategy,
    /// Maximum actions along any path; deeper states become the
    /// liveness frontier.
    pub max_depth: usize,
    /// Hard cap on distinct states; exploration stops (and the report
    /// says so) when reached.
    pub max_states: usize,
    /// How many in-flight messages may be dropped along one path.
    pub drop_budget: u32,
    /// How many crashes may be injected along one path.
    pub crash_budget: u32,
    /// How many restarts may be injected along one path.
    pub restart_budget: u32,
    /// Components the crash/restart actions may target.
    pub crashable: Vec<ComponentId>,
    /// Stop after this many violations (1 = stop at the first).
    pub max_violations: usize,
    /// Also reorder timers against each other (models local clock
    /// skew). Off by default: messages in flight are reorderable and
    /// droppable, but non-`Deliver` events fire in `(time, seq)` order —
    /// the standard asynchronous-network reduction. Timers still
    /// interleave freely with every delivery, which is where protocol
    /// races live; enabling this multiplies the state space by the
    /// timer-permutation count without adding behaviors a real run (or
    /// a real deployment without pathological clock skew) exhibits.
    pub reorder_timers: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            strategy: Strategy::Dfs,
            max_depth: 12,
            max_states: 200_000,
            drop_budget: 0,
            crash_budget: 0,
            restart_budget: 0,
            crashable: Vec::new(),
            max_violations: 1,
            reorder_timers: false,
        }
    }
}

/// Predicate body: `None` = holds, `Some(detail)` = violated.
pub type PredicateFn<C> = Box<dyn Fn(&Engine<C>) -> Option<String>>;

/// When (and how) a predicate is evaluated.
#[derive(Clone, Copy, Debug)]
pub enum PredicateKind {
    /// Must hold in **every** explored state.
    Safety,
    /// Must hold after a fair suffix of `within` virtual time from every
    /// depth-frontier (or quiescent) state.
    Liveness {
        /// Length of the fair suffix run before evaluation.
        within: SimSpan,
    },
}

/// A named invariant over engine states.
pub struct Predicate<C: Component> {
    /// Stable name, recorded in violations and trace documents.
    pub name: &'static str,
    /// Safety or bounded liveness.
    pub kind: PredicateKind,
    /// The check itself.
    pub check: PredicateFn<C>,
}

impl<C: Component> Predicate<C> {
    /// A safety predicate evaluated at every explored state.
    pub fn safety(
        name: &'static str,
        check: impl Fn(&Engine<C>) -> Option<String> + 'static,
    ) -> Self {
        Predicate {
            name,
            kind: PredicateKind::Safety,
            check: Box::new(check),
        }
    }

    /// A liveness predicate evaluated after a fair suffix of `within`.
    pub fn liveness(
        name: &'static str,
        within: SimSpan,
        check: impl Fn(&Engine<C>) -> Option<String> + 'static,
    ) -> Self {
        Predicate {
            name,
            kind: PredicateKind::Liveness { within },
            check: Box::new(check),
        }
    }
}

/// One checker action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Execute the pending event at this ordinal of the sorted pending
    /// list.
    Execute {
        /// Index into [`Engine::mc_pending`].
        ordinal: usize,
    },
    /// Drop the in-flight message at this ordinal.
    Drop {
        /// Index into [`Engine::mc_pending`].
        ordinal: usize,
    },
    /// Crash a component from the fault surface.
    Crash {
        /// The victim.
        target: ComponentId,
    },
    /// Restart a crashed component from the fault surface.
    Restart {
        /// The component to revive.
        target: ComponentId,
    },
}

/// One step of a counterexample trace: the action plus the descriptor
/// words of what it acted on, revalidated during replay.
#[derive(Clone, Copy, Debug)]
pub struct TraceStep {
    /// The action taken.
    pub action: Action,
    /// [`McEventDesc::words`] of the affected event (for execute/drop),
    /// or `(4|5, target, 0)` for crash/restart.
    pub desc: (u64, u64, u64),
}

/// An invariant violation plus the path that reached it.
#[derive(Clone, Debug)]
pub struct McViolation {
    /// Name of the violated predicate.
    pub predicate: String,
    /// Human-readable description of the violating state.
    pub detail: String,
    /// Actions from the bootstrap state to the violation.
    pub trace: Vec<TraceStep>,
}

/// Exploration statistics and findings.
#[derive(Clone, Debug, Default)]
pub struct McReport {
    /// Distinct states discovered (after fingerprint dedup).
    pub explored: u64,
    /// Actions applied (edges of the explored graph).
    pub transitions: u64,
    /// Transitions that landed on an already-visited state.
    pub deduped: u64,
    /// Nodes cut at the depth bound.
    pub truncated: u64,
    /// Fair-suffix liveness evaluations performed.
    pub liveness_probes: u64,
    /// Deepest node expanded or probed.
    pub max_depth_reached: usize,
    /// True if the `max_states` cap stopped exploration early.
    pub hit_state_cap: bool,
    /// Order-sensitive fold of every visited state key: two runs explored
    /// identically iff `explored` and `fingerprint` both match.
    pub fingerprint: u64,
    /// Violations found, in discovery order.
    pub violations: Vec<McViolation>,
}

struct Node<C: Component> {
    snap: SystemState<C>,
    depth: usize,
    drops: u32,
    crashes: u32,
    restarts: u32,
    trace: Vec<TraceStep>,
}

fn visit_key(state_fp: u64, drops: u32, crashes: u32, restarts: u32) -> u64 {
    let mut k = mix(state_fp, drops as u64);
    k = mix(k, crashes as u64);
    mix(k, restarts as u64)
}

fn apply<C>(sim: &mut Engine<C>, pending: &[McPending], action: Action) -> TraceStep
where
    C: Component + Clone + McState,
    C::Msg: Clone + McState,
{
    match action {
        Action::Execute { ordinal } => {
            let p = pending[ordinal];
            let found = sim.mc_execute_pending(p.seq);
            assert!(found, "enumerated pending event vanished");
            TraceStep {
                action,
                desc: p.desc.words(),
            }
        }
        Action::Drop { ordinal } => {
            let p = pending[ordinal];
            let found = sim.mc_drop_pending(p.seq);
            assert!(found, "enumerated pending event vanished");
            TraceStep {
                action,
                desc: p.desc.words(),
            }
        }
        Action::Crash { target } => {
            sim.mc_inject_crash(target);
            TraceStep {
                action,
                desc: (4, u64::from(target), 0),
            }
        }
        Action::Restart { target } => {
            sim.mc_inject_restart(target);
            TraceStep {
                action,
                desc: (5, u64::from(target), 0),
            }
        }
    }
}

/// Exhaustively explore the state space reachable from the engine's
/// current state under `config`, checking `predicates`. The engine is
/// restored to its pre-exploration state before returning.
pub fn explore<C>(sim: &mut Engine<C>, predicates: &[Predicate<C>], config: &McConfig) -> McReport
where
    C: Component + Clone + McState,
    C::Msg: Clone + McState,
{
    let mut report = McReport {
        fingerprint: FNV_OFFSET,
        ..McReport::default()
    };
    sim.mc_gc();
    let root = sim.mc_snapshot();
    let root_key = visit_key(
        sim.mc_fingerprint(),
        config.drop_budget,
        config.crash_budget,
        config.restart_budget,
    );
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    visited.insert(root_key);
    report.fingerprint = mix(report.fingerprint, root_key);
    let mut work: VecDeque<Node<C>> = VecDeque::new();
    work.push_back(Node {
        snap: sim.mc_snapshot(),
        depth: 0,
        drops: config.drop_budget,
        crashes: config.crash_budget,
        restarts: config.restart_budget,
        trace: Vec::new(),
    });

    'search: loop {
        let node = match config.strategy {
            Strategy::Dfs => work.pop_back(),
            Strategy::Bfs => work.pop_front(),
        };
        let Some(node) = node else { break };
        report.max_depth_reached = report.max_depth_reached.max(node.depth);
        sim.mc_restore(&node.snap);

        let mut violated = false;
        for p in predicates {
            if !matches!(p.kind, PredicateKind::Safety) {
                continue;
            }
            if let Some(detail) = (p.check)(sim) {
                violated = true;
                report.violations.push(McViolation {
                    predicate: p.name.to_string(),
                    detail,
                    trace: node.trace.clone(),
                });
                if report.violations.len() >= config.max_violations {
                    break 'search;
                }
            }
        }
        if violated {
            // A violating state is a counterexample, not a frontier to
            // expand — its successors would only repeat the finding.
            continue;
        }

        let pending = sim.mc_pending();
        let mut actions: Vec<Action> = Vec::new();
        // Without `reorder_timers`, only the earliest non-Deliver event
        // is executable: the pending list is (time, seq)-sorted, so this
        // pins timers to their real firing order while still interleaving
        // each firing freely against every message delivery.
        let mut timer_slot_free = true;
        for (ordinal, p) in pending.iter().enumerate() {
            let is_deliver = matches!(p.desc, McEventDesc::Deliver { .. });
            if is_deliver || config.reorder_timers {
                actions.push(Action::Execute { ordinal });
            } else if timer_slot_free {
                timer_slot_free = false;
                actions.push(Action::Execute { ordinal });
            }
            // Dropping a message to a dead component is indistinguishable
            // from executing it (the engine discards silently), so the
            // drop action is only offered where it creates new behavior.
            if node.drops > 0 && p.dst_alive && is_deliver {
                actions.push(Action::Drop { ordinal });
            }
        }
        if node.crashes > 0 {
            for &t in &config.crashable {
                if sim.is_alive(t) {
                    actions.push(Action::Crash { target: t });
                }
            }
        }
        if node.restarts > 0 {
            for &t in &config.crashable {
                if !sim.is_alive(t) {
                    actions.push(Action::Restart { target: t });
                }
            }
        }

        if node.depth >= config.max_depth || actions.is_empty() {
            if node.depth >= config.max_depth {
                report.truncated += 1;
            }
            for p in predicates {
                let PredicateKind::Liveness { within } = p.kind else {
                    continue;
                };
                sim.mc_restore(&node.snap);
                sim.mc_release();
                sim.run_for(within);
                report.liveness_probes += 1;
                if let Some(detail) = (p.check)(sim) {
                    report.violations.push(McViolation {
                        predicate: p.name.to_string(),
                        detail,
                        trace: node.trace.clone(),
                    });
                    if report.violations.len() >= config.max_violations {
                        break 'search;
                    }
                }
            }
            continue;
        }

        for action in actions {
            sim.mc_restore(&node.snap);
            let step = apply(sim, &pending, action);
            report.transitions += 1;
            sim.mc_gc();
            let (drops, crashes, restarts) = match action {
                Action::Drop { .. } => (node.drops - 1, node.crashes, node.restarts),
                Action::Crash { .. } => (node.drops, node.crashes - 1, node.restarts),
                Action::Restart { .. } => (node.drops, node.crashes, node.restarts - 1),
                Action::Execute { .. } => (node.drops, node.crashes, node.restarts),
            };
            let key = visit_key(sim.mc_fingerprint(), drops, crashes, restarts);
            if !visited.insert(key) {
                report.deduped += 1;
                continue;
            }
            report.fingerprint = mix(report.fingerprint, key);
            if visited.len() >= config.max_states {
                report.hit_state_cap = true;
                break 'search;
            }
            let mut trace = node.trace.clone();
            trace.push(step);
            work.push_back(Node {
                snap: sim.mc_snapshot(),
                depth: node.depth + 1,
                drops,
                crashes,
                restarts,
                trace,
            });
        }
    }

    sim.mc_restore(&root);
    report.explored = visited.len() as u64;
    report
}

/// Re-apply a recorded trace to a freshly bootstrapped engine. Each
/// execute/drop step addresses its ordinal in the engine's (sorted,
/// deterministic) pending list and is validated against the recorded
/// event descriptor, so a trace replayed against drifted code fails
/// loudly instead of silently exploring a different schedule.
pub fn replay<C>(sim: &mut Engine<C>, steps: &[TraceStep]) -> Result<(), String>
where
    C: Component + Clone + McState,
    C::Msg: Clone + McState,
{
    for (i, step) in steps.iter().enumerate() {
        match step.action {
            Action::Execute { ordinal } | Action::Drop { ordinal } => {
                sim.mc_gc();
                let pending = sim.mc_pending();
                let Some(p) = pending.get(ordinal).copied() else {
                    return Err(format!(
                        "replay step {i}: ordinal {ordinal} out of range ({} pending)",
                        pending.len()
                    ));
                };
                let got = p.desc.words();
                if got != step.desc {
                    return Err(format!(
                        "replay step {i}: event descriptor mismatch: recorded {:?}, found {got:?}",
                        step.desc
                    ));
                }
                let found = if matches!(step.action, Action::Execute { .. }) {
                    sim.mc_execute_pending(p.seq)
                } else {
                    sim.mc_drop_pending(p.seq)
                };
                if !found {
                    return Err(format!("replay step {i}: pending event vanished"));
                }
            }
            Action::Crash { target } => sim.mc_inject_crash(target),
            Action::Restart { target } => sim.mc_inject_restart(target),
        }
    }
    // Leave the engine resumable: events the trace left in flight are
    // re-timed so normal execution (e.g. a liveness fair suffix) can
    // take over from the replayed state.
    sim.mc_release();
    Ok(())
}

/// Convert an in-memory trace to scenario-document steps.
pub fn trace_to_steps(trace: &[TraceStep]) -> Vec<McTraceStep> {
    trace
        .iter()
        .map(|s| {
            let (action, ordinal) = match s.action {
                Action::Execute { ordinal } => ("execute", ordinal as u64),
                Action::Drop { ordinal } => ("drop", ordinal as u64),
                Action::Crash { .. } => ("crash", 0),
                Action::Restart { .. } => ("restart", 0),
            };
            McTraceStep {
                action: action.to_string(),
                ordinal,
                kind: s.desc.0,
                a: s.desc.1,
                b: s.desc.2,
            }
        })
        .collect()
}

/// Parse scenario-document steps back into replayable actions.
pub fn steps_from_doc(steps: &[McTraceStep]) -> Result<Vec<TraceStep>, String> {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let action = match s.action.as_str() {
                "execute" => Action::Execute {
                    ordinal: s.ordinal as usize,
                },
                "drop" => Action::Drop {
                    ordinal: s.ordinal as usize,
                },
                "crash" => Action::Crash {
                    target: ComponentId(s.a as usize),
                },
                "restart" => Action::Restart {
                    target: ComponentId(s.a as usize),
                },
                other => return Err(format!("trace step {i}: unknown action `{other}`")),
            };
            Ok(TraceStep {
                action,
                desc: (s.kind, s.a, s.b),
            })
        })
        .collect()
}
