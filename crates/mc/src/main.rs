//! `snooze-mc` — the model-checker CLI.
//!
//! ```text
//! snooze-mc [--harness election|failover] [options]     explore a topology
//! snooze-mc --replay FILE [--json]                      replay a counterexample
//! snooze-mc --smoke                                     CI determinism gate
//! ```

use std::process::ExitCode;

use snooze_mc::election::{self, ElectionHarness};
use snooze_mc::explorer::{explore, McConfig, McReport, PredicateKind, Strategy};
use snooze_mc::failover::{self, FailoverHarness};
use snooze_scenario::mc_trace::McTraceDoc;

fn usage() -> &'static str {
    "snooze-mc: exhaustive model checking of the Snooze protocols\n\
     \n\
     USAGE:\n\
     \x20 snooze-mc [--harness election|failover] [--contenders N] [--gms N] [--lcs N]\n\
     \x20           [--seeded-bug] [--strategy dfs|bfs] [--depth N] [--states N]\n\
     \x20           [--drops N] [--crashes N] [--restarts N] [--bootstrap SECS]\n\
     \x20           [--max-violations N] [--no-liveness] [--reorder-timers]\n\
     \x20           [--json] [--emit FILE]\n\
     \x20     Explore the topology's state space and check its invariants.\n\
     \x20     Exit 1 if a violation is found (exit 0 with --emit, whose job\n\
     \x20     is to write the counterexample as a scenario TOML document).\n\
     \x20 snooze-mc --replay FILE [--json]\n\
     \x20     Rebuild the harness a trace document describes, re-apply its\n\
     \x20     steps, and re-evaluate the recorded predicate. Exit 0 if the\n\
     \x20     violation reproduces.\n\
     \x20 snooze-mc --smoke\n\
     \x20     Explore the failover topology twice at a small fixed depth and\n\
     \x20     require zero violations plus identical explored-state counts\n\
     \x20     and fingerprints. Exit 0 on pass.\n"
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected an integer, got `{s}`"))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn print_report(report: &McReport, label: &str, json: bool) {
    if json {
        let violations: Vec<String> = report
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"predicate\": \"{}\", \"depth\": {}, \"detail\": \"{}\"}}",
                    json_escape(&v.predicate),
                    v.trace.len(),
                    json_escape(&v.detail)
                )
            })
            .collect();
        println!(
            "{{\"harness\": \"{}\", \"explored\": {}, \"transitions\": {}, \
             \"deduped\": {}, \"truncated\": {}, \"liveness_probes\": {}, \
             \"max_depth_reached\": {}, \"hit_state_cap\": {}, \
             \"fingerprint\": \"{:#018x}\", \"violations\": [{}]}}",
            json_escape(label),
            report.explored,
            report.transitions,
            report.deduped,
            report.truncated,
            report.liveness_probes,
            report.max_depth_reached,
            report.hit_state_cap,
            report.fingerprint,
            violations.join(", "),
        );
    } else {
        println!(
            "{label}: explored={} transitions={} deduped={} truncated={} \
             liveness_probes={} max_depth={} fingerprint={:#018x}{}",
            report.explored,
            report.transitions,
            report.deduped,
            report.truncated,
            report.liveness_probes,
            report.max_depth_reached,
            report.fingerprint,
            if report.hit_state_cap {
                " (state cap hit)"
            } else {
                ""
            },
        );
        for (i, v) in report.violations.iter().enumerate() {
            println!(
                "violation[{i}]: {} at depth {}: {}",
                v.predicate,
                v.trace.len(),
                v.detail
            );
        }
    }
}

enum Harness {
    Election(ElectionHarness),
    Failover(FailoverHarness),
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json = take_flag(&mut args, "--json");
    let seeded_bug = take_flag(&mut args, "--seeded-bug");
    let no_liveness = take_flag(&mut args, "--no-liveness");
    let reorder_timers = take_flag(&mut args, "--reorder-timers");
    let harness_kind = take_value(&mut args, "--harness")?.unwrap_or_else(|| "election".into());
    let contenders = match take_value(&mut args, "--contenders")? {
        Some(v) => parse_u64(&v, "--contenders")? as usize,
        None => 3,
    };
    let gms = match take_value(&mut args, "--gms")? {
        Some(v) => parse_u64(&v, "--gms")? as usize,
        None => 3,
    };
    let lcs = match take_value(&mut args, "--lcs")? {
        Some(v) => parse_u64(&v, "--lcs")? as usize,
        None => 2,
    };
    let bootstrap = match take_value(&mut args, "--bootstrap")? {
        Some(v) => parse_u64(&v, "--bootstrap")?,
        None => match harness_kind.as_str() {
            "failover" => 10,
            _ => 5,
        },
    };
    let mut config = McConfig {
        crash_budget: 1,
        reorder_timers,
        ..McConfig::default()
    };
    if let Some(v) = take_value(&mut args, "--strategy")? {
        config.strategy =
            Strategy::parse(&v).ok_or_else(|| format!("--strategy: `{v}` is not dfs|bfs"))?;
    }
    if let Some(v) = take_value(&mut args, "--depth")? {
        config.max_depth = parse_u64(&v, "--depth")? as usize;
    }
    if let Some(v) = take_value(&mut args, "--states")? {
        config.max_states = parse_u64(&v, "--states")? as usize;
    }
    if let Some(v) = take_value(&mut args, "--drops")? {
        config.drop_budget = parse_u64(&v, "--drops")? as u32;
    }
    if let Some(v) = take_value(&mut args, "--crashes")? {
        config.crash_budget = parse_u64(&v, "--crashes")? as u32;
    }
    if let Some(v) = take_value(&mut args, "--restarts")? {
        config.restart_budget = parse_u64(&v, "--restarts")? as u32;
    }
    if let Some(v) = take_value(&mut args, "--max-violations")? {
        config.max_violations = (parse_u64(&v, "--max-violations")? as usize).max(1);
    }
    let emit = take_value(&mut args, "--emit")?;
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument: {stray}"));
    }

    let mut harness = match harness_kind.as_str() {
        "election" => Harness::Election(ElectionHarness::new(contenders, seeded_bug, bootstrap)),
        "failover" => {
            if seeded_bug {
                return Err("--seeded-bug applies to the election harness only".into());
            }
            Harness::Failover(FailoverHarness::new(gms, lcs, bootstrap))
        }
        other => return Err(format!("--harness: `{other}` is not election|failover")),
    };

    let report = match &mut harness {
        Harness::Election(h) => {
            config.crashable = h.contenders.clone();
            let mut preds = h.predicates();
            if no_liveness {
                preds.retain(|p| matches!(p.kind, PredicateKind::Safety));
            }
            explore(&mut h.sim, &preds, &config)
        }
        Harness::Failover(h) => {
            config.crashable = h.crashable();
            let mut preds = h.predicates();
            if no_liveness {
                preds.retain(|p| matches!(p.kind, PredicateKind::Safety));
            }
            explore(&mut h.sim, &preds, &config)
        }
    };
    print_report(&report, &format!("snooze-mc {harness_kind}"), json);

    if let Some(path) = emit {
        let Some(v) = report.violations.first() else {
            eprintln!("snooze-mc: no violation found, nothing to emit");
            return Ok(ExitCode::FAILURE);
        };
        let stem = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("counterexample")
            .to_string();
        let doc = match &harness {
            Harness::Election(h) => h.to_doc(v, &stem),
            Harness::Failover(h) => h.to_doc(v, &stem),
        };
        std::fs::write(&path, doc.to_toml()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("snooze-mc: wrote {path} ({} steps)", doc.steps.len());
        return Ok(ExitCode::SUCCESS);
    }
    Ok(if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(path: &str, json: bool) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = McTraceDoc::from_toml(&text)?;
    let outcome = match doc.harness.as_str() {
        "election" => election::replay_doc(&doc)?,
        "failover" => failover::replay_doc(&doc)?,
        other => return Err(format!("unknown harness `{other}` in {path}")),
    };
    let reproduced = outcome.is_some();
    if json {
        println!(
            "{{\"name\": \"{}\", \"predicate\": \"{}\", \"steps\": {}, \"reproduced\": {}, \
             \"detail\": \"{}\"}}",
            json_escape(&doc.name),
            json_escape(&doc.predicate),
            doc.steps.len(),
            reproduced,
            json_escape(outcome.as_deref().unwrap_or("")),
        );
    } else {
        match &outcome {
            Some(detail) => println!(
                "snooze-mc replay: {} reproduced after {} steps: {detail}",
                doc.predicate,
                doc.steps.len()
            ),
            None => println!(
                "snooze-mc replay: {} did NOT reproduce ({} steps applied cleanly)",
                doc.predicate,
                doc.steps.len()
            ),
        }
    }
    Ok(if reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Fixed smoke parameters: the issue's 1 GL / 2 GM / 2 LC topology, DFS
/// at a small fixed depth with one crash to spend. Changing these
/// changes the explored-state count the gate pins down.
fn smoke_run() -> McReport {
    let mut h = FailoverHarness::new(3, 2, 10);
    let config = McConfig {
        strategy: Strategy::Dfs,
        max_depth: 8,
        max_states: 500_000,
        crash_budget: 1,
        crashable: h.crashable(),
        max_violations: 8,
        ..McConfig::default()
    };
    let mut preds = h.predicates();
    preds.retain(|p| matches!(p.kind, PredicateKind::Safety));
    explore(&mut h.sim, &preds, &config)
}

fn cmd_smoke() -> ExitCode {
    let first = smoke_run();
    let second = smoke_run();
    print_report(&first, "snooze-mc smoke run 1", false);
    print_report(&second, "snooze-mc smoke run 2", false);
    let stable = first.explored == second.explored && first.fingerprint == second.fingerprint;
    let clean = first.violations.is_empty()
        && second.violations.is_empty()
        && !first.hit_state_cap
        && !second.hit_state_cap;
    if stable && clean {
        println!(
            "snooze-mc smoke: OK ({} states, fingerprint {:#018x})",
            first.explored, first.fingerprint
        );
        ExitCode::SUCCESS
    } else {
        if !stable {
            eprintln!("snooze-mc smoke: exploration NOT deterministic across runs");
        }
        if !clean {
            eprintln!("snooze-mc smoke: violations or state-cap hit");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if take_flag(&mut args, "--help") || args.first().map(String::as_str) == Some("help") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if take_flag(&mut args, "--smoke") {
        return cmd_smoke();
    }
    let json = args.iter().any(|a| a == "--json");
    let replay = match take_value(&mut args, "--replay") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("snooze-mc: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match replay {
        Some(path) => {
            take_flag(&mut args, "--json");
            if let Some(stray) = args.first() {
                Err(format!("unknown argument: {stray}"))
            } else {
                cmd_replay(&path, json)
            }
        }
        None => cmd_check(args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("snooze-mc: {msg}");
            eprint!("{}", usage());
            ExitCode::from(2)
        }
    }
}
