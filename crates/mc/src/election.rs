//! Election harness: the ZooKeeper-recipe leader election under
//! exhaustive exploration.
//!
//! The topology is the GL election in isolation — one
//! [`CoordinationService`] plus N contenders, each a minimal host
//! component wrapping an [`Elector`] exactly the way a Group Manager
//! does. Two invariants:
//!
//! * **single-live-leader** (safety): at most one contender holds
//!   leadership *with a live coordination session*. A deposed leader
//!   that has not yet learned its session expired is legal (the
//!   partition tests prove the real protocol exhibits it); two leaders
//!   with live sessions is the classic split-brain bug.
//! * **leader-elected** (bounded liveness): from every frontier state,
//!   a fair suffix of execution ends with some live leader elected.
//!
//! The harness uses the instant network (zero latency, zero loss) so
//! the engine RNG is never consumed: all nondeterminism is the
//! explorer's, and fingerprint dedup is sound. Timers all fire on
//! whole-second boundaries (session timeout 2 s, elector ping 2 s,
//! service tick 1 s), which keeps the relative-time fingerprint space
//! small.

use snooze_protocols::coordination::{CoordinationService, ProtocolMsg};
use snooze_protocols::election::{Elector, SeededBug, ELECTION_PING_TAG};
use snooze_scenario::mc_trace::McTraceDoc;
use snooze_simcore::node_enum;
use snooze_simcore::prelude::*;

use crate::explorer::{self, McViolation, Predicate, PredicateKind};

/// Fair-suffix horizon for the election liveness predicate: session
/// expiry (2 s) plus a full re-election leaves generous slack.
pub const LIVENESS_WITHIN: SimSpan = SimSpan::from_secs(10);

/// Minimal host component wrapping an [`Elector`] — the model-checked
/// stand-in for a Group Manager's election slice.
#[derive(Clone)]
pub struct McContender {
    elector: Elector,
}

impl McContender {
    /// A contender campaigning at coordination service `zk`.
    pub fn new(zk: ComponentId, ping_period: SimSpan) -> Self {
        McContender {
            elector: Elector::new(zk, "gl-election", ping_period),
        }
    }

    /// Enable the known-wrong election variant (watch the leader, assume
    /// leadership when the watch fires).
    pub fn seed_bug(&mut self) {
        self.elector.seed_bug(SeededBug::WatchLeaderAssumeOnFire);
    }

    /// The embedded elector.
    pub fn elector(&self) -> &Elector {
        &self.elector
    }
}

impl Component for McContender {
    type Msg = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        self.elector.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>, _src: ComponentId, msg: ProtocolMsg) {
        if let ProtocolMsg::Reply(reply) = msg {
            self.elector.handle_reply(ctx, &reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>, tag: u64) {
        if tag == ELECTION_PING_TAG {
            self.elector.tick(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        self.elector.start(ctx);
    }
}

impl McState for McContender {
    fn mc_fold(&self, h: &mut McHasher) {
        self.elector.mc_fold(h);
    }
}

node_enum! {
    /// Node enum of the election harness.
    #[derive(Clone)]
    pub enum ElectNode: ProtocolMsg {
        Zk(CoordinationService<ProtocolMsg>) as as_zk,
        Contender(McContender) as as_contender,
    }
}

impl McState for ElectNode {
    fn mc_fold(&self, h: &mut McHasher) {
        match self {
            ElectNode::Zk(c) => {
                h.word(1);
                c.mc_fold(h);
            }
            ElectNode::Contender(c) => {
                h.word(2);
                c.mc_fold(h);
            }
        }
    }
}

/// A bootstrapped election topology ready for exploration.
pub struct ElectionHarness {
    /// The engine, converged to a steady elected state.
    pub sim: Engine<ElectNode>,
    /// The coordination service.
    pub zk: ComponentId,
    /// The contenders, in creation order.
    pub contenders: Vec<ComponentId>,
    /// Whether the known-wrong variant is seeded.
    pub seeded_bug: bool,
    /// Virtual seconds of normal execution run before exploration.
    pub bootstrap_secs: u64,
}

impl ElectionHarness {
    /// Build and bootstrap: `n` contenders on the instant network, fixed
    /// seed, session timeout 2 s, ping period 2 s; then `bootstrap_secs`
    /// of normal execution so exploration starts from the converged
    /// post-election state.
    pub fn new(n: usize, seeded_bug: bool, bootstrap_secs: u64) -> ElectionHarness {
        let mut sim: Engine<ElectNode> =
            SimBuilder::new(1).network(NetworkConfig::instant()).build();
        let zk = sim.add_component("zk", CoordinationService::new(SimSpan::from_secs(2)));
        let contenders: Vec<ComponentId> = (0..n)
            .map(|i| {
                let mut c = McContender::new(zk, SimSpan::from_secs(2));
                if seeded_bug {
                    c.seed_bug();
                }
                sim.add_component(format!("gm{i}"), c)
            })
            .collect();
        let mut h = ElectionHarness {
            sim,
            zk,
            contenders,
            seeded_bug,
            bootstrap_secs,
        };
        h.sim.run_until(SimTime::from_secs(bootstrap_secs));
        h
    }

    /// Contenders currently holding leadership with a live session.
    pub fn live_leaders(&self) -> Vec<ComponentId> {
        live_leaders(&self.sim, self.zk, &self.contenders)
    }

    /// The standard invariants for this topology.
    pub fn predicates(&self) -> Vec<Predicate<ElectNode>> {
        let (zk, contenders) = (self.zk, self.contenders.clone());
        let single = Predicate::safety("single-live-leader", move |sim| {
            let ls = live_leaders(sim, zk, &contenders);
            (ls.len() > 1).then(|| format!("{} live leaders: {ls:?}", ls.len()))
        });
        let (zk, contenders) = (self.zk, self.contenders.clone());
        let elected = Predicate::liveness("leader-elected", LIVENESS_WITHIN, move |sim| {
            if !contenders.iter().any(|&c| sim.is_alive(c)) {
                return None; // vacuous: nobody left to elect
            }
            let ls = live_leaders(sim, zk, &contenders);
            match ls.as_slice() {
                [_one] => None,
                other => Some(format!(
                    "fair suffix did not converge to one live leader: {other:?}"
                )),
            }
        });
        vec![single, elected]
    }

    /// Package a violation as a replayable scenario document.
    pub fn to_doc(&self, v: &McViolation, name: &str) -> McTraceDoc {
        McTraceDoc {
            name: name.to_string(),
            harness: "election".to_string(),
            contenders: self.contenders.len() as u64,
            gms: 0,
            lcs: 0,
            seeded_bug: self.seeded_bug,
            bootstrap_secs: self.bootstrap_secs,
            predicate: v.predicate.clone(),
            detail: v.detail.clone(),
            steps: explorer::trace_to_steps(&v.trace),
        }
    }
}

fn live_leaders(
    sim: &Engine<ElectNode>,
    zk: ComponentId,
    contenders: &[ComponentId],
) -> Vec<ComponentId> {
    let Some(svc) = sim.get(zk).and_then(|n| n.as_zk()) else {
        return Vec::new();
    };
    contenders
        .iter()
        .copied()
        .filter(|&c| {
            sim.is_alive(c)
                && sim
                    .get(c)
                    .and_then(|n| n.as_contender())
                    .map(|host| {
                        host.elector.is_leader()
                            && svc.session_epoch(c) == Some(host.elector.epoch())
                    })
                    .unwrap_or(false)
        })
        .collect()
}

/// Rebuild the harness a trace document describes and replay its steps.
/// Returns `Ok(Some(detail))` when the recorded predicate is violated
/// again after replay (liveness predicates get their fair suffix first),
/// `Ok(None)` when the trace no longer reproduces a violation, and
/// `Err` when the trace does not mechanically apply.
pub fn replay_doc(doc: &McTraceDoc) -> Result<Option<String>, String> {
    if doc.harness != "election" {
        return Err(format!("not an election trace: harness={}", doc.harness));
    }
    let mut h = ElectionHarness::new(doc.contenders as usize, doc.seeded_bug, doc.bootstrap_secs);
    let steps = explorer::steps_from_doc(&doc.steps)?;
    explorer::replay(&mut h.sim, &steps)?;
    let predicates = h.predicates();
    let p = predicates
        .iter()
        .find(|p| p.name == doc.predicate)
        .ok_or_else(|| format!("unknown predicate `{}`", doc.predicate))?;
    if let PredicateKind::Liveness { within } = p.kind {
        h.sim.run_for(within);
    }
    Ok((p.check)(&h.sim))
}
