//! Integration tests for the model checker: the seeded election bug is
//! found within the depth budget and round-trips through scenario TOML;
//! the correct protocols explore clean; exploration is deterministic.

use snooze_mc::election::{self, ElectionHarness};
use snooze_mc::explorer::{explore, McConfig, McReport, PredicateKind, Strategy};
use snooze_mc::failover::{self, FailoverHarness};
use snooze_scenario::mc_trace::McTraceDoc;

fn election_config(strategy: Strategy, max_depth: usize) -> McConfig {
    McConfig {
        strategy,
        max_depth,
        max_states: 500_000,
        crash_budget: 1,
        ..McConfig::default()
    }
}

fn explore_election(h: &mut ElectionHarness, config: &McConfig, liveness: bool) -> McReport {
    let mut config = config.clone();
    config.crashable = h.contenders.clone();
    let mut preds = h.predicates();
    if !liveness {
        preds.retain(|p| matches!(p.kind, PredicateKind::Safety));
    }
    explore(&mut h.sim, &preds, &config)
}

#[test]
fn seeded_bug_double_leader_found_within_depth_budget() {
    let mut h = ElectionHarness::new(3, true, 5);
    let report = explore_election(&mut h, &election_config(Strategy::Bfs, 10), false);
    assert!(
        !report.violations.is_empty(),
        "checker must find the seeded double-leader bug within depth 10"
    );
    let v = &report.violations[0];
    assert_eq!(v.predicate, "single-live-leader");
    assert!(
        v.trace.len() <= 10,
        "counterexample of {} steps exceeds the depth budget",
        v.trace.len()
    );
    assert!(v.detail.contains("2 live leaders"), "detail: {}", v.detail);
}

#[test]
fn seeded_bug_found_without_any_fault_budget() {
    // The seeded variant is broken by pure message delay: a leader whose
    // session ping is left in flight past the session timeout is deposed,
    // and both watchers assume leadership. No crash, drop, or restart
    // budget is needed to expose it.
    let mut h = ElectionHarness::new(3, true, 5);
    let config = McConfig {
        strategy: Strategy::Bfs,
        max_depth: 10,
        max_states: 500_000,
        ..McConfig::default()
    };
    let report = explore_election(&mut h, &config, false);
    assert!(!report.violations.is_empty());
    assert_eq!(report.violations[0].predicate, "single-live-leader");
}

#[test]
fn seeded_bug_counterexample_roundtrips_and_replays() {
    let mut h = ElectionHarness::new(3, true, 5);
    let report = explore_election(&mut h, &election_config(Strategy::Bfs, 10), false);
    let v = report.violations.first().expect("violation expected");
    let doc = h.to_doc(v, "roundtrip");

    let toml = doc.to_toml();
    let parsed = McTraceDoc::from_toml(&toml).expect("emitted TOML must parse");
    assert_eq!(parsed, doc, "scenario document must round-trip losslessly");

    let outcome = election::replay_doc(&parsed).expect("trace must apply mechanically");
    let detail = outcome.expect("replayed trace must reproduce the violation");
    assert!(detail.contains("2 live leaders"), "detail: {detail}");
}

#[test]
fn correct_election_explores_clean_with_liveness() {
    let mut h = ElectionHarness::new(3, false, 5);
    let report = explore_election(&mut h, &election_config(Strategy::Dfs, 8), true);
    assert!(
        report.violations.is_empty(),
        "correct protocol must have no violations: {:?}",
        report.violations
    );
    assert!(!report.hit_state_cap);
    assert!(report.liveness_probes > 0, "frontier must be probed");
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        let mut h = ElectionHarness::new(3, false, 5);
        explore_election(&mut h, &election_config(Strategy::Dfs, 6), false)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.fingerprint, b.fingerprint);
}

#[test]
fn explorer_restores_engine_state() {
    let mut h = ElectionHarness::new(3, false, 5);
    let before = h.sim.mc_fingerprint();
    let leaders = h.live_leaders();
    assert_eq!(leaders.len(), 1, "bootstrap must elect a leader");
    explore_election(&mut h, &election_config(Strategy::Dfs, 4), false);
    assert_eq!(
        h.sim.mc_fingerprint(),
        before,
        "explore() must leave the engine as it found it"
    );
    assert_eq!(h.live_leaders(), leaders);
}

#[test]
fn failover_invariants_hold_under_manager_crashes() {
    let mut h = FailoverHarness::new(3, 2, 10);
    let config = McConfig {
        strategy: Strategy::Dfs,
        max_depth: 5,
        max_states: 500_000,
        crash_budget: 1,
        crashable: h.crashable(),
        ..McConfig::default()
    };
    let preds = h.predicates();
    let report = explore(&mut h.sim, &preds, &config);
    assert!(
        report.violations.is_empty(),
        "failover topology must be safe and live: {:?}",
        report.violations
    );
    assert!(!report.hit_state_cap);
    assert!(report.liveness_probes > 0);
    assert_eq!(
        h.live_gls().len(),
        1,
        "engine restored to its elected state"
    );
}

#[test]
fn failover_trace_docs_replay() {
    // Force a "violation" by checking an impossible predicate, so the
    // failover replay path is exercised end to end even though the real
    // invariants hold: record a short trace, round-trip it, re-apply it.
    let mut h = FailoverHarness::new(3, 2, 10);
    let config = McConfig {
        strategy: Strategy::Dfs,
        max_depth: 2,
        max_states: 10_000,
        crash_budget: 1,
        crashable: h.crashable(),
        ..McConfig::default()
    };
    let preds = vec![snooze_mc::Predicate::safety("single-live-gl", |_| {
        Some("forced".to_string())
    })];
    let report = explore(&mut h.sim, &preds, &config);
    let v = report.violations.first().expect("forced violation");
    let doc = h.to_doc(v, "forced");
    let parsed = McTraceDoc::from_toml(&doc.to_toml()).expect("parse");
    assert_eq!(parsed, doc);
    // The real single-live-gl predicate holds on the replayed state, so
    // replay applies cleanly and reports no reproduction.
    let outcome = failover::replay_doc(&parsed).expect("trace must apply");
    assert!(outcome.is_none());
}

#[test]
fn committed_counterexample_still_reproduces() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/mc_seeded_bug_counterexample.toml"
    );
    let text = std::fs::read_to_string(path).expect("committed counterexample must exist");
    let doc = McTraceDoc::from_toml(&text).expect("committed counterexample must parse");
    assert_eq!(doc.harness, "election");
    assert!(doc.seeded_bug);
    let outcome = election::replay_doc(&doc).expect("trace must apply mechanically");
    let detail = outcome.expect("committed counterexample must still reproduce");
    assert!(detail.contains("2 live leaders"), "detail: {detail}");
}
