//! Property-based tests over the consolidation algorithms: for random
//! instances — homogeneous and heterogeneous — every algorithm must
//! produce feasible solutions (or decline), respect the lower bound, and
//! keep its documented relationships (local search never hurts, the
//! optimum is never beaten, canonicalization preserves structure).

use proptest::prelude::*;

use snooze_cluster::resources::ResourceVector;
use snooze_consolidation::aco::{bin_emptying_local_search, AcoConsolidator, AcoParams};
use snooze_consolidation::distributed::{DistributedAco, DistributedParams};
use snooze_consolidation::exact::BranchAndBound;
use snooze_consolidation::ffd::{BestFit, FirstFitDecreasing, NextFit, SortKey, WorstFit};
use snooze_consolidation::problem::{Consolidator, Instance, Solution};
use snooze_consolidation::registry::{ConsolidatorRegistry, ParamValue, Params};

/// Strategy: a random homogeneous instance with unit bins and items in
/// (0, 0.7] per dimension — always solvable with enough bins.
fn homogeneous_instance() -> impl Strategy<Value = Instance> {
    (1usize..30, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = snooze_simcore::rng::SimRng::new(seed);
        let items: Vec<ResourceVector> = (0..n)
            .map(|_| {
                ResourceVector::new(
                    rng.uniform(0.05, 0.7),
                    rng.uniform(0.05, 0.7),
                    rng.uniform(0.05, 0.7),
                    rng.uniform(0.05, 0.7),
                )
            })
            .collect();
        Instance::homogeneous(items, n, ResourceVector::splat(1.0))
    })
}

/// Strategy: same but with alternating 1× / 2× bins.
fn heterogeneous_instance() -> impl Strategy<Value = Instance> {
    homogeneous_instance().prop_map(|mut inst| {
        for (i, b) in inst.bins.iter_mut().enumerate() {
            if i % 2 == 1 {
                *b = ResourceVector::splat(2.0);
            }
        }
        inst
    })
}

fn algorithms() -> Vec<Box<dyn Consolidator>> {
    vec![
        Box::new(FirstFitDecreasing { key: SortKey::Cpu }),
        Box::new(FirstFitDecreasing { key: SortKey::L2 }),
        Box::new(BestFit { key: SortKey::L1 }),
        Box::new(WorstFit { key: SortKey::Linf }),
        Box::new(NextFit { key: SortKey::L2 }),
        Box::new(AcoConsolidator::new(AcoParams {
            n_ants: 4,
            n_cycles: 4,
            ..AcoParams::fast()
        })),
        Box::new(DistributedAco::new(DistributedParams {
            partitions: 2,
            exchange_rounds: 1,
            aco: AcoParams {
                n_ants: 4,
                n_cycles: 4,
                ..AcoParams::fast()
            },
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_feasible_on_homogeneous(inst in homogeneous_instance()) {
        for algo in algorithms() {
            if let Some(sol) = algo.consolidate(&inst) {
                prop_assert!(sol.is_feasible(&inst), "{} infeasible", algo.name());
                prop_assert!(
                    sol.bins_used() >= inst.lower_bound(),
                    "{} beat the lower bound", algo.name()
                );
                prop_assert!(sol.avg_used_bin_utilization(&inst) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn all_algorithms_feasible_on_heterogeneous(inst in heterogeneous_instance()) {
        for algo in algorithms() {
            if let Some(sol) = algo.consolidate(&inst) {
                prop_assert!(sol.is_feasible(&inst), "{} infeasible on mixed fleet", algo.name());
            }
        }
    }

    #[test]
    fn every_registered_consolidator_is_feasible(inst in homogeneous_instance()) {
        // The registry contract: anything a scenario file can name must
        // yield a feasible solution or decline — on fresh instances and
        // on live ones carrying an incumbent placement.
        let reg = ConsolidatorRegistry::standard();
        let fast: Params = [
            ("preset".to_string(), ParamValue::Str("fast".into())),
            ("n_ants".to_string(), ParamValue::Int(4)),
            ("n_cycles".to_string(), ParamValue::Int(4)),
        ].into_iter().collect();
        let spread: Vec<usize> = (0..inst.n_items()).map(|i| i % inst.n_bins()).collect();
        let live = inst.clone().with_incumbent(spread.clone());
        for key in reg.keys() {
            let params = if ["aco", "daco", "aco-pso", "mo-aco"].contains(key) {
                fast.clone()
            } else {
                Params::new()
            };
            let algo = reg.build(key, &params)
                .unwrap_or_else(|e| panic!("{key} must build: {e}"));
            for variant in [&inst, &live] {
                if let Some(sol) = algo.consolidate(variant) {
                    prop_assert!(sol.is_feasible(variant), "{key} infeasible");
                    prop_assert!(
                        sol.bins_used() >= variant.lower_bound(),
                        "{key} beat the lower bound"
                    );
                }
            }
        }
    }

    #[test]
    fn migration_cost_is_zero_against_identical_incumbent(inst in homogeneous_instance()) {
        // Any solution measured against itself as incumbent moves nothing.
        for algo in algorithms() {
            if let Some(sol) = algo.consolidate(&inst) {
                prop_assert_eq!(sol.migration_count(&sol.assignment), 0);
                prop_assert_eq!(sol.migration_bytes(&inst, &sol.assignment), 0.0);
            }
        }
    }

    #[test]
    fn optimum_is_never_beaten(inst in homogeneous_instance()) {
        prop_assume!(inst.n_items() <= 12); // keep B&B instant
        let out = BranchAndBound { node_budget: 2_000_000 }.solve(&inst);
        if let Some(opt) = out.solution {
            prop_assert!(opt.is_feasible(&inst));
            if out.optimal {
                for algo in algorithms() {
                    if let Some(sol) = algo.consolidate(&inst) {
                        prop_assert!(
                            sol.bins_used() >= opt.bins_used(),
                            "{} ({}) beat the proven optimum ({})",
                            algo.name(), sol.bins_used(), opt.bins_used()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn local_search_is_monotone_and_feasible(inst in homogeneous_instance()) {
        let ffd = FirstFitDecreasing { key: SortKey::Cpu };
        if let Some(mut sol) = ffd.consolidate(&inst) {
            let before = sol.bins_used();
            bin_emptying_local_search(&inst, &mut sol);
            prop_assert!(sol.is_feasible(&inst));
            prop_assert!(sol.bins_used() <= before);
            prop_assert!(sol.bins_used() >= inst.lower_bound());
        }
    }

    #[test]
    fn canonicalize_preserves_feasibility_and_bin_count(inst in homogeneous_instance()) {
        let ffd = FirstFitDecreasing { key: SortKey::L1 };
        if let Some(sol) = ffd.consolidate(&inst) {
            let mut canon = sol.clone();
            canon.canonicalize();
            prop_assert_eq!(canon.bins_used(), sol.bins_used());
            prop_assert!(canon.is_feasible(&inst));
            // Canonical bins are exactly 0..bins_used.
            let max_bin = canon.assignment.iter().copied().max().unwrap_or(0);
            if !canon.assignment.is_empty() {
                prop_assert_eq!(max_bin + 1, canon.bins_used());
            }
        }
    }

    #[test]
    fn solution_metrics_are_consistent(inst in homogeneous_instance()) {
        let ffd = FirstFitDecreasing { key: SortKey::L2 };
        if let Some(sol) = ffd.consolidate(&inst) {
            let loads = sol.bin_loads(&inst);
            // Total load equals total demand.
            let total_load: ResourceVector = loads.iter().copied().sum();
            let total_demand: ResourceVector = inst.items.iter().copied().sum();
            for d in 0..snooze_cluster::resources::DIMS {
                prop_assert!((total_load.get(d) - total_demand.get(d)).abs() < 1e-6);
            }
            // bins_used agrees with non-empty loads.
            let nonempty = loads.iter().filter(|l| l.l1() > 0.0).count();
            prop_assert_eq!(nonempty, sol.bins_used());
        }
    }
}

#[test]
fn exact_solver_rejects_heterogeneous_instances() {
    let inst = Instance {
        items: vec![ResourceVector::splat(0.5)],
        bins: vec![ResourceVector::splat(1.0), ResourceVector::splat(2.0)],
        incumbent: None,
    };
    assert!(!inst.is_homogeneous());
    let result = std::panic::catch_unwind(|| BranchAndBound::default().solve(&inst));
    assert!(result.is_err(), "must refuse unsound input loudly");
}

#[test]
fn heterogeneous_generator_produces_mixed_bins() {
    use snooze_consolidation::problem::InstanceGenerator;
    let gen = InstanceGenerator::grid11();
    let inst = gen.generate_heterogeneous(20, &mut snooze_simcore::rng::SimRng::new(1));
    assert!(!inst.is_homogeneous());
    // Heuristics still solve it.
    let sol = BestFit { key: SortKey::L2 }.consolidate(&inst).unwrap();
    assert!(sol.is_feasible(&inst));
}

#[test]
fn empty_solution_is_feasible_for_empty_instance() {
    let inst = Instance::homogeneous(vec![], 3, ResourceVector::splat(1.0));
    let sol = Solution { assignment: vec![] };
    assert!(sol.is_feasible(&inst));
    assert_eq!(sol.bins_used(), 0);
    assert_eq!(sol.avg_used_bin_utilization(&inst), 0.0);
}
