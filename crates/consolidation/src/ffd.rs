//! First-Fit Decreasing and the other greedy baselines.
//!
//! The paper's criticism (§I): existing consolidation approaches "adopt
//! simple greedy algorithms such as variants of the First-Fit Decreasing
//! (FFD) heuristic, which tend to waste a lot of resources by presorting
//! the VMs according to a single dimension (e.g. CPU)". To reproduce both
//! the baseline and the criticism, this module provides FFD with five
//! presort keys — the single-dimension sorts (CPU, memory) and the
//! multi-dimension norms (L1, L2, L∞) — plus best-fit, worst-fit and
//! next-fit decreasing variants.

use snooze_cluster::resources::ResourceVector;

use crate::problem::{Consolidator, Instance, Solution};

/// The scalar key items are sorted by (descending) before greedy packing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortKey {
    /// CPU demand only — the presort the paper singles out.
    Cpu,
    /// Memory demand only.
    Memory,
    /// Sum of normalized demands (L1).
    L1,
    /// Euclidean norm of normalized demands (L2).
    L2,
    /// Largest normalized demand (L∞).
    Linf,
}

impl SortKey {
    /// All keys, for sweeps.
    pub const ALL: [SortKey; 5] = [
        SortKey::Cpu,
        SortKey::Memory,
        SortKey::L1,
        SortKey::L2,
        SortKey::Linf,
    ];

    fn measure(&self, item: &ResourceVector, reference: &ResourceVector) -> f64 {
        let n = item.normalize_by(reference);
        match self {
            SortKey::Cpu => n.cpu,
            SortKey::Memory => n.memory,
            SortKey::L1 => n.l1(),
            SortKey::L2 => n.l2(),
            SortKey::Linf => n.linf(),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SortKey::Cpu => "cpu",
            SortKey::Memory => "mem",
            SortKey::L1 => "l1",
            SortKey::L2 => "l2",
            SortKey::Linf => "linf",
        }
    }
}

/// Item indices sorted by descending key (ties by index, deterministic).
fn sorted_indices(instance: &Instance, key: SortKey) -> Vec<usize> {
    let reference = instance
        .bins
        .first()
        .copied()
        .unwrap_or_else(|| ResourceVector::splat(1.0));
    let mut idx: Vec<usize> = (0..instance.n_items()).collect();
    idx.sort_by(|&a, &b| {
        let ka = key.measure(&instance.items[a], &reference);
        let kb = key.measure(&instance.items[b], &reference);
        kb.partial_cmp(&ka)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Shared greedy skeleton: place items (in the given order) by a bin
/// choice rule. Returns `None` when an item fits nowhere.
fn greedy_place<F>(instance: &Instance, order: &[usize], mut choose: F) -> Option<Solution>
where
    F: FnMut(&Instance, &[ResourceVector], usize) -> Option<usize>,
{
    let mut loads = vec![ResourceVector::ZERO; instance.n_bins()];
    let mut assignment = vec![usize::MAX; instance.n_items()];
    for &item in order {
        let bin = choose(instance, &loads, item)?;
        loads[bin] += instance.items[item];
        assignment[item] = bin;
    }
    Some(Solution { assignment })
}

fn fits(instance: &Instance, loads: &[ResourceVector], item: usize, bin: usize) -> bool {
    (loads[bin] + instance.items[item]).fits_within(&instance.bins[bin])
}

/// First-Fit Decreasing: sort items descending by [`SortKey`], place each
/// in the lowest-indexed bin it fits in.
#[derive(Clone, Copy, Debug)]
pub struct FirstFitDecreasing {
    /// Presort key.
    pub key: SortKey,
}

impl FirstFitDecreasing {
    /// The paper's baseline: CPU-sorted FFD.
    pub fn cpu() -> Self {
        FirstFitDecreasing { key: SortKey::Cpu }
    }
}

impl Consolidator for FirstFitDecreasing {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let order = sorted_indices(instance, self.key);
        greedy_place(instance, &order, |inst, loads, item| {
            (0..inst.n_bins()).find(|&b| fits(inst, loads, item, b))
        })
    }

    fn name(&self) -> &'static str {
        match self.key {
            SortKey::Cpu => "FFD-cpu",
            SortKey::Memory => "FFD-mem",
            SortKey::L1 => "FFD-l1",
            SortKey::L2 => "FFD-l2",
            SortKey::Linf => "FFD-linf",
        }
    }
}

/// Best-Fit Decreasing: place each item in the feasible bin with the
/// least remaining L1 slack after placement (tightest fit).
#[derive(Clone, Copy, Debug)]
pub struct BestFit {
    /// Presort key.
    pub key: SortKey,
}

impl Consolidator for BestFit {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let order = sorted_indices(instance, self.key);
        greedy_place(instance, &order, |inst, loads, item| {
            let mut best: Option<(usize, f64)> = None;
            for b in 0..inst.n_bins() {
                if fits(inst, loads, item, b) {
                    let after = inst.bins[b].saturating_sub(&(loads[b] + inst.items[item]));
                    let slack = after.normalize_by(&inst.bins[b]).l1();
                    // Prefer bins already in use (slack of an empty bin is
                    // large anyway, but break exact ties toward lower index).
                    if best.map(|(_, s)| slack < s).unwrap_or(true) {
                        best = Some((b, slack));
                    }
                }
            }
            best.map(|(b, _)| b)
        })
    }

    fn name(&self) -> &'static str {
        "BFD"
    }
}

/// Worst-Fit Decreasing: place each item in the feasible bin with the
/// *most* remaining slack — a load-balancing rule, included as the
/// anti-consolidation ablation.
#[derive(Clone, Copy, Debug)]
pub struct WorstFit {
    /// Presort key.
    pub key: SortKey,
}

impl Consolidator for WorstFit {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let order = sorted_indices(instance, self.key);
        greedy_place(instance, &order, |inst, loads, item| {
            let mut best: Option<(usize, f64)> = None;
            for b in 0..inst.n_bins() {
                if fits(inst, loads, item, b) {
                    let after = inst.bins[b].saturating_sub(&(loads[b] + inst.items[item]));
                    let slack = after.normalize_by(&inst.bins[b]).l1();
                    if best.map(|(_, s)| slack > s).unwrap_or(true) {
                        best = Some((b, slack));
                    }
                }
            }
            best.map(|(b, _)| b)
        })
    }

    fn name(&self) -> &'static str {
        "WFD"
    }
}

/// Next-Fit Decreasing: keep one open bin; if the item doesn't fit, close
/// it and open the next. The weakest baseline.
#[derive(Clone, Copy, Debug)]
pub struct NextFit {
    /// Presort key.
    pub key: SortKey,
}

impl Consolidator for NextFit {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let order = sorted_indices(instance, self.key);
        let mut current = 0usize;
        greedy_place(instance, &order, move |inst, loads, item| {
            while current < inst.n_bins() {
                if fits(inst, loads, item, current) {
                    return Some(current);
                }
                current += 1;
            }
            None
        })
    }

    fn name(&self) -> &'static str {
        "NFD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceGenerator;
    use snooze_simcore::rng::SimRng;

    fn unit_instance(sizes: &[f64], n_bins: usize) -> Instance {
        Instance::homogeneous(
            sizes.iter().map(|&s| ResourceVector::splat(s)).collect(),
            n_bins,
            ResourceVector::splat(1.0),
        )
    }

    #[test]
    fn ffd_packs_classic_example_optimally() {
        // Sizes 0.6, 0.6, 0.4, 0.4: optimal is 2 bins (0.6+0.4 each).
        let inst = unit_instance(&[0.4, 0.6, 0.4, 0.6], 4);
        let sol = FirstFitDecreasing::cpu().consolidate(&inst).unwrap();
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.bins_used(), 2);
    }

    #[test]
    fn ffd_single_dimension_sort_can_waste_bins() {
        // The §I criticism, concretely: items small in CPU but large in
        // memory are sorted last by a CPU-only key and straggle into
        // extra bins, while an L∞ sort handles them first.
        let mut items = Vec::new();
        for _ in 0..4 {
            items.push(ResourceVector::new(0.50, 0.05, 0.0, 0.0)); // cpu-heavy
            items.push(ResourceVector::new(0.05, 0.50, 0.0, 0.0)); // mem-heavy
        }
        // One jumbo memory item that must lead the packing.
        items.push(ResourceVector::new(0.02, 0.95, 0.0, 0.0));
        let inst = Instance::homogeneous(items, 9, ResourceVector::splat(1.0));
        let cpu = FirstFitDecreasing { key: SortKey::Cpu }
            .consolidate(&inst)
            .unwrap();
        let linf = FirstFitDecreasing { key: SortKey::Linf }
            .consolidate(&inst)
            .unwrap();
        assert!(cpu.is_feasible(&inst) && linf.is_feasible(&inst));
        assert!(
            linf.bins_used() <= cpu.bins_used(),
            "L∞ ({}) should not lose to CPU-only ({})",
            linf.bins_used(),
            cpu.bins_used()
        );
    }

    #[test]
    fn all_baselines_produce_feasible_solutions() {
        let gen = InstanceGenerator::grid11();
        let mut rng = SimRng::new(9);
        let inst = gen.generate(60, &mut rng);
        let algos: Vec<Box<dyn Consolidator>> = vec![
            Box::new(FirstFitDecreasing { key: SortKey::L2 }),
            Box::new(BestFit { key: SortKey::L2 }),
            Box::new(WorstFit { key: SortKey::L2 }),
            Box::new(NextFit { key: SortKey::L2 }),
        ];
        for a in &algos {
            let sol = a
                .consolidate(&inst)
                .unwrap_or_else(|| panic!("{} failed", a.name()));
            assert!(sol.is_feasible(&inst), "{} infeasible", a.name());
            assert!(sol.bins_used() >= inst.lower_bound());
        }
    }

    #[test]
    fn bfd_never_uses_more_bins_than_nfd() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..5 {
            let inst = gen.generate(40, &mut SimRng::new(seed));
            let bfd = BestFit { key: SortKey::L2 }
                .consolidate(&inst)
                .unwrap()
                .bins_used();
            let nfd = NextFit { key: SortKey::L2 }.consolidate(&inst).unwrap();
            assert!(
                bfd <= nfd.bins_used(),
                "seed {seed}: BFD {bfd} > NFD {}",
                nfd.bins_used()
            );
        }
    }

    #[test]
    fn worst_fit_spreads_load() {
        let inst = unit_instance(&[0.3, 0.3, 0.3], 3);
        let wfd = WorstFit { key: SortKey::L1 }.consolidate(&inst).unwrap();
        assert_eq!(wfd.bins_used(), 3, "WFD should spread");
        let ffd = FirstFitDecreasing::cpu().consolidate(&inst).unwrap();
        assert_eq!(ffd.bins_used(), 1, "FFD should pack");
    }

    #[test]
    fn infeasible_when_bins_run_out() {
        let inst = unit_instance(&[0.9, 0.9, 0.9], 2);
        assert!(FirstFitDecreasing::cpu().consolidate(&inst).is_none());
    }

    #[test]
    fn oversized_item_is_rejected() {
        let inst = unit_instance(&[1.5], 3);
        assert!(FirstFitDecreasing::cpu().consolidate(&inst).is_none());
        assert!(BestFit { key: SortKey::L1 }.consolidate(&inst).is_none());
    }

    #[test]
    fn sort_keys_order_as_documented() {
        // Item A: cpu-heavy; item B: mem-heavy but bigger in total.
        let a = ResourceVector::new(0.5, 0.1, 0.0, 0.0);
        let b = ResourceVector::new(0.2, 0.6, 0.1, 0.1);
        let inst = Instance::homogeneous(vec![a, b], 2, ResourceVector::splat(1.0));
        assert_eq!(sorted_indices(&inst, SortKey::Cpu), vec![0, 1]);
        assert_eq!(sorted_indices(&inst, SortKey::Memory), vec![1, 0]);
        assert_eq!(sorted_indices(&inst, SortKey::L1), vec![1, 0]);
        assert_eq!(sorted_indices(&inst, SortKey::Linf), vec![1, 0]);
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let inst = unit_instance(&[], 3);
        let sol = FirstFitDecreasing::cpu().consolidate(&inst).unwrap();
        assert!(sol.assignment.is_empty());
        assert_eq!(sol.bins_used(), 0);
    }
}
