//! Two-stage ACO-PSO consolidation (after arxiv 2510.00541).
//!
//! Stage one runs the paper's ACO colony to get a strong seed. Stage two
//! treats assignments as particle positions in a discrete PSO: a small
//! swarm of perturbed copies of the ACO solution iteratively drifts back
//! toward the global best (each item adopts the global-best bin with some
//! probability, only when it fits), explores with occasional random
//! moves, and is polished by the bin-emptying local search. The swarm
//! never leaves the feasible region — adoption and exploration are
//! capacity-checked move-by-move — so the result is always at least as
//! good as the ACO seed.

use snooze_cluster::resources::ResourceVector;
use snooze_simcore::rng::SimRng;

use crate::aco::{bin_emptying_local_search, AcoConsolidator, AcoParams};
use crate::problem::{Consolidator, Instance, Solution};

/// Parameters of the two-stage scheme.
#[derive(Clone, Copy, Debug)]
pub struct AcoPsoParams {
    /// Colony parameters for the seeding stage.
    pub aco: AcoParams,
    /// Number of particles in the refinement swarm.
    pub swarm: usize,
    /// Refinement iterations.
    pub iterations: usize,
    /// Per-item probability of adopting the global best's bin.
    pub adopt_prob: f64,
    /// Per-item probability of an exploratory random move.
    pub explore_prob: f64,
    /// Seed of the refinement stage's RNG (the colony uses `aco.seed`).
    pub seed: u64,
}

impl Default for AcoPsoParams {
    fn default() -> Self {
        AcoPsoParams {
            aco: AcoParams::default(),
            swarm: 8,
            iterations: 12,
            adopt_prob: 0.35,
            explore_prob: 0.05,
            seed: 0xAC050,
        }
    }
}

/// The two-stage ACO-PSO consolidator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcoPsoConsolidator {
    /// Scheme parameters.
    pub params: AcoPsoParams,
}

impl AcoPsoConsolidator {
    /// A consolidator with the given parameters.
    pub fn new(params: AcoPsoParams) -> Self {
        AcoPsoConsolidator { params }
    }

    /// Move `item` of `particle` to `to` iff capacity allows, keeping the
    /// running loads consistent. Returns whether the move happened.
    fn try_move(
        instance: &Instance,
        particle: &mut Solution,
        loads: &mut [ResourceVector],
        item: usize,
        to: usize,
    ) -> bool {
        let from = particle.assignment[item];
        if from == to {
            return false;
        }
        let demand = instance.items[item];
        if !(loads[to] + demand).fits_within(&instance.bins[to]) {
            return false;
        }
        loads[from] = loads[from].saturating_sub(&demand);
        loads[to] += demand;
        particle.assignment[item] = to;
        true
    }
}

impl Consolidator for AcoPsoConsolidator {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let p = self.params;
        let seed = AcoConsolidator::new(p.aco).consolidate(instance)?;
        if instance.n_items() == 0 || p.swarm == 0 || p.iterations == 0 {
            return Some(seed);
        }

        let rng = SimRng::new(p.seed);
        let mut gbest = seed.clone();

        // Perturbed copies of the seed: each particle shakes a few items
        // loose so the swarm starts spread around the ACO optimum.
        let mut swarm: Vec<(Solution, Vec<ResourceVector>)> = (0..p.swarm)
            .map(|k| {
                let mut particle = seed.clone();
                let mut loads = particle.bin_loads(instance);
                let mut prng = rng.fork(k as u64 + 1);
                let shakes = (instance.n_items() / 8).max(1);
                for _ in 0..shakes {
                    let item = prng.range(0, instance.n_items());
                    let to = prng.range(0, instance.n_bins());
                    Self::try_move(instance, &mut particle, &mut loads, item, to);
                }
                (particle, loads)
            })
            .collect();

        for iter in 0..p.iterations {
            let mut iter_rng = rng.fork(0x1000 + iter as u64);
            for (particle, loads) in swarm.iter_mut() {
                for item in 0..instance.n_items() {
                    let r = iter_rng.uniform(0.0, 1.0);
                    if r < p.adopt_prob {
                        let to = gbest.assignment[item];
                        Self::try_move(instance, particle, loads, item, to);
                    } else if r < p.adopt_prob + p.explore_prob {
                        let to = iter_rng.range(0, instance.n_bins());
                        Self::try_move(instance, particle, loads, item, to);
                    }
                }
                bin_emptying_local_search(instance, particle);
                *loads = particle.bin_loads(instance);
                if particle.bins_used() < gbest.bins_used() {
                    gbest = particle.clone();
                }
            }
        }

        debug_assert!(gbest.is_feasible(instance));
        debug_assert!(gbest.bins_used() <= seed.bins_used());
        Some(gbest)
    }

    fn name(&self) -> &'static str {
        "ACO-PSO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceGenerator;

    #[test]
    fn refinement_never_worse_than_the_aco_seed() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..4 {
            let inst = gen.generate(40, &mut SimRng::new(seed));
            let params = AcoPsoParams {
                aco: AcoParams::fast(),
                ..AcoPsoParams::default()
            };
            let aco = AcoConsolidator::new(params.aco).consolidate(&inst).unwrap();
            let pso = AcoPsoConsolidator::new(params).consolidate(&inst).unwrap();
            assert!(pso.is_feasible(&inst), "seed {seed}");
            assert!(
                pso.bins_used() <= aco.bins_used(),
                "seed {seed}: pso {} vs aco {}",
                pso.bins_used(),
                aco.bins_used()
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(35, &mut SimRng::new(11));
        let params = AcoPsoParams {
            aco: AcoParams::fast(),
            ..AcoPsoParams::default()
        };
        let a = AcoPsoConsolidator::new(params).consolidate(&inst);
        let b = AcoPsoConsolidator::new(params).consolidate(&inst);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::homogeneous(vec![], 3, ResourceVector::splat(1.0));
        let sol = AcoPsoConsolidator::default().consolidate(&inst).unwrap();
        assert!(sol.assignment.is_empty());
    }
}
