//! Energy accounting for placements.
//!
//! Converts a consolidation [`Solution`] into the energy the cluster
//! would draw while that placement holds: used hosts draw utilization-
//! dependent active power, empty hosts are suspended (Snooze's whole
//! point), and — following the paper's accounting, which reports energy
//! savings "including energy spent into the computation" — the energy the
//! placement algorithm itself burned is added on top.

use snooze_cluster::power::PowerModel;

use crate::problem::{Instance, Solution};

/// Parameters of the energy evaluation.
pub struct EnergyParams<'a> {
    /// Host power model (homogeneous hosts).
    pub power: &'a dyn PowerModel,
    /// How long the placement holds, in seconds.
    pub duration_secs: f64,
    /// Energy spent computing the placement, in joules (algorithm runtime
    /// × the power of the machine running it).
    pub compute_overhead_j: f64,
}

/// Total energy in watt-hours for holding `solution` on `instance`'s
/// hosts for the configured duration.
///
/// Per-host draw: `active_watts(cpu utilization)` when the host carries
/// load, `suspended_watts()` otherwise.
pub fn placement_energy_wh(instance: &Instance, solution: &Solution, params: &EnergyParams) -> f64 {
    let loads = solution.bin_loads(instance);
    let mut watts = 0.0;
    for (load, cap) in loads.iter().zip(&instance.bins) {
        if load.l1() > 0.0 {
            let cpu_util = if cap.cpu > 0.0 {
                (load.cpu / cap.cpu).clamp(0.0, 1.0)
            } else {
                0.0
            };
            watts += params.power.active_watts(cpu_util);
        } else {
            watts += params.power.suspended_watts();
        }
    }
    (watts * params.duration_secs + params.compute_overhead_j) / 3600.0
}

/// Joules burned by an algorithm that ran for `elapsed_secs` on a machine
/// drawing `watts` — the paper's "energy spent into the computation".
pub fn compute_energy_j(elapsed_secs: f64, watts: f64) -> f64 {
    elapsed_secs * watts
}

#[cfg(test)]
mod tests {
    use super::*;
    use snooze_cluster::power::LinearPower;
    use snooze_cluster::resources::ResourceVector;

    fn model() -> LinearPower {
        LinearPower {
            idle_watts: 100.0,
            max_watts: 200.0,
            suspend_watts: 5.0,
        }
    }

    fn instance() -> Instance {
        Instance::homogeneous(
            vec![ResourceVector::splat(0.5), ResourceVector::splat(0.5)],
            3,
            ResourceVector::splat(1.0),
        )
    }

    #[test]
    fn packed_placement_beats_spread_placement() {
        let inst = instance();
        let m = model();
        let params = EnergyParams {
            power: &m,
            duration_secs: 3600.0,
            compute_overhead_j: 0.0,
        };
        let packed = Solution {
            assignment: vec![0, 0],
        };
        let spread = Solution {
            assignment: vec![0, 1],
        };
        let e_packed = placement_energy_wh(&inst, &packed, &params);
        let e_spread = placement_energy_wh(&inst, &spread, &params);
        // Packed: 1 host at 100% (200 W) + 2 suspended (10 W) = 210 Wh.
        assert!((e_packed - 210.0).abs() < 1e-9, "{e_packed}");
        // Spread: 2 hosts at 50% (150 W each) + 1 suspended (5 W) = 305 Wh.
        assert!((e_spread - 305.0).abs() < 1e-9, "{e_spread}");
        assert!(e_packed < e_spread);
    }

    #[test]
    fn compute_overhead_is_included() {
        let inst = instance();
        let m = model();
        let without = EnergyParams {
            power: &m,
            duration_secs: 3600.0,
            compute_overhead_j: 0.0,
        };
        let with = EnergyParams {
            power: &m,
            duration_secs: 3600.0,
            compute_overhead_j: 7200.0,
        };
        let sol = Solution {
            assignment: vec![0, 0],
        };
        let delta =
            placement_energy_wh(&inst, &sol, &with) - placement_energy_wh(&inst, &sol, &without);
        assert!((delta - 2.0).abs() < 1e-9, "7200 J = 2 Wh");
    }

    #[test]
    fn compute_energy_is_power_times_time() {
        assert_eq!(compute_energy_j(10.0, 250.0), 2500.0);
        assert_eq!(compute_energy_j(0.0, 250.0), 0.0);
    }

    #[test]
    fn utilization_dependence() {
        // One host at 0% CPU (but carrying memory-only load) must still
        // draw idle active power, not suspend power.
        let inst = Instance::homogeneous(
            vec![ResourceVector::new(0.0, 0.5, 0.0, 0.0)],
            1,
            ResourceVector::splat(1.0),
        );
        let m = model();
        let params = EnergyParams {
            power: &m,
            duration_secs: 3600.0,
            compute_overhead_j: 0.0,
        };
        let sol = Solution {
            assignment: vec![0],
        };
        assert!((placement_energy_wh(&inst, &sol, &params) - 100.0).abs() < 1e-9);
    }
}
