#![warn(missing_docs)]

//! # snooze-consolidation
//!
//! The paper's second contribution: "a novel nature-inspired VM
//! consolidation algorithm based on the Ant Colony Optimization" (§III-A),
//! together with every comparator its evaluation (§III-B) needs:
//!
//! * [`problem`] — static VM-to-host placement as d-dimensional vector bin
//!   packing: instances, solutions, feasibility validation and quality
//!   metrics.
//! * [`ffd`] — the First-Fit-Decreasing family the paper compares against,
//!   with the single-dimension presorts criticised in the introduction
//!   ("presorting the VMs according to a single dimension (e.g. CPU) …
//!   tend\[s\] to waste a lot of resources"), plus L1/L2/L∞ multi-dimension
//!   variants and first/best/next/worst-fit baselines.
//! * [`aco`] — the ACO consolidation algorithm: pheromone matrix over
//!   VM–bin pairs, heuristic desirability, probabilistic decision rule,
//!   cycles with evaporation and global-best reinforcement. Includes a
//!   Rayon-parallel ant loop (the paper: "the algorithm is well suited
//!   for parallelization").
//! * [`exact`] — a branch-and-bound optimal solver standing in for the
//!   CPLEX runs the paper used to compute "the optimal solution".
//! * [`energy`] — placement → energy mapping, including the energy spent
//!   computing the placement itself (the paper's 4.1% saving "includ\[es\]
//!   energy spent into the computation").
//! * [`distributed`] — the future-work §V "distributed version of the
//!   algorithm": per-partition ACO with ring-based residual exchange.
//! * [`aco_pso`] — the two-stage ACO-PSO refinement (arxiv 2510.00541):
//!   a feasibility-preserving particle swarm polishing the colony's best.
//! * [`multi_objective`] — migration-cost-aware consolidation (arxiv
//!   1706.06646): weighs freed hosts against live-migration churn.
//! * [`registry`] — the string-keyed [`registry::ConsolidatorRegistry`]
//!   building any of the above from flat TOML-expressible parameters.

pub mod aco;
pub mod aco_pso;
pub mod distributed;
pub mod energy;
pub mod exact;
pub mod ffd;
pub mod multi_objective;
pub mod problem;
pub mod registry;

pub use aco::{
    bin_emptying_local_search, AcoConsolidator, AcoParams, AcoPhaseProfile, AcoRun, UpdateRule,
};
pub use aco_pso::{AcoPsoConsolidator, AcoPsoParams};
pub use distributed::{DistributedAco, DistributedParams};
pub use energy::{placement_energy_wh, EnergyParams};
pub use exact::{BranchAndBound, ExactOutcome};
pub use ffd::{BestFit, FirstFitDecreasing, NextFit, SortKey, WorstFit};
pub use multi_objective::{MigrationAwareAco, MigrationAwareParams};
pub use problem::{Consolidator, Instance, InstanceGenerator, Solution};
pub use registry::{
    ConsolidatorRegistry, GuardedBranchAndBound, ParamValue, Params, REGISTRY_KEYS,
};
