//! Distributed ACO consolidation — the paper's future work (§V):
//! "a distributed version of the algorithm will be developed".
//!
//! The distribution scheme mirrors how Snooze would host it: the VM set
//! and the host set are split across *k* partitions (one per Group
//! Manager, which only sees its own Local Controllers). Each partition
//! runs the centralized ACO colony over its share — in parallel with
//! Rayon, since partitions are independent. A partition-local optimum is
//! globally wasteful at the seams, so partitions then run *migration
//! rounds* arranged in a ring: each partition takes its least-utilized
//! used host, unpacks it, and offers those VMs to the next partition,
//! which accepts them only if they fit in the residual capacity of hosts
//! it already uses (so acceptance strictly reduces the global host
//! count).
//!
//! This trades solution quality for scalability exactly the way the
//! thesis argues: each colony works on `n/k` items (the construction step
//! is O(n²·bins) per ant), and the ring exchange recovers most of the
//! seam waste.

use rayon::prelude::*;

use snooze_cluster::resources::ResourceVector;

use crate::aco::{AcoConsolidator, AcoParams};
use crate::problem::{Consolidator, Instance, Solution};

/// Parameters of the distributed scheme.
#[derive(Clone, Copy, Debug)]
pub struct DistributedParams {
    /// Number of partitions (Group Managers).
    pub partitions: usize,
    /// Ring-exchange rounds after the local solves.
    pub exchange_rounds: usize,
    /// Colony parameters used by each partition.
    pub aco: AcoParams,
}

impl Default for DistributedParams {
    fn default() -> Self {
        DistributedParams {
            partitions: 4,
            exchange_rounds: 2,
            aco: AcoParams::default(),
        }
    }
}

/// The distributed ACO consolidator.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistributedAco {
    /// Scheme parameters.
    pub params: DistributedParams,
}

impl DistributedAco {
    /// A distributed consolidator with the given parameters.
    pub fn new(params: DistributedParams) -> Self {
        DistributedAco { params }
    }

    /// Run the distributed scheme. Returns `None` if any partition cannot
    /// place its share (the centralized algorithm may still succeed in
    /// that case — a genuine cost of partitioning).
    pub fn run(&self, instance: &Instance) -> Option<Solution> {
        let k = self.params.partitions.max(1).min(instance.n_bins().max(1));
        if instance.n_items() == 0 {
            return Some(Solution { assignment: vec![] });
        }

        // Round-robin split of items; contiguous split of bins.
        let item_part: Vec<usize> = (0..instance.n_items()).map(|i| i % k).collect();
        let bin_ranges: Vec<std::ops::Range<usize>> = split_ranges(instance.n_bins(), k);

        // Local colonies, in parallel (deterministic: seeds derived from
        // the partition index, results indexed by partition).
        let locals: Vec<Option<(Vec<usize>, Solution)>> = (0..k)
            .into_par_iter()
            .map(|p| {
                let my_items: Vec<usize> = (0..instance.n_items())
                    .filter(|&i| item_part[i] == p)
                    .collect();
                let sub = Instance {
                    items: my_items.iter().map(|&i| instance.items[i]).collect(),
                    bins: instance.bins[bin_ranges[p].clone()].to_vec(),
                    incumbent: None,
                };
                let aco = AcoConsolidator::new(AcoParams {
                    seed: self.params.aco.seed ^ (p as u64).wrapping_mul(0x9E37_79B9),
                    ..self.params.aco
                });
                aco.consolidate(&sub).map(|s| (my_items, s))
            })
            .collect();

        // Merge into a global assignment.
        let mut assignment = vec![usize::MAX; instance.n_items()];
        for (p, local) in locals.into_iter().enumerate() {
            let (my_items, sol) = local?;
            for (local_idx, &global_item) in my_items.iter().enumerate() {
                assignment[global_item] = bin_ranges[p].start + sol.assignment[local_idx];
            }
        }
        let mut solution = Solution { assignment };

        // Ring exchange rounds.
        for _ in 0..self.params.exchange_rounds {
            let mut improved = false;
            for p in 0..k {
                let next = (p + 1) % k;
                if self.try_drain_into(instance, &mut solution, &bin_ranges[p], &bin_ranges[next]) {
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        debug_assert!(solution.is_feasible(instance));
        Some(solution)
    }

    /// Try to empty the least-utilized used bin of `from` by best-fitting
    /// its items into the residual capacity of bins already used in `to`
    /// (or elsewhere in `from`). All-or-nothing: the move happens only if
    /// every item finds a home, so the global bin count strictly drops.
    fn try_drain_into(
        &self,
        instance: &Instance,
        solution: &mut Solution,
        from: &std::ops::Range<usize>,
        to: &std::ops::Range<usize>,
    ) -> bool {
        let loads = solution.bin_loads(instance);
        // Least-utilized used bin in `from`.
        let victim = from
            .clone()
            .filter(|&b| loads[b].l1() > 0.0)
            .min_by(|&a, &b| {
                let ua = loads[a].normalize_by(&instance.bins[a]).l1();
                let ub = loads[b].normalize_by(&instance.bins[b]).l1();
                ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
            });
        let victim = match victim {
            Some(v) => v,
            None => return false,
        };
        let movers: Vec<usize> = (0..instance.n_items())
            .filter(|&i| solution.assignment[i] == victim)
            .collect();
        if movers.is_empty() {
            return false;
        }

        // Candidate destination bins: used bins in `to` plus used bins in
        // `from` other than the victim.
        let mut residuals: Vec<(usize, ResourceVector)> = to
            .clone()
            .chain(from.clone())
            .filter(|&b| b != victim && loads[b].l1() > 0.0)
            .map(|b| (b, instance.bins[b].saturating_sub(&loads[b])))
            .collect();

        // Best-fit each mover (largest first) into the tightest residual.
        let mut order = movers.clone();
        order.sort_by(|&a, &b| {
            let ka = instance.items[a].l1();
            let kb = instance.items[b].l1();
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut placement: Vec<(usize, usize)> = Vec::with_capacity(order.len());
        for &item in &order {
            let demand = instance.items[item];
            let slot = residuals
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| demand.fits_within(r))
                .min_by(|(_, (_, ra)), (_, (_, rb))| {
                    let sa = ra.saturating_sub(&demand).l1();
                    let sb = rb.saturating_sub(&demand).l1();
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(idx, _)| idx);
            match slot {
                Some(idx) => {
                    let (bin, r) = &mut residuals[idx];
                    *r = r.saturating_sub(&demand);
                    placement.push((item, *bin));
                }
                None => return false, // all-or-nothing
            }
        }
        for (item, bin) in placement {
            solution.assignment[item] = bin;
        }
        true
    }
}

impl Consolidator for DistributedAco {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        self.run(instance)
    }

    fn name(&self) -> &'static str {
        "dACO"
    }
}

/// Split `0..n` into `k` contiguous near-equal ranges.
fn split_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for p in 0..k {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceGenerator;
    use snooze_simcore::rng::SimRng;

    fn params() -> DistributedParams {
        DistributedParams {
            partitions: 3,
            exchange_rounds: 3,
            aco: AcoParams::fast(),
        }
    }

    #[test]
    fn split_ranges_covers_everything() {
        let rs = split_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = split_ranges(3, 3);
        assert_eq!(rs, vec![0..1, 1..2, 2..3]);
        let rs = split_ranges(2, 5);
        assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), 2);
    }

    #[test]
    fn produces_feasible_solutions() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..4 {
            let inst = gen.generate(45, &mut SimRng::new(seed));
            let sol = DistributedAco::new(params()).consolidate(&inst);
            let sol = match sol {
                Some(s) => s,
                None => continue, // partitioning can run out of local bins
            };
            assert!(sol.is_feasible(&inst), "seed {seed}");
            assert!(sol.bins_used() >= inst.lower_bound());
        }
    }

    #[test]
    fn quality_is_close_to_centralized() {
        let gen = InstanceGenerator::grid11();
        let mut total_d = 0usize;
        let mut total_c = 0usize;
        let mut solved = 0;
        for seed in 0..5 {
            let inst = gen.generate(42, &mut SimRng::new(100 + seed));
            let central = AcoConsolidator::new(AcoParams::fast())
                .consolidate(&inst)
                .unwrap()
                .bins_used();
            if let Some(d) = DistributedAco::new(params()).consolidate(&inst) {
                total_d += d.bins_used();
                total_c += central;
                solved += 1;
            }
        }
        assert!(
            solved >= 3,
            "distributed should usually solve grid11 instances"
        );
        let overhead = total_d as f64 / total_c as f64;
        assert!(
            overhead < 1.35,
            "distributed within 35% of centralized, got {overhead:.2}×"
        );
    }

    #[test]
    fn exchange_rounds_never_hurt() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(36, &mut SimRng::new(7));
        let no_exchange = DistributedAco::new(DistributedParams {
            exchange_rounds: 0,
            ..params()
        })
        .consolidate(&inst);
        let with_exchange = DistributedAco::new(params()).consolidate(&inst);
        if let (Some(a), Some(b)) = (no_exchange, with_exchange) {
            assert!(b.bins_used() <= a.bins_used());
            assert!(b.is_feasible(&inst));
        }
    }

    #[test]
    fn single_partition_degenerates_to_centralized_quality() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(3));
        let one = DistributedAco::new(DistributedParams {
            partitions: 1,
            ..params()
        })
        .consolidate(&inst)
        .unwrap();
        assert!(one.is_feasible(&inst));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::homogeneous(vec![], 4, ResourceVector::splat(1.0));
        let sol = DistributedAco::new(params()).consolidate(&inst).unwrap();
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn deterministic() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(9));
        let a = DistributedAco::new(params()).consolidate(&inst);
        let b = DistributedAco::new(params()).consolidate(&inst);
        assert_eq!(a, b);
    }
}
