//! Static VM placement as d-dimensional vector bin packing.
//!
//! The GRID'11 evaluation frames consolidation exactly this way: *n* VMs
//! with multi-dimensional resource demands must be packed into the fewest
//! hosts such that no host's capacity is exceeded in any dimension. An
//! [`Instance`] holds the demands and host capacities, a [`Solution`] maps
//! every VM to a host, and [`Consolidator`] is the interface all
//! algorithms (ACO, FFD family, exact) implement.

use snooze_cluster::resources::{ResourceVector, DIMS};
use snooze_simcore::rng::SimRng;

/// One consolidation problem instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// VM demands, in absolute units.
    pub items: Vec<ResourceVector>,
    /// Host capacities. `bins.len()` bounds the number of usable hosts.
    pub bins: Vec<ResourceVector>,
    /// The placement currently in force, if the instance describes a live
    /// reconfiguration: `incumbent[i]` is item `i`'s current bin. Lets
    /// migration-cost-aware consolidators weigh churn against packing
    /// quality. `None` for from-scratch placement.
    pub incumbent: Option<Vec<usize>>,
}

impl Instance {
    /// An instance over `n_bins` identical hosts of the given capacity.
    pub fn homogeneous(
        items: Vec<ResourceVector>,
        n_bins: usize,
        capacity: ResourceVector,
    ) -> Self {
        Instance {
            items,
            bins: vec![capacity; n_bins],
            incumbent: None,
        }
    }

    /// Attach an incumbent placement (`incumbent[i]` = item `i`'s current
    /// bin). Panics if the length does not match the item count.
    pub fn with_incumbent(mut self, incumbent: Vec<usize>) -> Self {
        assert_eq!(
            incumbent.len(),
            self.items.len(),
            "incumbent must assign every item"
        );
        self.incumbent = Some(incumbent);
        self
    }

    /// Number of VMs.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of available hosts.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// True when every host has the same capacity. The greedy and ACO
    /// algorithms handle heterogeneous hosts; [`crate::exact`] requires
    /// homogeneity (its symmetry breaking depends on it).
    pub fn is_homogeneous(&self) -> bool {
        self.bins.windows(2).all(|w| w[0] == w[1])
    }

    /// The classical lower bound on bins needed: for each dimension, total
    /// demand divided by the (maximum) bin capacity, rounded up; take the
    /// max over dimensions. Exact-solver pruning and sanity checks use it.
    pub fn lower_bound(&self) -> usize {
        if self.items.is_empty() {
            return 0;
        }
        let total: ResourceVector = self.items.iter().copied().sum();
        let cap = self
            .bins
            .iter()
            .fold(ResourceVector::ZERO, |acc, b| acc.max(b));
        let mut lb = 1usize;
        for d in 0..DIMS {
            if cap.get(d) > 0.0 {
                let need = (total.get(d) / cap.get(d) - 1e-9).ceil() as usize;
                lb = lb.max(need.max(1));
            }
        }
        lb
    }
}

/// A complete assignment of items to bins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// `assignment[i]` is the bin index of item `i`.
    pub assignment: Vec<usize>,
}

impl Solution {
    /// Number of distinct bins used.
    pub fn bins_used(&self) -> usize {
        let mut seen: Vec<bool> = Vec::new();
        let mut count = 0;
        for &b in &self.assignment {
            if b >= seen.len() {
                seen.resize(b + 1, false);
            }
            if !seen[b] {
                seen[b] = true;
                count += 1;
            }
        }
        count
    }

    /// Load vector of each bin (indexed by bin, length `instance.n_bins()`).
    pub fn bin_loads(&self, instance: &Instance) -> Vec<ResourceVector> {
        let mut loads = vec![ResourceVector::ZERO; instance.n_bins()];
        for (item, &bin) in self.assignment.iter().enumerate() {
            loads[bin] += instance.items[item];
        }
        loads
    }

    /// True iff every item is assigned to a valid bin and no bin exceeds
    /// capacity in any dimension.
    pub fn is_feasible(&self, instance: &Instance) -> bool {
        if self.assignment.len() != instance.n_items() {
            return false;
        }
        if self.assignment.iter().any(|&b| b >= instance.n_bins()) {
            return false;
        }
        self.bin_loads(instance)
            .iter()
            .zip(&instance.bins)
            .all(|(load, cap)| load.fits_within(cap))
    }

    /// Mean utilization of the *used* bins, averaged over dimensions with
    /// non-zero capacity — the paper's "average host utilization" metric.
    pub fn avg_used_bin_utilization(&self, instance: &Instance) -> f64 {
        let loads = self.bin_loads(instance);
        let mut sum = 0.0;
        let mut used = 0usize;
        for (load, cap) in loads.iter().zip(&instance.bins) {
            if load.l1() > 0.0 {
                used += 1;
                let u = load.normalize_by(cap);
                let mut dims = 0;
                let mut acc = 0.0;
                for d in 0..DIMS {
                    if cap.get(d) > 0.0 {
                        acc += u.get(d);
                        dims += 1;
                    }
                }
                if dims > 0 {
                    sum += acc / dims as f64;
                }
            }
        }
        if used == 0 {
            0.0
        } else {
            sum / used as f64
        }
    }

    /// Number of items whose bin differs from the incumbent placement —
    /// the live migrations this solution would trigger. Zero against an
    /// identical incumbent.
    pub fn migration_count(&self, incumbent: &[usize]) -> usize {
        self.assignment
            .iter()
            .zip(incumbent)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Total memory (in the instance's memory units, MB throughout this
    /// codebase) of the items that move — the dominant term of pre-copy
    /// live-migration cost.
    pub fn migration_bytes(&self, instance: &Instance, incumbent: &[usize]) -> f64 {
        self.assignment
            .iter()
            .zip(incumbent)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| instance.items[i].memory)
            .sum()
    }

    /// Renumber bins so that used bins are `0..bins_used()` in first-use
    /// order. Quality metrics are invariant; this canonical form makes
    /// solutions comparable across algorithms that open bins in different
    /// orders. Only valid for homogeneous instances.
    pub fn canonicalize(&mut self) {
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut next = 0usize;
        for b in self.assignment.iter_mut() {
            if *b >= remap.len() {
                remap.resize(*b + 1, None);
            }
            let target = *remap[*b].get_or_insert_with(|| {
                let t = next;
                next += 1;
                t
            });
            *b = target;
        }
    }
}

/// The interface every consolidation algorithm implements.
///
/// `Send + Sync` because configured consolidators are shared (via `Arc`)
/// with Group Managers that may execute on sharded-engine worker threads.
pub trait Consolidator: Send + Sync {
    /// Compute a feasible placement, or `None` if the algorithm cannot
    /// place every item within the available bins.
    fn consolidate(&self, instance: &Instance) -> Option<Solution>;

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Random-instance generator reproducing the GRID'11 instance family.
#[derive(Clone, Debug)]
pub struct InstanceGenerator {
    /// Host capacity (homogeneous).
    pub capacity: ResourceVector,
    /// Per-dimension demand, as a fraction of capacity: `U[lo, hi)`.
    pub demand_lo: f64,
    /// Upper end of the demand fraction range.
    pub demand_hi: f64,
    /// Bins made available, as a multiple of the lower bound (≥ 1.0).
    /// The default 2.0 gives every algorithm room to be wasteful.
    pub bin_slack: f64,
}

impl InstanceGenerator {
    /// GRID'11-style generator: demands uniform in 10–60 % of host
    /// capacity per dimension against a standard 8-core / 32 GB / 1 Gbit
    /// node.
    pub fn grid11() -> Self {
        InstanceGenerator {
            capacity: ResourceVector::new(8.0, 32_768.0, 1000.0, 1000.0),
            demand_lo: 0.1,
            demand_hi: 0.6,
            bin_slack: 2.0,
        }
    }

    /// Generate a *heterogeneous* instance: demands as in
    /// [`InstanceGenerator::generate`], but hosts split between the
    /// reference capacity and double-size machines — the mixed-generation
    /// clusters real datacenters accumulate.
    pub fn generate_heterogeneous(&self, n: usize, rng: &mut SimRng) -> Instance {
        let mut inst = self.generate(n, rng);
        let big = self.capacity * 2.0;
        for (i, bin) in inst.bins.iter_mut().enumerate() {
            if i % 2 == 1 {
                *bin = big;
            }
        }
        inst
    }

    /// Generate an instance with `n` VMs.
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> Instance {
        let items: Vec<ResourceVector> = (0..n)
            .map(|_| {
                ResourceVector::new(
                    self.capacity.cpu * rng.uniform(self.demand_lo, self.demand_hi),
                    self.capacity.memory * rng.uniform(self.demand_lo, self.demand_hi),
                    self.capacity.net_rx * rng.uniform(self.demand_lo, self.demand_hi),
                    self.capacity.net_tx * rng.uniform(self.demand_lo, self.demand_hi),
                )
            })
            .collect();
        let tmp = Instance {
            items,
            bins: vec![self.capacity],
            incumbent: None,
        };
        let lb = tmp.lower_bound();
        let n_bins = (((lb as f64) * self.bin_slack).ceil() as usize)
            .max(1)
            .min(n.max(1));
        Instance::homogeneous(tmp.items, n_bins.max(lb), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bins(n: usize) -> Vec<ResourceVector> {
        vec![ResourceVector::splat(1.0); n]
    }

    fn item(x: f64) -> ResourceVector {
        ResourceVector::splat(x)
    }

    #[test]
    fn lower_bound_is_max_over_dims() {
        let inst = Instance {
            items: vec![
                ResourceVector::new(0.6, 0.1, 0.0, 0.0),
                ResourceVector::new(0.6, 0.1, 0.0, 0.0),
                ResourceVector::new(0.6, 0.1, 0.0, 0.0),
            ],
            bins: unit_bins(5),
            incumbent: None,
        };
        // CPU total 1.8 ⇒ at least 2 bins; memory total 0.3 ⇒ 1.
        assert_eq!(inst.lower_bound(), 2);
    }

    #[test]
    fn lower_bound_edge_cases() {
        let empty = Instance {
            items: vec![],
            bins: unit_bins(3),
            incumbent: None,
        };
        assert_eq!(empty.lower_bound(), 0);
        let one = Instance {
            items: vec![item(0.01)],
            bins: unit_bins(3),
            incumbent: None,
        };
        assert_eq!(one.lower_bound(), 1);
    }

    #[test]
    fn feasibility_checks_capacity_and_indices() {
        let inst = Instance {
            items: vec![item(0.6), item(0.6)],
            bins: unit_bins(2),
            incumbent: None,
        };
        assert!(Solution {
            assignment: vec![0, 1]
        }
        .is_feasible(&inst));
        assert!(
            !Solution {
                assignment: vec![0, 0]
            }
            .is_feasible(&inst),
            "0.6+0.6 > 1"
        );
        assert!(
            !Solution {
                assignment: vec![0, 5]
            }
            .is_feasible(&inst),
            "bin out of range"
        );
        assert!(
            !Solution {
                assignment: vec![0]
            }
            .is_feasible(&inst),
            "missing item"
        );
    }

    #[test]
    fn bins_used_counts_distinct() {
        let s = Solution {
            assignment: vec![0, 2, 2, 0, 7],
        };
        assert_eq!(s.bins_used(), 3);
        assert_eq!(Solution { assignment: vec![] }.bins_used(), 0);
    }

    #[test]
    fn avg_utilization_ignores_empty_bins() {
        let inst = Instance {
            items: vec![item(0.5), item(0.5)],
            bins: unit_bins(10),
            incumbent: None,
        };
        let s = Solution {
            assignment: vec![0, 0],
        };
        // One used bin at 100% across all dims.
        assert!((s.avg_used_bin_utilization(&inst) - 1.0).abs() < 1e-9);
        let spread = Solution {
            assignment: vec![0, 5],
        };
        assert!((spread.avg_used_bin_utilization(&inst) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn canonicalize_preserves_structure() {
        let inst = Instance {
            items: vec![item(0.3); 4],
            bins: unit_bins(10),
            incumbent: None,
        };
        let mut s = Solution {
            assignment: vec![7, 2, 7, 9],
        };
        let before_used = s.bins_used();
        s.canonicalize();
        assert_eq!(s.assignment, vec![0, 1, 0, 2]);
        assert_eq!(s.bins_used(), before_used);
        assert!(s.is_feasible(&inst));
    }

    #[test]
    fn generator_produces_feasible_sized_instances() {
        let gen = InstanceGenerator::grid11();
        let mut rng = SimRng::new(42);
        let inst = gen.generate(50, &mut rng);
        assert_eq!(inst.n_items(), 50);
        assert!(inst.n_bins() >= inst.lower_bound());
        assert!(inst.n_bins() <= 50);
        for it in &inst.items {
            let f = it.normalize_by(&gen.capacity);
            for d in 0..DIMS {
                assert!((0.1..0.6).contains(&f.get(d)));
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = InstanceGenerator::grid11();
        let a = gen.generate(20, &mut SimRng::new(1));
        let b = gen.generate(20, &mut SimRng::new(1));
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x, y);
        }
    }
}
