//! Migration-cost-aware multi-objective consolidation (after the
//! decentralized multi-objective ACO of arxiv 1706.06646).
//!
//! Pure bin-minimisation treats migrations as free; a live datacenter
//! does not. This consolidator optimises a weighted objective
//! `bins_used + migration_weight · migration_count` against the
//! incumbent placement carried by the [`Instance`]: it runs the ACO
//! colony for packing quality, then greedily *reverts* planned
//! migrations that don't pay for themselves — an item goes back to its
//! incumbent bin whenever that keeps the solution feasible and does not
//! worsen the weighted objective. Against an identical incumbent the
//! result is migration-free; without an incumbent it degrades to plain
//! ACO.

use crate::aco::{AcoConsolidator, AcoParams};
use crate::problem::{Consolidator, Instance, Solution};

/// Parameters of the migration-aware scheme.
#[derive(Clone, Copy, Debug)]
pub struct MigrationAwareParams {
    /// Colony parameters for the packing stage.
    pub aco: AcoParams,
    /// How many freed bins one migration is worth. A revert is kept when
    /// it costs fewer than `1 / migration_weight` … i.e. when
    /// `Δbins + migration_weight · Δmigrations ≤ 0`.
    pub migration_weight: f64,
}

impl Default for MigrationAwareParams {
    fn default() -> Self {
        MigrationAwareParams {
            aco: AcoParams::default(),
            // A migration is worth 1/20 of a freed host: reverts that
            // leave the host count alone are always taken, and packing
            // one extra host must save at least 20 migrations.
            migration_weight: 0.05,
        }
    }
}

/// The migration-cost-aware consolidator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationAwareAco {
    /// Scheme parameters.
    pub params: MigrationAwareParams,
}

impl MigrationAwareAco {
    /// A consolidator with the given parameters.
    pub fn new(params: MigrationAwareParams) -> Self {
        MigrationAwareAco { params }
    }

    /// The weighted objective this consolidator minimises.
    pub fn objective(&self, solution: &Solution, incumbent: &[usize]) -> f64 {
        solution.bins_used() as f64
            + self.params.migration_weight * solution.migration_count(incumbent) as f64
    }
}

impl Consolidator for MigrationAwareAco {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        let mut solution = AcoConsolidator::new(self.params.aco).consolidate(instance)?;
        let Some(incumbent) = instance.incumbent.as_ref() else {
            return Some(solution); // nothing to weigh churn against
        };

        let mut loads = solution.bin_loads(instance);
        // Revert candidates, costliest items first: large-memory VMs are
        // the most expensive to pre-copy, so spare them preferentially.
        let mut movers: Vec<usize> = (0..instance.n_items())
            .filter(|&i| solution.assignment[i] != incumbent[i])
            .collect();
        movers.sort_by(|&a, &b| {
            instance.items[b]
                .memory
                .partial_cmp(&instance.items[a].memory)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        for &item in &movers {
            let home = incumbent[item];
            if home >= instance.n_bins() {
                continue; // incumbent host left the instance
            }
            let demand = instance.items[item];
            if !(loads[home] + demand).fits_within(&instance.bins[home]) {
                continue;
            }
            let planned = solution.assignment[item];
            let before = self.objective(&solution, incumbent);
            solution.assignment[item] = home;
            let after_loads_home = loads[home] + demand;
            let after_loads_planned = loads[planned].saturating_sub(&demand);
            let after = self.objective(&solution, incumbent);
            if after <= before {
                loads[home] = after_loads_home;
                loads[planned] = after_loads_planned;
            } else {
                solution.assignment[item] = planned; // revert the revert
            }
        }

        debug_assert!(solution.is_feasible(instance));
        Some(solution)
    }

    fn name(&self) -> &'static str {
        "MO-ACO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceGenerator;
    use snooze_cluster::resources::ResourceVector;
    use snooze_simcore::rng::SimRng;

    fn fast() -> MigrationAwareParams {
        MigrationAwareParams {
            aco: AcoParams::fast(),
            ..MigrationAwareParams::default()
        }
    }

    #[test]
    fn identical_incumbent_costs_zero_migrations_when_already_packed() {
        // Incumbent = the packing ACO itself would produce: every planned
        // move is a no-win churn and gets reverted.
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(5));
        let packed = AcoConsolidator::new(fast().aco).consolidate(&inst).unwrap();
        let inst = inst.with_incumbent(packed.assignment.clone());
        let sol = MigrationAwareAco::new(fast()).consolidate(&inst).unwrap();
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.migration_count(&packed.assignment), 0);
    }

    #[test]
    fn cuts_migrations_without_losing_bins() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..4 {
            let inst = gen.generate(36, &mut SimRng::new(40 + seed));
            // Incumbent: round-robin spread — plenty of nominal movement.
            let incumbent: Vec<usize> = (0..inst.n_items()).map(|i| i % inst.n_bins()).collect();
            let inst = inst.with_incumbent(incumbent.clone());
            let plain = AcoConsolidator::new(fast().aco).consolidate(&inst).unwrap();
            let aware = MigrationAwareAco::new(fast()).consolidate(&inst).unwrap();
            assert!(aware.is_feasible(&inst), "seed {seed}");
            assert!(
                aware.bins_used() <= plain.bins_used(),
                "seed {seed}: reverts must never add bins"
            );
            assert!(
                aware.migration_count(&incumbent) <= plain.migration_count(&incumbent),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn without_incumbent_equals_plain_aco() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(25, &mut SimRng::new(9));
        let plain = AcoConsolidator::new(fast().aco).consolidate(&inst).unwrap();
        let aware = MigrationAwareAco::new(fast()).consolidate(&inst).unwrap();
        assert_eq!(plain, aware);
    }

    #[test]
    fn migration_metrics_count_and_weigh_moves() {
        let inst = Instance::homogeneous(
            vec![
                ResourceVector::new(1.0, 1024.0, 0.0, 0.0),
                ResourceVector::new(1.0, 2048.0, 0.0, 0.0),
            ],
            2,
            ResourceVector::new(8.0, 8192.0, 10.0, 10.0),
        );
        let sol = Solution {
            assignment: vec![0, 0],
        };
        assert_eq!(sol.migration_count(&[0, 0]), 0);
        assert_eq!(sol.migration_count(&[0, 1]), 1);
        assert_eq!(sol.migration_bytes(&inst, &[0, 0]), 0.0);
        assert_eq!(sol.migration_bytes(&inst, &[0, 1]), 2048.0);
        assert_eq!(sol.migration_bytes(&inst, &[1, 1]), 3072.0);
    }
}
