//! The ACO-based VM consolidation algorithm (paper §III-A).
//!
//! Reproduces the algorithm of the GRID'11 companion paper (Feller,
//! Rilling, Morin — "Energy-aware ant colony based workload placement in
//! clouds"), as summarized in the PhD-forum paper:
//!
//! > "multiple agents (i.e. artificial ants) compute solutions
//! > probabilistically and simultaneously within multiple cycles. Thereby,
//! > they communicate indirectly by depositing … pheromone on each VM–LC
//! > pair within a pheromone matrix. In each cycle the ants receive VMs,
//! > and start constructing local solutions (i.e. VM to LC assignments) by
//! > the use of a probabilistic decision rule … based on the current
//! > pheromone concentration … and a heuristic information which guides
//! > the ants towards choosing VMs leading to better overall LC
//! > utilization. … At the end of each cycle, local solutions are compared
//! > and the one requiring the least number of LCs is saved as the new
//! > globally optimal solution. Afterwards, the pheromone matrix is
//! > updated to simulate pheromone evaporation and reinforce VM–LC pairs
//! > which belonged to the so-far best solution."
//!
//! Each ant packs bins one at a time: among the still-unassigned VMs that
//! fit the current bin's residual capacity, it draws one with probability
//! proportional to `τ(vm, bin)^α · η(vm, residual)^β`, where the heuristic
//! η rewards choices that leave little slack (better bin utilization).
//! When nothing fits, the ant moves to the next bin. Max–Min-style
//! pheromone bounds keep the colony from stagnating.
//!
//! The per-cycle ant loop is embarrassingly parallel — ants only read the
//! shared pheromone matrix — and is parallelized with Rayon when
//! [`AcoParams::parallel_ants`] is set, preserving bit-for-bit determinism
//! (each ant's RNG stream is forked from the cycle and ant index, and the
//! reduction order is fixed).

use rayon::prelude::*;

use snooze_cluster::resources::ResourceVector;
use snooze_simcore::rng::SimRng;

use crate::problem::{Consolidator, Instance, Solution};

/// How pheromone is reinforced at the end of a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UpdateRule {
    /// Max–Min style: only the global-best solution deposits (the
    /// behaviour the paper describes — "reinforce VM–LC pairs which
    /// belonged to the so-far best solution").
    #[default]
    GlobalBest,
    /// Classic Ant System: every ant deposits on its own solution,
    /// weighted by quality. Included as an ablation (E8).
    AllAnts,
}

/// Tunable parameters of the colony.
#[derive(Clone, Copy, Debug)]
pub struct AcoParams {
    /// Ants per cycle.
    pub n_ants: usize,
    /// Cycles.
    pub n_cycles: usize,
    /// Pheromone exponent α.
    pub alpha: f64,
    /// Heuristic exponent β.
    pub beta: f64,
    /// Evaporation rate ρ in `(0, 1)`.
    pub rho: f64,
    /// Reinforcement scale: the global best deposits `q / bins_used`.
    pub q: f64,
    /// Initial pheromone τ₀ (also the Max–Min upper bound).
    pub tau0: f64,
    /// Max–Min lower bound on pheromone.
    pub tau_min: f64,
    /// Master seed for the colony's randomness.
    pub seed: u64,
    /// Construct the cycle's ants in parallel with Rayon.
    pub parallel_ants: bool,
    /// Pheromone reinforcement rule.
    pub update_rule: UpdateRule,
    /// Run the bin-emptying local search on the final solution: try to
    /// drain the least-filled bins into the others' residual capacity.
    /// Cheap, and recovers most of the quality gap on large instances.
    pub local_search: bool,
}

impl Default for AcoParams {
    fn default() -> Self {
        AcoParams {
            n_ants: 10,
            n_cycles: 30,
            alpha: 1.0,
            beta: 2.0,
            rho: 0.3,
            q: 10.0,
            tau0: 1.0,
            tau_min: 0.01,
            seed: 0xAC0,
            parallel_ants: false,
            update_rule: UpdateRule::GlobalBest,
            local_search: false,
        }
    }
}

impl AcoParams {
    /// A cheap configuration for unit tests and small instances.
    pub fn fast() -> Self {
        AcoParams {
            n_ants: 6,
            n_cycles: 12,
            ..Default::default()
        }
    }
}

/// Dense pheromone matrix over (item, bin) pairs.
#[derive(Clone, Debug)]
struct PheromoneMatrix {
    tau: Vec<f64>,
    n_bins: usize,
}

impl PheromoneMatrix {
    fn new(n_items: usize, n_bins: usize, tau0: f64) -> Self {
        PheromoneMatrix {
            tau: vec![tau0; n_items * n_bins],
            n_bins,
        }
    }

    #[inline]
    fn get(&self, item: usize, bin: usize) -> f64 {
        self.tau[item * self.n_bins + bin]
    }

    fn evaporate(&mut self, rho: f64, tau_min: f64) -> u64 {
        for t in &mut self.tau {
            *t = ((1.0 - rho) * *t).max(tau_min);
        }
        self.tau.len() as u64
    }

    fn deposit(&mut self, item: usize, bin: usize, amount: f64, tau_max: f64) {
        let t = &mut self.tau[item * self.n_bins + bin];
        *t = (*t + amount).min(tau_max);
    }

    /// Audit predicate: every entry is finite and inside the Max–Min
    /// band `[tau_min, tau_max]`.
    fn within_bounds(&self, tau_min: f64, tau_max: f64) -> bool {
        self.tau
            .iter()
            .all(|t| t.is_finite() && (tau_min..=tau_max).contains(t))
    }
}

/// Per-phase profile of a colony run: deterministic work counters plus
/// advisory wall-clock timings.
///
/// The work counters (`*_steps`, `*_comparisons`, `*_updates`) are exact
/// functions of the instance and parameters — two same-seed runs produce
/// identical values, so they are safe to print in reproducible reports.
/// The `*_nanos` fields read the host clock and are **advisory only**:
/// they vary run to run and must never be folded into digests or
/// byte-identical exports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AcoPhaseProfile {
    /// Cycles executed.
    pub cycles: u64,
    /// Construction-phase inner-loop steps (placement draws plus bin
    /// advances, summed over every ant in every cycle).
    pub construction_steps: u64,
    /// Candidate solutions scored against the global best.
    pub evaluation_comparisons: u64,
    /// Pheromone entries touched by evaporation and deposits.
    pub evaporation_updates: u64,
    /// Wall-clock nanoseconds in construction (advisory).
    pub construction_nanos: u64,
    /// Wall-clock nanoseconds in evaluation (advisory).
    pub evaluation_nanos: u64,
    /// Wall-clock nanoseconds in evaporation + reinforcement (advisory).
    pub evaporation_nanos: u64,
}

/// Result of a full colony run, including per-cycle convergence data for
/// the convergence figure (experiment E8).
#[derive(Clone, Debug)]
pub struct AcoRun {
    /// Best solution found (feasible), if any ant ever completed one.
    pub solution: Option<Solution>,
    /// Bins used by the global best after each cycle.
    pub best_bins_per_cycle: Vec<usize>,
    /// Total ants that failed to construct a feasible solution.
    pub failed_ants: usize,
    /// Phase-by-phase profile of the run.
    pub profile: AcoPhaseProfile,
}

/// The ACO consolidator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcoConsolidator {
    /// Colony parameters.
    pub params: AcoParams,
}

impl AcoConsolidator {
    /// A consolidator with the given parameters.
    pub fn new(params: AcoParams) -> Self {
        AcoConsolidator { params }
    }

    /// Run the colony, returning the full run record.
    pub fn run(&self, instance: &Instance) -> AcoRun {
        let p = self.params;
        let n_items = instance.n_items();
        if n_items == 0 {
            return AcoRun {
                solution: Some(Solution { assignment: vec![] }),
                best_bins_per_cycle: vec![],
                failed_ants: 0,
                profile: AcoPhaseProfile::default(),
            };
        }
        let mut pheromone = PheromoneMatrix::new(n_items, instance.n_bins(), p.tau0);
        let master = SimRng::new(p.seed);
        let mut global_best: Option<(Solution, usize, f64)> = None; // (sol, bins, util)
        let mut best_per_cycle = Vec::with_capacity(p.n_cycles);
        let mut failed = 0usize;
        let mut profile = AcoPhaseProfile {
            cycles: p.n_cycles as u64,
            ..AcoPhaseProfile::default()
        };

        for cycle in 0..p.n_cycles {
            let t_construct = snooze_simcore::WallClock::start();
            let construct = |ant: usize| -> (Option<Solution>, u64) {
                let mut rng = master.fork((cycle * p.n_ants + ant) as u64 + 1);
                construct_solution(instance, &pheromone, &p, &mut rng)
            };
            let candidates: Vec<(Option<Solution>, u64)> = if p.parallel_ants {
                (0..p.n_ants).into_par_iter().map(construct).collect()
            } else {
                (0..p.n_ants).map(construct).collect()
            };
            profile.construction_nanos += t_construct.elapsed_nanos();
            // Fixed reduction order keeps the counter deterministic even
            // with parallel ants.
            profile.construction_steps += candidates.iter().map(|(_, steps)| steps).sum::<u64>();

            let t_evaluate = snooze_simcore::WallClock::start();
            let mut cycle_solutions: Vec<Solution> = Vec::new();
            for (sol, _) in candidates {
                match sol {
                    Some(sol) => {
                        profile.evaluation_comparisons += 1;
                        let bins = sol.bins_used();
                        let util = sol.avg_used_bin_utilization(instance);
                        let better = match &global_best {
                            None => true,
                            Some((_, gb, gu)) => bins < *gb || (bins == *gb && util > *gu),
                        };
                        if better {
                            global_best = Some((sol.clone(), bins, util));
                        }
                        cycle_solutions.push(sol);
                    }
                    None => failed += 1,
                }
            }
            profile.evaluation_nanos += t_evaluate.elapsed_nanos();

            // Evaporation, then reinforcement per the configured rule.
            let t_evaporate = snooze_simcore::WallClock::start();
            profile.evaporation_updates += pheromone.evaporate(p.rho, p.tau_min);
            match p.update_rule {
                UpdateRule::GlobalBest => {
                    // Max–Min ant system: only the best deposits, with
                    // bounds.
                    if let Some((sol, bins, _)) = &global_best {
                        let amount = p.q / (*bins as f64).max(1.0);
                        for (item, &bin) in sol.assignment.iter().enumerate() {
                            pheromone.deposit(item, bin, amount, p.tau0 * 10.0);
                        }
                        profile.evaporation_updates += sol.assignment.len() as u64;
                    }
                }
                UpdateRule::AllAnts => {
                    // Classic Ant System: every ant deposits, weighted by
                    // its own solution quality.
                    for sol in &cycle_solutions {
                        let amount = p.q / (sol.bins_used() as f64).max(1.0);
                        for (item, &bin) in sol.assignment.iter().enumerate() {
                            pheromone.deposit(item, bin, amount, p.tau0 * 10.0);
                        }
                        profile.evaporation_updates += sol.assignment.len() as u64;
                    }
                }
            }
            profile.evaporation_nanos += t_evaporate.elapsed_nanos();
            best_per_cycle.push(
                global_best
                    .as_ref()
                    .map(|(_, b, _)| *b)
                    .unwrap_or(usize::MAX),
            );

            snooze_simcore::audit_invariant!(
                "aco",
                "pheromone-bounds",
                pheromone.within_bounds(p.tau_min, p.tau0 * 10.0),
                "cycle {cycle}: pheromone escaped [{}, {}] (or went non-finite)",
                p.tau_min,
                p.tau0 * 10.0
            );
            snooze_simcore::audit_invariant!(
                "aco",
                "best-solution-feasible",
                global_best
                    .as_ref()
                    .is_none_or(|(sol, _, _)| sol.is_feasible(instance)),
                "cycle {cycle}: global best violates bin capacities"
            );
        }

        let mut solution = global_best.map(|(s, _, _)| s);
        if p.local_search {
            if let Some(sol) = &mut solution {
                bin_emptying_local_search(instance, sol);
                debug_assert!(sol.is_feasible(instance));
            }
        }
        AcoRun {
            solution,
            best_bins_per_cycle: best_per_cycle,
            failed_ants: failed,
            profile,
        }
    }
}

/// Bin-emptying local search: repeatedly take the least-utilized used
/// bin and try to best-fit *all* of its items into the residual capacity
/// of the other used bins; apply only complete drains (a partial drain
/// frees nothing). Stops at the first bin that cannot be drained.
pub fn bin_emptying_local_search(instance: &Instance, solution: &mut Solution) {
    loop {
        let loads = solution.bin_loads(instance);
        let mut used: Vec<usize> = (0..instance.n_bins())
            .filter(|&b| loads[b].l1() > 0.0)
            .collect();
        if used.len() <= 1 {
            return;
        }
        // Least-utilized used bin is the drain candidate.
        used.sort_by(|&a, &b| {
            let ua = loads[a].normalize_by(&instance.bins[a]).l1();
            let ub = loads[b].normalize_by(&instance.bins[b]).l1();
            ua.partial_cmp(&ub)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let victim = used[0];
        let mut movers: Vec<usize> = (0..instance.n_items())
            .filter(|&i| solution.assignment[i] == victim)
            .collect();
        // Largest first.
        movers.sort_by(|&a, &b| {
            instance.items[b]
                .l1()
                .partial_cmp(&instance.items[a].l1())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut residuals: Vec<(usize, ResourceVector)> = used[1..]
            .iter()
            .map(|&b| (b, instance.bins[b].saturating_sub(&loads[b])))
            .collect();
        let mut placement = Vec::with_capacity(movers.len());
        let mut ok = true;
        for &item in &movers {
            let demand = instance.items[item];
            let slot = residuals
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| demand.fits_within(r))
                .min_by(|(_, (_, ra)), (_, (_, rb))| {
                    let sa = ra.saturating_sub(&demand).l1();
                    let sb = rb.saturating_sub(&demand).l1();
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(idx, _)| idx);
            match slot {
                Some(idx) => {
                    let (bin, r) = &mut residuals[idx];
                    *r = r.saturating_sub(&demand);
                    placement.push((item, *bin));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return; // the emptiest bin is stuck ⇒ nothing easier exists
        }
        for (item, bin) in placement {
            solution.assignment[item] = bin;
        }
    }
}

/// One ant's solution construction. Returns the solution (if feasible)
/// and the number of inner-loop steps taken — the deterministic work
/// counter behind [`AcoPhaseProfile::construction_steps`].
fn construct_solution(
    instance: &Instance,
    pheromone: &PheromoneMatrix,
    p: &AcoParams,
    rng: &mut SimRng,
) -> (Option<Solution>, u64) {
    let mut steps = 0u64;
    let n_items = instance.n_items();
    let mut unassigned: Vec<usize> = (0..n_items).collect();
    let mut assignment = vec![usize::MAX; n_items];
    let mut bin = 0usize;
    let Some(&first_bin) = instance.bins.first() else {
        return (None, steps);
    };
    let mut residual = first_bin;

    // Scratch buffers reused across iterations (allocation-conscious: the
    // inner loop runs n_items times per ant).
    let mut candidates: Vec<usize> = Vec::with_capacity(n_items);
    let mut weights: Vec<f64> = Vec::with_capacity(n_items);

    while !unassigned.is_empty() {
        candidates.clear();
        weights.clear();
        for (slot, &item) in unassigned.iter().enumerate() {
            if instance.items[item].fits_within(&residual) {
                candidates.push(slot);
                let eta = heuristic(&instance.items[item], &residual, &instance.bins[bin]);
                let tau = pheromone.get(item, bin);
                weights.push(tau.powf(p.alpha) * eta.powf(p.beta));
            }
        }
        steps += 1;
        if candidates.is_empty() {
            // Current bin is as full as this ant can make it — move on.
            bin += 1;
            if bin >= instance.n_bins() {
                return (None, steps); // out of hosts
            }
            residual = instance.bins[bin];
            continue;
        }
        let pick = rng.weighted_index(&weights).unwrap_or(0);
        let slot = candidates[pick];
        let item = unassigned.swap_remove(slot);
        assignment[item] = bin;
        residual = residual.saturating_sub(&instance.items[item]);
    }
    (Some(Solution { assignment }), steps)
}

/// Heuristic desirability η of packing `item` into a bin with `residual`
/// capacity left (out of `capacity` total): inversely proportional to the
/// normalized slack that would remain, so choices that fill the bin
/// tightly are favoured — "guides the ants towards choosing VMs leading
/// to better overall LC utilization" (§III-A).
#[inline]
fn heuristic(item: &ResourceVector, residual: &ResourceVector, capacity: &ResourceVector) -> f64 {
    let slack_after = residual.saturating_sub(item).normalize_by(capacity).l1();
    1.0 / (1.0 + slack_after)
}

impl Consolidator for AcoConsolidator {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        self.run(instance).solution
    }

    fn name(&self) -> &'static str {
        "ACO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffd::{FirstFitDecreasing, SortKey};
    use crate::problem::InstanceGenerator;

    fn unit_instance(sizes: &[f64], n_bins: usize) -> Instance {
        Instance::homogeneous(
            sizes.iter().map(|&s| ResourceVector::splat(s)).collect(),
            n_bins,
            ResourceVector::splat(1.0),
        )
    }

    #[test]
    fn solves_trivial_instance_optimally() {
        let inst = unit_instance(&[0.5, 0.5, 0.5, 0.5], 4);
        let sol = AcoConsolidator::new(AcoParams::fast())
            .consolidate(&inst)
            .unwrap();
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.bins_used(), 2);
    }

    #[test]
    fn finds_complementary_pairings() {
        // 0.7+0.3 pairs: optimal 3 bins; a bad packing needs 4+.
        let inst = unit_instance(&[0.7, 0.7, 0.7, 0.3, 0.3, 0.3], 6);
        let sol = AcoConsolidator::new(AcoParams::fast())
            .consolidate(&inst)
            .unwrap();
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.bins_used(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(3));
        let a = AcoConsolidator::new(AcoParams::fast()).run(&inst);
        let b = AcoConsolidator::new(AcoParams::fast()).run(&inst);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.best_bins_per_cycle, b.best_bins_per_cycle);
    }

    /// The profile's *work counters* are part of the deterministic
    /// surface (its nanos are advisory and excluded on purpose).
    #[test]
    fn phase_work_counters_are_deterministic_and_nonzero() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(3));
        let a = AcoConsolidator::new(AcoParams::fast()).run(&inst).profile;
        let b = AcoConsolidator::new(AcoParams::fast()).run(&inst).profile;
        assert_eq!(a.construction_steps, b.construction_steps);
        assert_eq!(a.evaluation_comparisons, b.evaluation_comparisons);
        assert_eq!(a.evaporation_updates, b.evaporation_updates);
        assert_eq!(a.cycles, AcoParams::fast().n_cycles as u64);
        assert!(a.construction_steps > 0);
        assert!(a.evaluation_comparisons > 0);
        assert!(a.evaporation_updates > 0);
        // Parallel ants reduce in fixed order: same counters.
        let par = AcoConsolidator::new(AcoParams {
            parallel_ants: true,
            ..AcoParams::fast()
        })
        .run(&inst)
        .profile;
        assert_eq!(a.construction_steps, par.construction_steps);
    }

    #[test]
    fn parallel_ants_match_sequential_exactly() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(40, &mut SimRng::new(5));
        let seq = AcoConsolidator::new(AcoParams {
            parallel_ants: false,
            ..AcoParams::fast()
        });
        let par = AcoConsolidator::new(AcoParams {
            parallel_ants: true,
            ..AcoParams::fast()
        });
        assert_eq!(seq.run(&inst).solution, par.run(&inst).solution);
    }

    #[test]
    fn beats_or_matches_cpu_ffd_on_grid11_instances() {
        // The paper's headline (E1): ACO uses fewer hosts than FFD. On
        // any single instance it must at least never be *worse* than the
        // single-dimension FFD baseline; across seeds it should win some.
        let gen = InstanceGenerator::grid11();
        let mut wins = 0;
        let mut losses = 0;
        for seed in 0..6 {
            let inst = gen.generate(40, &mut SimRng::new(seed));
            let ffd = FirstFitDecreasing { key: SortKey::Cpu }
                .consolidate(&inst)
                .unwrap()
                .bins_used();
            let aco = AcoConsolidator::new(AcoParams {
                n_cycles: 25,
                ..AcoParams::default()
            })
            .consolidate(&inst)
            .unwrap()
            .bins_used();
            if aco < ffd {
                wins += 1;
            }
            if aco > ffd {
                losses += 1;
            }
        }
        assert_eq!(losses, 0, "ACO lost to FFD-cpu {losses} times");
        assert!(
            wins >= 1,
            "ACO should beat FFD-cpu at least once over 6 seeds"
        );
    }

    #[test]
    fn respects_lower_bound_and_feasibility() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(25, &mut SimRng::new(8));
        let sol = AcoConsolidator::new(AcoParams::fast())
            .consolidate(&inst)
            .unwrap();
        assert!(sol.is_feasible(&inst));
        assert!(sol.bins_used() >= inst.lower_bound());
    }

    #[test]
    fn convergence_is_monotone_non_increasing() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(40, &mut SimRng::new(2));
        let run = AcoConsolidator::new(AcoParams::default()).run(&inst);
        let series = run.best_bins_per_cycle;
        assert!(!series.is_empty());
        assert!(
            series.windows(2).all(|w| w[1] <= w[0]),
            "global best can only improve: {series:?}"
        );
    }

    #[test]
    fn fails_gracefully_when_bins_insufficient() {
        let inst = unit_instance(&[0.9, 0.9, 0.9], 2);
        let run = AcoConsolidator::new(AcoParams::fast()).run(&inst);
        assert!(run.solution.is_none());
        assert_eq!(
            run.failed_ants,
            AcoParams::fast().n_ants * AcoParams::fast().n_cycles
        );
    }

    #[test]
    fn empty_instance_is_trivially_solved() {
        let inst = unit_instance(&[], 3);
        let run = AcoConsolidator::new(AcoParams::fast()).run(&inst);
        assert_eq!(run.solution.unwrap().assignment.len(), 0);
    }

    #[test]
    fn oversized_item_cannot_be_placed() {
        let inst = unit_instance(&[1.2], 3);
        assert!(AcoConsolidator::new(AcoParams::fast())
            .consolidate(&inst)
            .is_none());
    }

    #[test]
    fn heuristic_prefers_tight_fits() {
        let cap = ResourceVector::splat(1.0);
        let residual = ResourceVector::splat(0.6);
        let big = ResourceVector::splat(0.55);
        let small = ResourceVector::splat(0.1);
        assert!(heuristic(&big, &residual, &cap) > heuristic(&small, &residual, &cap));
    }

    #[test]
    fn all_ants_update_rule_is_feasible_and_deterministic() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(6));
        let aco = AcoConsolidator::new(AcoParams {
            update_rule: UpdateRule::AllAnts,
            ..AcoParams::fast()
        });
        let a = aco.run(&inst);
        let b = aco.run(&inst);
        assert_eq!(a.solution, b.solution);
        let sol = a.solution.unwrap();
        assert!(sol.is_feasible(&inst));
        assert!(sol.bins_used() >= inst.lower_bound());
    }

    #[test]
    fn local_search_never_hurts_and_stays_feasible() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..5 {
            let inst = gen.generate(50, &mut SimRng::new(100 + seed));
            let plain = AcoConsolidator::new(AcoParams::fast())
                .consolidate(&inst)
                .unwrap();
            let polished = AcoConsolidator::new(AcoParams {
                local_search: true,
                ..AcoParams::fast()
            })
            .consolidate(&inst)
            .unwrap();
            assert!(polished.is_feasible(&inst), "seed {seed}");
            assert!(
                polished.bins_used() <= plain.bins_used(),
                "seed {seed}: {} vs {}",
                polished.bins_used(),
                plain.bins_used()
            );
        }
    }

    #[test]
    fn local_search_empties_an_obviously_drainable_bin() {
        // Two items of 0.3 in separate bins: one drain suffices.
        let inst = unit_instance(&[0.3, 0.3], 2);
        let mut sol = Solution {
            assignment: vec![0, 1],
        };
        bin_emptying_local_search(&inst, &mut sol);
        assert_eq!(sol.bins_used(), 1);
        assert!(sol.is_feasible(&inst));
    }

    #[test]
    fn local_search_leaves_tight_packings_alone() {
        let inst = unit_instance(&[0.9, 0.9], 2);
        let mut sol = Solution {
            assignment: vec![0, 1],
        };
        bin_emptying_local_search(&inst, &mut sol);
        assert_eq!(sol.assignment, vec![0, 1]);
    }

    #[test]
    fn more_cycles_do_not_hurt() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(35, &mut SimRng::new(4));
        let short = AcoConsolidator::new(AcoParams {
            n_cycles: 3,
            ..AcoParams::default()
        })
        .consolidate(&inst)
        .unwrap()
        .bins_used();
        let long = AcoConsolidator::new(AcoParams {
            n_cycles: 40,
            ..AcoParams::default()
        })
        .consolidate(&inst)
        .unwrap()
        .bins_used();
        assert!(long <= short, "long {long} vs short {short}");
    }
}
