//! Exact branch-and-bound solver — the CPLEX stand-in.
//!
//! The paper computed "the optimal solution" with CPLEX for small
//! instances and reported that the ACO algorithm "achieves nearly optimal
//! solutions (i.e. 1.1% deviation)". CPLEX is proprietary; optimality is
//! not. This module finds the minimum number of bins by depth-first
//! branch and bound over homogeneous vector bin packing:
//!
//! * items are branched in descending size order (large items first
//!   maximizes early pruning);
//! * a node assigns the next item to each feasible *open* bin, or to one
//!   fresh bin (opening more than one fresh bin is symmetric, so only the
//!   first is explored);
//! * nodes are pruned when `used + incremental lower bound ≥ best`, where
//!   the incremental bound accounts for remaining demand that cannot fit
//!   in the open bins' residual capacity;
//! * a node budget bounds worst-case runtime; exceeding it yields the best
//!   incumbent with `optimal = false`.

use snooze_cluster::resources::{ResourceVector, DIMS};

use crate::ffd::{FirstFitDecreasing, SortKey};
use crate::problem::{Consolidator, Instance, Solution};

/// Outcome of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// Best solution found (in original item order), if any.
    pub solution: Option<Solution>,
    /// Whether the search proved optimality (budget not exhausted).
    pub optimal: bool,
    /// Search nodes expanded.
    pub nodes: u64,
}

/// The branch-and-bound solver. Only valid for homogeneous instances
/// (all bins identical), which is what the paper's evaluation uses.
#[derive(Clone, Copy, Debug)]
pub struct BranchAndBound {
    /// Maximum search nodes before giving up on proving optimality.
    pub node_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_budget: 20_000_000,
        }
    }
}

struct Search<'a> {
    items: &'a [ResourceVector], // sorted descending
    capacity: ResourceVector,
    max_bins: usize,
    /// Suffix sums of demand: `suffix[i]` = total demand of items `i..`.
    suffix: Vec<ResourceVector>,
    residuals: Vec<ResourceVector>, // residual of each open bin
    assignment: Vec<usize>,
    best: Option<(usize, Vec<usize>)>, // (bins, assignment-over-sorted-items)
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    /// Lower bound on *additional* bins needed beyond the open ones:
    /// remaining demand that exceeds the open bins' aggregate residual,
    /// divided by the bin capacity, per dimension.
    fn incremental_bound(&self, next_item: usize, open: usize) -> usize {
        let remaining = self.suffix[next_item];
        let mut free_open = ResourceVector::ZERO;
        for r in &self.residuals[..open] {
            free_open += *r;
        }
        let mut extra = 0usize;
        for d in 0..DIMS {
            let cap = self.capacity.get(d);
            if cap > 0.0 {
                let overflow = remaining.get(d) - free_open.get(d);
                if overflow > 1e-9 {
                    extra = extra.max((overflow / cap - 1e-9).ceil() as usize);
                }
            }
        }
        extra
    }

    fn dfs(&mut self, item: usize, open: usize) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if item == self.items.len() {
            let better = self.best.as_ref().map(|(b, _)| open < *b).unwrap_or(true);
            if better {
                self.best = Some((open, self.assignment.clone()));
            }
            return;
        }
        let best_bins = self.best.as_ref().map(|(b, _)| *b).unwrap_or(usize::MAX);
        if open + self.incremental_bound(item, open) >= best_bins {
            return; // cannot improve
        }
        let demand = self.items[item];

        // Try each open bin (distinct residuals only would be an extra
        // symmetry break; open bins differ in content so keep all).
        for b in 0..open {
            if demand.fits_within(&self.residuals[b]) {
                let saved = self.residuals[b];
                self.residuals[b] = saved.saturating_sub(&demand);
                self.assignment[item] = b;
                self.dfs(item + 1, open);
                self.residuals[b] = saved;
            }
        }
        // Try one fresh bin (only if it improves on the incumbent and a
        // host is available).
        if open < self.max_bins && open + 1 < best_bins {
            self.residuals[open] = self.capacity.saturating_sub(&demand);
            self.assignment[item] = open;
            self.dfs(item + 1, open + 1);
        }
    }
}

impl BranchAndBound {
    /// Solve `instance` to optimality (or best-effort within the budget).
    pub fn solve(&self, instance: &Instance) -> ExactOutcome {
        let n = instance.n_items();
        if n == 0 {
            return ExactOutcome {
                solution: Some(Solution { assignment: vec![] }),
                optimal: true,
                nodes: 0,
            };
        }
        let capacity = instance.bins[0];
        assert!(
            instance.is_homogeneous(),
            "BranchAndBound requires homogeneous bins (its fresh-bin symmetry \
             breaking is unsound otherwise); use the heuristics for mixed fleets"
        );

        // Sort items descending by normalized L1 size; remember permutation.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ka = instance.items[a].normalize_by(&capacity).l1();
            let kb = instance.items[b].normalize_by(&capacity).l1();
            kb.partial_cmp(&ka)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let sorted: Vec<ResourceVector> = order.iter().map(|&i| instance.items[i]).collect();

        // Reject impossible items up front.
        if sorted.iter().any(|it| !it.fits_within(&capacity)) {
            return ExactOutcome {
                solution: None,
                optimal: true,
                nodes: 0,
            };
        }

        // Suffix demand sums for the incremental bound.
        let mut suffix = vec![ResourceVector::ZERO; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + sorted[i];
        }

        // Seed the incumbent with FFD so pruning bites immediately.
        let ffd_incumbent = FirstFitDecreasing { key: SortKey::L1 }.consolidate(instance);
        let mut search = Search {
            items: &sorted,
            capacity,
            max_bins: instance.n_bins(),
            suffix,
            residuals: vec![ResourceVector::ZERO; instance.n_bins()],
            assignment: vec![usize::MAX; n],
            best: ffd_incumbent.map(|s| {
                let mut canon = s.clone();
                canon.canonicalize();
                // Re-express over the sorted item order.
                let over_sorted: Vec<usize> = order.iter().map(|&i| canon.assignment[i]).collect();
                (canon.bins_used(), over_sorted)
            }),
            nodes: 0,
            budget: self.node_budget,
        };
        search.dfs(0, 0);

        let optimal = search.nodes < self.node_budget;
        let nodes = search.nodes;
        let solution = search.best.map(|(_, sorted_assignment)| {
            // Map back to original item order.
            let mut assignment = vec![usize::MAX; n];
            for (pos, &orig) in order.iter().enumerate() {
                assignment[orig] = sorted_assignment[pos];
            }
            Solution { assignment }
        });
        ExactOutcome {
            solution,
            optimal,
            nodes,
        }
    }
}

impl Consolidator for BranchAndBound {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        self.solve(instance).solution
    }

    fn name(&self) -> &'static str {
        "B&B(optimal)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aco::{AcoConsolidator, AcoParams};
    use crate::problem::InstanceGenerator;
    use snooze_simcore::rng::SimRng;

    fn unit_instance(sizes: &[f64], n_bins: usize) -> Instance {
        Instance::homogeneous(
            sizes.iter().map(|&s| ResourceVector::splat(s)).collect(),
            n_bins,
            ResourceVector::splat(1.0),
        )
    }

    #[test]
    fn solves_complementary_pairs_optimally() {
        let inst = unit_instance(&[0.7, 0.7, 0.7, 0.3, 0.3, 0.3], 6);
        let out = BranchAndBound::default().solve(&inst);
        assert!(out.optimal);
        let sol = out.solution.unwrap();
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.bins_used(), 3);
    }

    #[test]
    fn beats_ffd_where_ffd_is_suboptimal() {
        // Classic FFD pathology: 0.55×2 + 0.45×2 + 0.3×2.
        // FFD-L1: [0.55,0.3], [0.55,0.3], [0.45,0.45] = 3 bins — actually
        // optimal here; craft a genuinely hard one instead:
        // sizes where FFD gives 3 but optimal is 2: 0.5,0.5,0.34,0.33,0.33.
        let inst = unit_instance(&[0.5, 0.5, 0.34, 0.33, 0.33], 5);
        let ffd = FirstFitDecreasing { key: SortKey::L1 }
            .consolidate(&inst)
            .unwrap();
        let out = BranchAndBound::default().solve(&inst);
        assert!(out.optimal);
        let opt = out.solution.unwrap();
        assert!(opt.is_feasible(&inst));
        assert_eq!(opt.bins_used(), 2, "0.5+0.5 | 0.34+0.33+0.33");
        assert!(ffd.bins_used() >= opt.bins_used());
    }

    #[test]
    fn optimum_at_most_any_heuristic_on_random_instances() {
        let gen = InstanceGenerator::grid11();
        for seed in 0..8 {
            let inst = gen.generate(12, &mut SimRng::new(seed));
            let out = BranchAndBound::default().solve(&inst);
            assert!(out.optimal, "seed {seed} should solve within budget");
            let opt = out.solution.unwrap();
            assert!(opt.is_feasible(&inst));
            assert!(opt.bins_used() >= inst.lower_bound());
            let ffd = FirstFitDecreasing { key: SortKey::L2 }
                .consolidate(&inst)
                .unwrap();
            let aco = AcoConsolidator::new(AcoParams::fast())
                .consolidate(&inst)
                .unwrap();
            assert!(opt.bins_used() <= ffd.bins_used(), "seed {seed}");
            assert!(opt.bins_used() <= aco.bins_used(), "seed {seed}");
        }
    }

    #[test]
    fn empty_and_single_item_instances() {
        let out = BranchAndBound::default().solve(&unit_instance(&[], 2));
        assert!(out.optimal);
        assert_eq!(out.solution.unwrap().assignment.len(), 0);

        let inst = unit_instance(&[0.4], 2);
        let out = BranchAndBound::default().solve(&inst);
        assert_eq!(out.solution.unwrap().bins_used(), 1);
    }

    #[test]
    fn oversized_item_is_unsolvable() {
        let out = BranchAndBound::default().solve(&unit_instance(&[1.5], 2));
        assert!(out.solution.is_none());
        assert!(out.optimal);
    }

    #[test]
    fn budget_exhaustion_returns_incumbent() {
        let gen = InstanceGenerator::grid11();
        let inst = gen.generate(30, &mut SimRng::new(1));
        let out = BranchAndBound { node_budget: 50 }.solve(&inst);
        assert!(!out.optimal);
        // FFD incumbent is still returned.
        let sol = out.solution.unwrap();
        assert!(sol.is_feasible(&inst));
    }

    #[test]
    fn solution_is_in_original_item_order() {
        // One big and one small item; big sorts first internally, but the
        // returned assignment must be indexed by original position.
        let inst = unit_instance(&[0.1, 0.9], 2);
        let sol = BranchAndBound::default().solve(&inst).solution.unwrap();
        assert_eq!(sol.assignment.len(), 2);
        assert!(sol.is_feasible(&inst));
        // 0.1 + 0.9 fit together: must use a single bin.
        assert_eq!(sol.bins_used(), 1);
        assert_eq!(sol.assignment[0], sol.assignment[1]);
    }
}
