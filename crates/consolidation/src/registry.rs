//! The string-keyed consolidator registry.
//!
//! Every placement algorithm in this crate is constructible from a key
//! plus a flat map of scalar parameters — the bridge that lets scenario
//! TOML pick any algorithm with zero per-variant Rust. Unknown keys and
//! unknown or ill-typed parameters are hard errors naming what *is*
//! available, so a typo in a scenario file fails loudly at compile time
//! rather than silently running the default.

use std::collections::BTreeMap;

use crate::aco::{AcoConsolidator, AcoParams, UpdateRule};
use crate::aco_pso::{AcoPsoConsolidator, AcoPsoParams};
use crate::distributed::{DistributedAco, DistributedParams};
use crate::exact::BranchAndBound;
use crate::ffd::{BestFit, FirstFitDecreasing, NextFit, SortKey, WorstFit};
use crate::multi_objective::{MigrationAwareAco, MigrationAwareParams};
use crate::problem::{Consolidator, Instance, Solution};

/// A scalar algorithm parameter, as scenario TOML can express it.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// An integer.
    Int(i64),
    /// A float (integers coerce where a float is expected).
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// A flat parameter map (sorted for deterministic error messages).
pub type Params = BTreeMap<String, ParamValue>;

/// Tracks which parameters a builder consumed so leftovers can be
/// rejected by name.
struct ParamReader<'a> {
    params: &'a Params,
    consumed: Vec<&'a str>,
}

impl<'a> ParamReader<'a> {
    fn new(params: &'a Params) -> Self {
        ParamReader {
            params,
            consumed: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a ParamValue> {
        let v = self.params.get_key_value(key);
        if let Some((k, _)) = v {
            self.consumed.push(k.as_str());
        }
        v.map(|(_, v)| v)
    }

    fn usize(&mut self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(ParamValue::Int(i)) if *i >= 0 => Ok(*i as usize),
            Some(other) => Err(format!(
                "parameter `{key}` must be a non-negative integer, got {other:?}"
            )),
        }
    }

    fn u64(&mut self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(ParamValue::Int(i)) if *i >= 0 => Ok(*i as u64),
            Some(other) => Err(format!(
                "parameter `{key}` must be a non-negative integer, got {other:?}"
            )),
        }
    }

    fn f64(&mut self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(ParamValue::Float(f)) => Ok(*f),
            Some(ParamValue::Int(i)) => Ok(*i as f64),
            Some(other) => Err(format!("parameter `{key}` must be a number, got {other:?}")),
        }
    }

    fn bool(&mut self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(ParamValue::Bool(b)) => Ok(*b),
            Some(other) => Err(format!(
                "parameter `{key}` must be a boolean, got {other:?}"
            )),
        }
    }

    fn str(&mut self, key: &str, default: &str) -> Result<String, String> {
        match self.get(key) {
            None => Ok(default.to_string()),
            Some(ParamValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(format!("parameter `{key}` must be a string, got {other:?}")),
        }
    }

    /// Error on any parameter no builder consumed.
    fn finish(self) -> Result<(), String> {
        for key in self.params.keys() {
            if !self.consumed.contains(&key.as_str()) {
                return Err(format!("unknown parameter `{key}`"));
            }
        }
        Ok(())
    }
}

fn sort_key(reader: &mut ParamReader<'_>) -> Result<SortKey, String> {
    let label = reader.str("sort", "l1")?;
    SortKey::ALL
        .iter()
        .copied()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let all: Vec<&str> = SortKey::ALL.iter().map(|k| k.label()).collect();
            format!("unknown sort key `{label}`; available: {}", all.join(", "))
        })
}

/// Colony parameters from `preset` (an [`AcoParams`] constructor name)
/// plus individual field overrides.
fn aco_params(reader: &mut ParamReader<'_>) -> Result<AcoParams, String> {
    let preset = reader.str("preset", "default")?;
    let mut p = match preset.as_str() {
        "default" => AcoParams::default(),
        "fast" => AcoParams::fast(),
        other => {
            return Err(format!(
                "unknown aco preset `{other}`; available: default, fast"
            ))
        }
    };
    p.n_ants = reader.usize("n_ants", p.n_ants)?;
    p.n_cycles = reader.usize("n_cycles", p.n_cycles)?;
    p.alpha = reader.f64("alpha", p.alpha)?;
    p.beta = reader.f64("beta", p.beta)?;
    p.rho = reader.f64("rho", p.rho)?;
    p.q = reader.f64("q", p.q)?;
    p.tau0 = reader.f64("tau0", p.tau0)?;
    p.tau_min = reader.f64("tau_min", p.tau_min)?;
    p.seed = reader.u64("seed", p.seed)?;
    p.parallel_ants = reader.bool("parallel_ants", p.parallel_ants)?;
    p.local_search = reader.bool("local_search", p.local_search)?;
    p.update_rule = match reader.str("update_rule", "global_best")?.as_str() {
        "global_best" => UpdateRule::GlobalBest,
        "all_ants" => UpdateRule::AllAnts,
        other => {
            return Err(format!(
                "unknown update_rule `{other}`; available: global_best, all_ants"
            ))
        }
    };
    Ok(p)
}

/// Branch-and-bound behind a homogeneity guard: the raw solver asserts on
/// heterogeneous instances (its symmetry breaking needs identical bins);
/// in a live reconfiguration loop that must be a clean "no plan", not a
/// panic.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuardedBranchAndBound {
    /// The underlying exact solver.
    pub inner: BranchAndBound,
}

impl Consolidator for GuardedBranchAndBound {
    fn consolidate(&self, instance: &Instance) -> Option<Solution> {
        if !instance.is_homogeneous() {
            return None;
        }
        self.inner.consolidate(instance)
    }

    fn name(&self) -> &'static str {
        "B&B"
    }
}

/// Builds any of the crate's consolidators from a string key and a flat
/// parameter map.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsolidatorRegistry;

/// Every registered key, sorted. Kept in one place so error messages,
/// sweeps and smoke tests can't drift from the builder.
pub const REGISTRY_KEYS: [&str; 9] = [
    "aco", "aco-pso", "bfd", "bnb", "daco", "ffd", "mo-aco", "nfd", "wfd",
];

impl ConsolidatorRegistry {
    /// The registry of everything in this crate.
    pub fn standard() -> Self {
        ConsolidatorRegistry
    }

    /// All registered keys, sorted.
    pub fn keys(&self) -> &'static [&'static str] {
        &REGISTRY_KEYS
    }

    /// Build the consolidator registered under `algo` from `params`.
    /// Unknown keys, unknown parameters and type mismatches are errors;
    /// every parameter is optional with the algorithm's documented
    /// default.
    pub fn build(&self, algo: &str, params: &Params) -> Result<Box<dyn Consolidator>, String> {
        let mut r = ParamReader::new(params);
        let built: Box<dyn Consolidator> = match algo {
            "aco" => Box::new(AcoConsolidator::new(aco_params(&mut r)?)),
            "ffd" => Box::new(FirstFitDecreasing {
                key: sort_key(&mut r)?,
            }),
            "bfd" => Box::new(BestFit {
                key: sort_key(&mut r)?,
            }),
            "wfd" => Box::new(WorstFit {
                key: sort_key(&mut r)?,
            }),
            "nfd" => Box::new(NextFit {
                key: sort_key(&mut r)?,
            }),
            "bnb" => {
                let default = BranchAndBound::default();
                Box::new(GuardedBranchAndBound {
                    inner: BranchAndBound {
                        node_budget: r.u64("node_budget", default.node_budget)?,
                    },
                })
            }
            "daco" => {
                let default = DistributedParams::default();
                Box::new(DistributedAco::new(DistributedParams {
                    partitions: r.usize("partitions", default.partitions)?,
                    exchange_rounds: r.usize("exchange_rounds", default.exchange_rounds)?,
                    aco: aco_params(&mut r)?,
                }))
            }
            "aco-pso" => {
                let default = AcoPsoParams::default();
                Box::new(AcoPsoConsolidator::new(AcoPsoParams {
                    aco: aco_params(&mut r)?,
                    swarm: r.usize("swarm", default.swarm)?,
                    iterations: r.usize("iterations", default.iterations)?,
                    adopt_prob: r.f64("adopt_prob", default.adopt_prob)?,
                    explore_prob: r.f64("explore_prob", default.explore_prob)?,
                    seed: r.u64("pso_seed", default.seed)?,
                }))
            }
            "mo-aco" => {
                let default = MigrationAwareParams::default();
                Box::new(MigrationAwareAco::new(MigrationAwareParams {
                    aco: aco_params(&mut r)?,
                    migration_weight: r.f64("migration_weight", default.migration_weight)?,
                }))
            }
            other => {
                return Err(format!(
                    "unknown consolidator `{other}`; available: {}",
                    REGISTRY_KEYS.join(", ")
                ))
            }
        };
        r.finish().map_err(|e| format!("{algo}: {e}"))?;
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, ParamValue)]) -> Params {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn every_key_builds_with_empty_params() {
        let reg = ConsolidatorRegistry::standard();
        for key in reg.keys() {
            let c = reg.build(key, &Params::new());
            assert!(c.is_ok(), "{key}: {:?}", c.err());
        }
    }

    #[test]
    fn unknown_key_lists_the_field() {
        let err = ConsolidatorRegistry::standard()
            .build("simulated-annealing", &Params::new())
            .err()
            .expect("build must fail");
        assert!(err.contains("unknown consolidator `simulated-annealing`"));
        for key in REGISTRY_KEYS {
            assert!(err.contains(key), "error must list `{key}`: {err}");
        }
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        let err = ConsolidatorRegistry::standard()
            .build("ffd", &params(&[("colour", ParamValue::Str("red".into()))]))
            .err()
            .expect("build must fail");
        assert!(err.contains("unknown parameter `colour`"), "{err}");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let err = ConsolidatorRegistry::standard()
            .build(
                "aco",
                &params(&[("n_ants", ParamValue::Str("many".into()))]),
            )
            .err()
            .expect("build must fail");
        assert!(err.contains("n_ants"), "{err}");
    }

    #[test]
    fn default_aco_build_matches_the_type_defaults() {
        // The digest-identity contract: building "aco" with only the
        // preset/n_cycles the old ReconfigurationConfig knew about must
        // reproduce AcoConsolidator::new(AcoParams::default()) exactly.
        let built = ConsolidatorRegistry::standard()
            .build(
                "aco",
                &params(&[
                    ("preset", ParamValue::Str("default".into())),
                    ("n_cycles", ParamValue::Int(15)),
                ]),
            )
            .unwrap();
        assert_eq!(built.name(), "ACO");
        let reference = AcoConsolidator::new(AcoParams {
            n_cycles: 15,
            ..AcoParams::default()
        });
        let inst = crate::problem::InstanceGenerator::grid11()
            .generate(24, &mut snooze_simcore::rng::SimRng::new(3));
        assert_eq!(built.consolidate(&inst), reference.consolidate(&inst));
    }

    #[test]
    fn sort_keys_select_the_ffd_variant() {
        let reg = ConsolidatorRegistry::standard();
        let c = reg
            .build("ffd", &params(&[("sort", ParamValue::Str("cpu".into()))]))
            .unwrap();
        assert_eq!(c.name(), "FFD-cpu");
        let err = reg
            .build("ffd", &params(&[("sort", ParamValue::Str("disk".into()))]))
            .err()
            .expect("build must fail");
        assert!(err.contains("available: cpu, mem, l1, l2, linf"), "{err}");
    }

    #[test]
    fn guarded_bnb_declines_heterogeneous_instances() {
        use snooze_cluster::resources::ResourceVector;
        let inst = Instance {
            items: vec![ResourceVector::splat(0.5)],
            bins: vec![ResourceVector::splat(1.0), ResourceVector::splat(2.0)],
            incumbent: None,
        };
        let c = ConsolidatorRegistry::standard()
            .build("bnb", &Params::new())
            .unwrap();
        assert!(c.consolidate(&inst).is_none(), "no panic, just no plan");
    }
}
